"""Corpus curation family — F1 and cost of the three templates vs baselines.

One sweep over (template, mode): the LLM cascade pipelines, a warm rerun
demonstrating the zero-call replay, and their fixed non-LLM baselines —
classic MinHash + Jaccard-threshold dedup, rules-only quality filtering,
verbatim hard-scan decontamination.  Each LLM arm records
cost-per-F1-point so EXPERIMENTS.md can show the cascades buying their F1
lead with a fraction of the full-verification budget.

Runs under pytest (CI smoke, asserting the acceptance claims) or directly
(``python bench_curation.py``); either path emits ``BENCH_curation.json``.

``CURATION_BENCH_DOCS`` scales the corpus (default 240 for CI smoke).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.baselines.curation import (
    evaluate_hard_scan_decontamination,
    evaluate_rules_quality,
    evaluate_threshold_dedup,
)
from repro.core.runtime.system import LinguaManga
from repro.datasets.curation import CurationCorpus
from repro.tasks.curation import (
    run_decontamination,
    run_dedup,
    run_quality_filter,
)

from _harness import emit, emit_json

N_DOCS = int(os.environ.get("CURATION_BENCH_DOCS", "240"))
SEED = int(os.environ.get("CURATION_BENCH_SEED", "7"))

TASKS = (
    ("document_dedup", run_dedup, evaluate_threshold_dedup, "threshold_dedup"),
    ("quality_filter", run_quality_filter, evaluate_rules_quality, "rules_quality"),
    (
        "decontamination",
        run_decontamination,
        evaluate_hard_scan_decontamination,
        "hard_scan",
    ),
)


def cost_per_point(cost: float, f1: float) -> float | None:
    """Cost per F1 percentage point (None when F1 is zero)."""
    return round(cost / (f1 * 100), 6) if f1 > 0 else None


def run_sweep() -> list[dict]:
    corpus = CurationCorpus(n_docs=N_DOCS, seed=SEED)
    arms: list[dict] = []
    for task_name, runner, baseline_eval, baseline_name in TASKS:
        system = LinguaManga()
        start = time.perf_counter()
        cold = runner(system, corpus)
        cold_wall = time.perf_counter() - start

        start = time.perf_counter()
        warm = runner(system, corpus)
        warm_wall = time.perf_counter() - start

        baseline = baseline_eval(corpus)
        assert warm.predictions == cold.predictions

        arms.append(
            {
                "name": f"{task_name}:llm",
                "wall_seconds": round(cold_wall, 3),
                "provider_calls": cold.llm_calls,
                "cost": round(cold.cost, 6),
                "f1": round(cold.f1, 4),
                "cost_per_f1_point": cost_per_point(cold.cost, cold.f1),
            }
        )
        arms.append(
            {
                "name": f"{task_name}:warm",
                "wall_seconds": round(warm_wall, 3),
                "provider_calls": warm.llm_calls,
                "cost": round(warm.cost, 6),
                "f1": round(warm.f1, 4),
            }
        )
        arms.append(
            {
                "name": f"{task_name}:{baseline_name}",
                "wall_seconds": None,
                "provider_calls": 0,
                "cost": 0.0,
                "f1": round(baseline.f1, 4),
            }
        )
    return arms


@pytest.fixture(scope="module")
def sweep() -> list[dict]:
    return run_sweep()


def test_llm_beats_its_baseline_on_every_task(sweep):
    for task_name, _, _, baseline_name in TASKS:
        llm = next(a for a in sweep if a["name"] == f"{task_name}:llm")
        base = next(a for a in sweep if a["name"] == f"{task_name}:{baseline_name}")
        assert llm["f1"] > base["f1"], task_name


def test_warm_rerun_pays_nothing(sweep):
    for arm in sweep:
        if arm["name"].endswith(":warm"):
            assert arm["provider_calls"] == 0, arm["name"]
            assert arm["cost"] == 0.0, arm["name"]


def test_cascades_call_only_a_fraction_of_the_corpus(sweep):
    # Dedup and decontamination adjudicate only the gray zone; full
    # verification would cost one call per candidate pair / document.
    for task_name in ("document_dedup", "decontamination"):
        llm = next(a for a in sweep if a["name"] == f"{task_name}:llm")
        assert 0 < llm["provider_calls"] < N_DOCS / 4, task_name


def test_emit_report(sweep):
    corpus = CurationCorpus(n_docs=N_DOCS, seed=SEED)
    lines = [f"corpus: {corpus.fingerprint}  ({N_DOCS} docs)"]
    by_task: dict[str, list[dict]] = {}
    for arm in sweep:
        by_task.setdefault(arm["name"].split(":", 1)[0], []).append(arm)
    for task_name, task_arms in by_task.items():
        llm, warm, base = task_arms
        lines.append(
            f"{task_name:16s}  llm F1 {llm['f1']:.4f} "
            f"({llm['provider_calls']} calls, ${llm['cost']:.4f})  "
            f"baseline F1 {base['f1']:.4f}  "
            f"warm rerun {warm['provider_calls']} calls"
        )
    emit("curation", "\n".join(lines))
    emit_json("curation", sweep, n_docs=N_DOCS, seed=SEED)


if __name__ == "__main__":
    arms = run_sweep()
    emit_json("curation", arms, n_docs=N_DOCS, seed=SEED)
    for arm in arms:
        print(arm)
