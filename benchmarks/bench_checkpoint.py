"""Checkpoint journal economics — overhead of the WAL, savings of a resume.

Two claims, measured on the ER demo app:

1. **Journalling is cheap.**  A checkpointed run keeps a write-ahead
   journal (header + per-chunk ledger slices + operator commits) beside
   the execution.  Alternating runs — plain, checkpointed, plain,
   checkpointed, ... — feed two drift-robust estimators: the *paired
   median* (median of per-pair deltas; cancels slow drift, sensitive to
   per-run spikes) and the *min-based* delta (``min(checkpointed) -
   min(plain)``; filters one-sided spike noise, sensitive to sustained
   slow windows).  Each can be inflated by a noise pattern the other
   cancels, and a real regression inflates both — so the gate takes the
   smaller of the two and holds it to the 5% acceptance bar.  This is the
   CI gate the crash-safety PR promises: durability may not tax every
   healthy run.
2. **A resume re-pays only the un-journalled suffix.**  A run killed at a
   chunk boundary and resumed from its journal replays every completed
   chunk at zero provider cost, serves strictly fewer provider calls than
   the interrupted-and-restarted-from-scratch alternative would, and still
   produces a report byte-identical to an uninterrupted run.

The estimator design matters: between-batch noise on shared CI boxes runs
±2-3% and single-run spikes reach ±10%, the same order as the effect
under test.  Alternating the arms and agreeing across two estimators
measures the journal, not the neighbours.
"""

from __future__ import annotations

import gc
import time
from statistics import median

import pytest

from repro.core.runtime.checkpoint import RunCheckpoint
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.faults import CrashInjected, CrashPoint
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples

from _harness import emit, emit_json

OVERHEAD_BAR = 0.05  # the PR's promise: <= 5% wall-clock tax on the ER app
N_ENTITIES = 1200  # large enough that per-run fixed costs amortise
WORKERS = 4
PAIRS = 12


@pytest.fixture(scope="module")
def dataset():
    return generate_er_dataset("beer", seed=7, n_entities=N_ENTITIES)


def _run(dataset, *, workers, checkpoint_path=None, checkpoint=None,
         service=None, chunk_size=None):
    system = LinguaManga(service=service)
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4)
    )
    return system.run(
        pipeline,
        {"pairs": pairs_as_inputs(dataset.test)},
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        checkpoint=checkpoint,
    )


def _timed(dataset, checkpoint_path=None) -> float:
    gc.collect()
    started = time.perf_counter()
    _run(dataset, workers=WORKERS, checkpoint_path=checkpoint_path)
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def overhead(dataset, tmp_path_factory) -> dict:
    scratch = tmp_path_factory.mktemp("wal")
    # Warm-up: first runs pay import/JIT/allocator costs for both arms.
    _timed(dataset)
    _timed(dataset, scratch / "warmup.wal")
    plain, checkpointed, journal_bytes = [], [], 0
    for pair in range(PAIRS):
        plain.append(_timed(dataset))
        wal = scratch / f"pair{pair}.wal"
        checkpointed.append(_timed(dataset, wal))
        journal_bytes = wal.stat().st_size
    deltas = [ckpt - base for base, ckpt in zip(plain, checkpointed)]
    min_based = (min(checkpointed) - min(plain)) / min(plain)
    paired = median(deltas) / median(plain)
    return {
        "plain": min(plain),
        "delta": min(checkpointed) - min(plain),
        "min_based": min_based,
        "paired": paired,
        "ratio": min(min_based, paired),
        "journal_kib": journal_bytes / 1024,
    }


def test_journal_overhead_within_bar(overhead):
    # Acceptance bar: the WAL may not tax the ER app more than 5%.
    assert overhead["ratio"] <= OVERHEAD_BAR, (
        f"journal overhead {overhead['ratio']:.1%} exceeds "
        f"{OVERHEAD_BAR:.0%} bar (min-based {overhead['min_based']:.1%}, "
        f"paired median {overhead['paired']:.1%}, "
        f"plain {overhead['plain'] * 1000:.1f}ms)"
    )


@pytest.fixture(scope="module")
def resume_arms(dataset, tmp_path_factory) -> dict:
    """One uninterrupted run, one crashed-then-resumed run, calls counted.

    ``workers=1`` keeps the crash surgical: with concurrent workers the
    in-flight sibling chunks finish (and journal) while the injected crash
    unwinds, so the "crashed prefix" would already cover the whole run.
    Sequential chunks make the prefix exactly the journalled chunks.
    """
    wal = tmp_path_factory.mktemp("resume") / "run.wal"

    full_provider = SimulatedProvider()
    full = _run(
        dataset,
        workers=1,
        chunk_size=8,
        service=LLMService(full_provider),
    )

    crash_provider = SimulatedProvider()
    with pytest.raises(CrashInjected):
        _run(
            dataset,
            workers=1,
            chunk_size=8,
            service=LLMService(crash_provider),
            checkpoint=RunCheckpoint(wal, crash=CrashPoint("chunk:journaled", hits=8)),
        )

    resume_provider = SimulatedProvider()
    resumed = _run(
        dataset,
        workers=1,
        chunk_size=8,
        service=LLMService(resume_provider),
        checkpoint=RunCheckpoint(wal),
    )
    return {
        "full": full,
        "resumed": resumed,
        "full_calls": full_provider.calls_served,
        "crash_calls": crash_provider.calls_served,
        "resume_calls": resume_provider.calls_served,
    }


def test_resume_replays_prefix_at_zero_provider_cost(resume_arms):
    # The crash landed mid-run: both arms paid for real work.
    assert 0 < resume_arms["crash_calls"] < resume_arms["full_calls"]
    assert resume_arms["resume_calls"] < resume_arms["full_calls"]
    # Crash + resume together pay for exactly one uninterrupted run:
    # nothing the journal holds is re-bought, nothing is lost.
    assert (
        resume_arms["crash_calls"] + resume_arms["resume_calls"]
        == resume_arms["full_calls"]
    )


def test_resumed_report_is_byte_identical(resume_arms):
    assert (
        resume_arms["resumed"].canonical_json()
        == resume_arms["full"].canonical_json()
    )


def test_emit_report(overhead, resume_arms):
    saved = 1.0 - resume_arms["resume_calls"] / resume_arms["full_calls"]
    emit(
        "checkpoint",
        "\n".join(
            [
                f"checkpoint journal overhead (ER beer, n_entities={N_ENTITIES}, "
                f"workers={WORKERS}, {PAIRS} alternating pairs):",
                f"  plain min      {overhead['plain'] * 1000:>8.1f} ms",
                f"  journal delta  {overhead['delta'] * 1000:>8.2f} ms",
                f"  overhead       {overhead['ratio']:>8.2%}   (bar {OVERHEAD_BAR:.0%})",
                f"  min-based      {overhead['min_based']:>8.2%}   "
                f"paired median {overhead['paired']:.2%}",
                f"  journal size   {overhead['journal_kib']:>8.1f} KiB",
                "",
                "crash-then-resume provider economics (workers=1, chunk_size=8):",
                f"  uninterrupted run    {resume_arms['full_calls']:>6} provider calls",
                f"  crashed prefix       {resume_arms['crash_calls']:>6} provider calls",
                f"  resumed suffix       {resume_arms['resume_calls']:>6} provider calls",
                f"  resume saved         {saved:>6.1%} of a from-scratch restart",
            ]
        ),
    )
    emit_json(
        "checkpoint",
        [
            {
                "name": "plain",
                "wall_seconds": overhead["plain"],
                "provider_calls": resume_arms["full_calls"],
            },
            {
                "name": "journal overhead",
                "wall_seconds": overhead["delta"],
                "overhead_ratio": overhead["ratio"],
                "journal_kib": overhead["journal_kib"],
            },
            {
                "name": "crashed prefix",
                "provider_calls": resume_arms["crash_calls"],
            },
            {
                "name": "resumed suffix",
                "provider_calls": resume_arms["resume_calls"],
                "resume_saved": saved,
            },
        ],
    )
