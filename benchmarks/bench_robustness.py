"""Robustness — the ER pipeline under injected provider faults.

Runs the built-in entity-resolution template (``error_policy="skip_record"``)
against a ChaosProvider at increasing transient-failure rates, plus one arm
with a hard outage window.  The resilient executor quarantines what it must
and keeps everything else: completion rate stays high, F1 on the records
that were processed degrades only marginally, and the extra cost shows up
as retries/failed calls rather than lost work.
"""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.faults import ChaosProvider, FaultKind, FaultSpec
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.ml.metrics import f1_score
from repro.resilience import Deadline, ResiliencePolicy, RetryPolicy, VirtualClock
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples

from _harness import emit, emit_json

ARMS = (
    ("clean", 0.0, None),
    ("transient 5%", 0.05, None),
    ("transient 20%", 0.20, None),
    ("5% + outage", 0.05, (30.0, 60.0)),
)


def chaos_system(rate: float, outage: tuple[float, float] | None) -> LinguaManga:
    clock = VirtualClock()
    faults = [FaultSpec(kind=FaultKind.TRANSIENT, rate=rate)]
    if outage is not None:
        faults.append(FaultSpec(kind=FaultKind.OUTAGE, start=outage[0], end=outage[1]))
    chaos = ChaosProvider(SimulatedProvider(), faults, seed=2023, clock=clock)
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_retries=3, backoff_seconds=0.5, jitter=0.2),
        deadline=Deadline(60.0),
    )
    return LinguaManga(service=LLMService(chaos, policy=policy, clock=clock))


def run_arm(rate: float, outage: tuple[float, float] | None) -> dict:
    dataset = generate_er_dataset("beer")
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4), error_policy="skip_record"
    )
    system = chaos_system(rate, outage)
    pairs = pairs_as_inputs(dataset.test)
    report = system.run(pipeline, {"pairs": pairs})
    verdicts = next(iter(report.outputs.values()))
    # Score F1 on the records that were processed (quarantine is reported,
    # not silently dropped): skip_record preserves the order of survivors.
    quarantined = {id(q.record) for q in report.quarantine}
    y_true = [p.label for pair, p in zip(pairs, dataset.test) if id(pair) not in quarantined]
    predictions = [int(bool(v)) for v in verdicts]
    usage = system.usage()
    return {
        "total": len(pairs),
        "processed": len(verdicts),
        "quarantined": len(report.quarantine),
        "partial": report.partial,
        "f1": 100 * f1_score(y_true, predictions),
        "retries": usage.retries,
        "failed": usage.failed_calls,
        "clock": system.service.clock_seconds,
    }


@pytest.fixture(scope="module")
def sweep():
    return {name: run_arm(rate, outage) for name, rate, outage in ARMS}


def _render(rows: dict) -> str:
    lines = [
        f"{'arm':16s} {'total':>6s} {'done':>6s} {'quar':>5s} {'rate':>7s} "
        f"{'F1':>7s} {'retries':>8s} {'failed':>7s} {'clock_s':>8s}",
    ]
    for name, row in rows.items():
        completion = 100 * row["processed"] / row["total"]
        lines.append(
            f"{name:16s} {row['total']:6d} {row['processed']:6d} "
            f"{row['quarantined']:5d} {completion:6.1f}% {row['f1']:7.2f} "
            f"{row['retries']:8d} {row['failed']:7d} {row['clock']:8.1f}"
        )
    return "\n".join(lines)


def test_robustness_sweep(sweep):
    emit("robustness", _render(sweep))
    emit_json(
        "robustness",
        [
            {
                "name": name,
                "processed": row["processed"],
                "quarantined": row["quarantined"],
                "f1": row["f1"],
                "retries": row["retries"],
                "failed_calls": row["failed"],
                "clock_seconds": row["clock"],
            }
            for name, row in sweep.items()
        ],
    )
    clean = sweep["clean"]
    assert clean["quarantined"] == 0 and not clean["partial"]
    for name, row in sweep.items():
        # Conservation: every record is either processed or quarantined.
        assert row["processed"] + row["quarantined"] == row["total"]
        assert row["partial"] == (row["quarantined"] > 0)
    # Acceptance: >=95% of records survive 20% transient chaos.
    chaotic = sweep["transient 20%"]
    assert chaotic["processed"] >= 0.95 * chaotic["total"]
    assert chaotic["retries"] > 0
    # F1 on processed records degrades only marginally vs the clean arm.
    assert chaotic["f1"] >= clean["f1"] - 10
    # The outage arm loses the window, not the run.
    outage = sweep["5% + outage"]
    assert outage["processed"] >= 0.5 * outage["total"]


def test_sweep_is_deterministic():
    assert run_arm(0.2, None) == run_arm(0.2, None)


def test_benchmark_chaos_overhead(benchmark):
    """Time one chaotic run end to end (virtual waits cost no wall-clock)."""
    result = benchmark(lambda: run_arm(0.2, None)["processed"])
    assert result > 0
