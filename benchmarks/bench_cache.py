"""Multi-tier call avoidance — warm-run savings and distillation economics.

Three claims, measured:

1. **Warm runs re-pay almost nothing.**  Each demo application is run cold
   (fresh persistent cache journal) and then warm (new system, same
   journal).  The exact-match tier answers every repeated prompt, so the
   warm run's provider calls drop by far more than the 50% acceptance bar
   — and the run *outputs* are byte-identical, with only the declared cost
   fields differing.
2. **Distillation cuts the bill on first contact.**  The ER template with
   ``distill=True`` shadow-trains a similarity-feature forest on the
   matcher's own verdicts and routes high-confidence pairs locally; the
   provider-call count and dollar cost drop well below the plain template
   without giving back F1.
3. **The banded Levenshtein is the cheap screen it claims to be.**  With a
   ``max_distance`` budget the O(n·d) diagonal band beats the full O(n·m)
   table by an order of magnitude on long dissimilar strings — that is
   what makes it affordable inside blocking fallback and near-duplicate
   cache lookups.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.tasks.entity_resolution import run_lingua_manga_er
from repro.tasks.imputation import run_hybrid_imputation
from repro.tasks.name_extraction import run_name_extraction

from _harness import emit, emit_json

GOLDEN_ER_F1 = 0.9090909090909091


def _run_er(cache_path=None, distill: bool = False):
    system = LinguaManga(cache_path=None if cache_path is None else str(cache_path))
    dataset = generate_er_dataset("beer")
    result = run_lingua_manga_er(system, dataset, distill=distill)
    return result, system


def _run_names(cache_path):
    system = LinguaManga(cache_path=str(cache_path))
    documents = generate_name_dataset(n_documents=120).documents
    return run_name_extraction(system, documents), system


def _run_imputation(cache_path):
    system = LinguaManga(cache_path=str(cache_path))
    records = generate_buy_dataset(n_test=150).test
    return run_hybrid_imputation(system, records), system


APPS = {
    "entity_resolution": _run_er,
    "name_extraction": _run_names,
    "imputation_hybrid": _run_imputation,
}


@pytest.fixture(scope="module")
def warm_sweep(tmp_path_factory) -> dict[str, dict]:
    """Cold run then warm run of every demo app over one shared journal."""
    sweep: dict[str, dict] = {}
    for name, runner in APPS.items():
        journal = tmp_path_factory.mktemp(name) / "cache.jsonl"
        cold, _ = runner(journal)
        warm, _ = runner(journal)
        sweep[name] = {"cold": cold, "warm": warm}
    return sweep


def _render_warm(sweep: dict[str, dict]) -> list[str]:
    lines = [
        "warm-run savings (persistent exact-match cache journal):",
        f"{'app':>20} {'cold calls':>11} {'warm calls':>11} "
        f"{'reduction':>10} {'warm cost':>10}",
    ]
    for name, arms in sweep.items():
        cold, warm = arms["cold"], arms["warm"]
        reduction = 1.0 - warm.llm_calls / cold.llm_calls if cold.llm_calls else 1.0
        lines.append(
            f"{name:>20} {cold.llm_calls:>11} {warm.llm_calls:>11} "
            f"{reduction:>9.1%} ${warm.cost:>9.5f}"
        )
    return lines


def test_warm_runs_cut_provider_calls_by_half_or_more(warm_sweep):
    for name, arms in warm_sweep.items():
        cold, warm = arms["cold"], arms["warm"]
        assert cold.llm_calls > 0, name
        # Acceptance bar: >= 50% fewer provider calls on the warm run.
        assert warm.llm_calls <= cold.llm_calls * 0.5, name
        # And the answers came from the cache, not from thin air.
        assert warm.cached_calls + warm.near_hits >= cold.llm_calls * 0.5, name


def test_warm_run_quality_is_unchanged(warm_sweep):
    er = warm_sweep["entity_resolution"]
    assert er["warm"].f1 == er["cold"].f1
    assert er["warm"].predictions == er["cold"].predictions
    names = warm_sweep["name_extraction"]
    assert names["warm"].f1 == names["cold"].f1
    imputation = warm_sweep["imputation_hybrid"]
    assert imputation["warm"].accuracy == imputation["cold"].accuracy


@pytest.fixture(scope="module")
def distill_arms():
    baseline, _ = _run_er()
    distilled, _ = _run_er(distill=True)
    return baseline, distilled


def _render_distill(baseline, distilled) -> list[str]:
    return [
        "",
        "distillation router (ER, beer, similarity-feature forest student):",
        f"{'arm':>20} {'F1':>8} {'provider calls':>15} "
        f"{'distilled':>10} {'cost':>10}",
        f"{'plain template':>20} {baseline.f1:>8.4f} {baseline.llm_calls:>15} "
        f"{baseline.distilled_calls:>10} ${baseline.cost:>9.5f}",
        f"{'distill=True':>20} {distilled.f1:>8.4f} {distilled.llm_calls:>15} "
        f"{distilled.distilled_calls:>10} ${distilled.cost:>9.5f}",
    ]


def test_distillation_cuts_cost_without_dropping_f1(distill_arms):
    baseline, distilled = distill_arms
    assert baseline.f1 == pytest.approx(GOLDEN_ER_F1)
    # The student takes real traffic...
    assert distilled.distilled_calls > 0
    # ...the provider bill drops materially...
    assert distilled.llm_calls < baseline.llm_calls * 0.7
    assert distilled.cost < baseline.cost
    # ...and quality does not regress below the golden pin.
    assert distilled.f1 >= GOLDEN_ER_F1


def test_banded_levenshtein_speedup():
    from repro.text.similarity import levenshtein_distance

    rng = random.Random(13)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    a = "".join(rng.choice(alphabet) for _ in range(1200))
    b = "".join(rng.choice(alphabet) for _ in range(1200))
    repeats = 3

    started = time.perf_counter()
    for _ in range(repeats):
        full = levenshtein_distance(a, b)
    full_seconds = (time.perf_counter() - started) / repeats

    started = time.perf_counter()
    for _ in range(repeats):
        banded = levenshtein_distance(a, b, max_distance=8)
    banded_seconds = (time.perf_counter() - started) / repeats

    # The band proves "more than 8 edits apart" without the full table.
    assert full > 8 and banded == 9
    speedup = full_seconds / banded_seconds
    emit(
        "cache_levenshtein",
        f"banded levenshtein micro-benchmark (|a|=|b|=1200, budget=8):\n"
        f"full table {full_seconds * 1000:.2f}ms, "
        f"banded {banded_seconds * 1000:.2f}ms, speedup {speedup:.1f}x",
    )
    assert speedup >= 5.0


def test_emit_report(warm_sweep, distill_arms):
    baseline, distilled = distill_arms
    emit("cache", "\n".join(_render_warm(warm_sweep) + _render_distill(baseline, distilled)))
    arms = []
    for name, pair in warm_sweep.items():
        for temperature in ("cold", "warm"):
            result = pair[temperature]
            arms.append(
                {
                    "name": f"{name} {temperature}",
                    "provider_calls": result.llm_calls,
                    "cost": result.cost,
                }
            )
    arms.append(
        {
            "name": "er distill=off",
            "provider_calls": baseline.llm_calls,
            "cost": baseline.cost,
            "f1": baseline.f1,
        }
    )
    arms.append(
        {
            "name": "er distill=on",
            "provider_calls": distilled.llm_calls,
            "cost": distilled.cost,
            "f1": distilled.f1,
            "distilled_calls": distilled.distilled_calls,
        }
    )
    emit_json("cache", arms)
