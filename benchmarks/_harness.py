"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed and also written under ``benchmarks/results/`` so EXPERIMENTS.md can
be checked against fresh runs.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["emit", "RESULTS_DIR"]


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it to ``benchmarks/results/<name>.txt``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
