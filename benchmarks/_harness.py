"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
printed and also written under ``benchmarks/results/`` so EXPERIMENTS.md can
be checked against fresh runs: human-readable text via :func:`emit`, and a
machine-readable JSON record per bench via :func:`emit_json` (one
``BENCH_<name>.json`` each, with a shared arm schema) so CI jobs and
regression tooling can diff results without parsing tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["emit", "emit_json", "RESULTS_DIR"]


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it to ``benchmarks/results/<name>.txt``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(
    name: str, arms: list[dict[str, Any]], **extra: Any
) -> dict[str, Any]:
    """Persist machine-readable results to ``results/BENCH_<name>.json``.

    ``arms`` is one dict per measured arm.  Every arm is normalised to the
    shared schema — ``name``, ``wall_seconds``, ``provider_calls``,
    ``cost`` (``None`` when the bench does not measure that axis) — plus
    whatever bench-specific metrics the arm carries.  ``extra`` keys land
    at the top level beside ``bench`` and ``arms``.
    """
    normalised = []
    for index, arm in enumerate(arms):
        entry: dict[str, Any] = {
            "name": arm.get("name", f"arm{index}"),
            "wall_seconds": arm.get("wall_seconds"),
            "provider_calls": arm.get("provider_calls"),
            "cost": arm.get("cost"),
        }
        entry.update(
            {key: value for key, value in arm.items() if key not in entry}
        )
        normalised.append(entry)
    payload: dict[str, Any] = {"bench": name, "arms": normalised, **extra}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload
