"""Parallel scheduler — wall-clock speedup with byte-identical results.

Runs the entity-resolution template against a :class:`LatencyProvider`
(every provider round trip really sleeps) at increasing worker counts.
The scheduler overlaps record chunks and the batched provider path
amortises one round trip per chunk, so wall-clock time drops with the
worker count while :meth:`RunReport.canonical_json` stays byte-identical
— the determinism contract measured, not just asserted.
"""

from __future__ import annotations

import time

import pytest

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.llm.providers import LatencyProvider, SimulatedProvider
from repro.llm.service import LLMService
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples

from _harness import emit, emit_json

WORKER_COUNTS = (1, 2, 4, 8)
ROUND_TRIP_SECONDS = 0.02
CHUNK_SIZE = 4


def run_arm(workers: int) -> dict:
    dataset = generate_er_dataset("beer")
    pipeline = get_template("entity_resolution").instantiate(
        examples=pick_examples(dataset.train, 4)
    )
    provider = LatencyProvider(SimulatedProvider(), seconds=ROUND_TRIP_SECONDS)
    system = LinguaManga(service=LLMService(provider))
    started = time.perf_counter()
    report = system.run(
        pipeline,
        {"pairs": pairs_as_inputs(dataset.test)},
        workers=workers,
        chunk_size=CHUNK_SIZE,
    )
    elapsed = time.perf_counter() - started
    return {
        "workers": workers,
        "seconds": elapsed,
        "round_trips": provider.round_trips,
        "served": report.cost.served_calls,
        "canonical": report.canonical_json(),
    }


@pytest.fixture(scope="module")
def sweep() -> dict[int, dict]:
    return {workers: run_arm(workers) for workers in WORKER_COUNTS}


def _render(sweep: dict[int, dict]) -> str:
    base = sweep[WORKER_COUNTS[0]]["seconds"]
    lines = [
        "parallel scheduler speedup "
        f"(ER template, {ROUND_TRIP_SECONDS * 1000:.0f}ms round trips, "
        f"chunk_size={CHUNK_SIZE}):",
        f"{'workers':>8} {'seconds':>9} {'speedup':>8} {'round_trips':>12}",
    ]
    for workers in WORKER_COUNTS:
        row = sweep[workers]
        lines.append(
            f"{workers:>8} {row['seconds']:>9.3f} "
            f"{base / row['seconds']:>7.2f}x {row['round_trips']:>12}"
        )
    lines.append(
        "canonical reports identical across all worker counts: "
        + str(len({row["canonical"] for row in sweep.values()}) == 1)
    )
    return "\n".join(lines)


def test_parallel_speedup(sweep):
    emit("parallel", _render(sweep))
    emit_json(
        "parallel",
        [
            {
                "name": f"workers={workers}",
                "wall_seconds": sweep[workers]["seconds"],
                "provider_calls": sweep[workers]["served"],
                "round_trips": sweep[workers]["round_trips"],
            }
            for workers in WORKER_COUNTS
        ],
    )
    # Determinism: byte-identical canonical reports at every worker count.
    assert len({row["canonical"] for row in sweep.values()}) == 1
    # Same provider work regardless of parallelism (no duplicate calls).
    trips = {row["round_trips"] for row in sweep.values()}
    assert len(trips) == 1
    # Acceptance: >= 3x wall-clock speedup at 8 workers vs 1.
    assert sweep[1]["seconds"] / sweep[8]["seconds"] >= 3.0


def test_speedup_is_monotonic_enough(sweep):
    # Not strictly monotonic (thread startup noise), but 4 workers must
    # already beat 1 worker clearly.
    assert sweep[1]["seconds"] / sweep[4]["seconds"] >= 2.0
