"""Ablation E — batch prompting (cost optimization).

Lingua Manga's "Highly Performant" property is about minimising LLM service
calls.  Besides caching and the simulator, packing several record pairs into
one prompt amortises the instruction preamble.  This benchmark sweeps the
batch size on the beer matching workload: accuracy must be identical (the
verdicts are the same judgements), while calls and cost fall steeply.
"""

from __future__ import annotations

import pytest

from repro.core.dsl.builder import PipelineBuilder
from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.ml.metrics import f1_score
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples

from _harness import emit, emit_json

BATCH_SIZES = (1, 5, 10, 25)


@pytest.fixture(scope="module")
def sweep():
    dataset = generate_er_dataset("beer")
    examples = pick_examples(dataset.train, 4)
    y_true = [p.label for p in dataset.test]
    rows = []
    for batch_size in BATCH_SIZES:
        system = LinguaManga()
        if batch_size == 1:
            pipeline = (
                PipelineBuilder("single")
                .load(source="pairs")
                .match_entities(impl="llm", examples=examples)
                .save(key="v")
                .build()
            )
        else:
            pipeline = (
                PipelineBuilder(f"batch{batch_size}")
                .load(source="pairs")
                .match_entities(impl="llm_batch", batch_size=batch_size, examples=examples)
                .save(key="v")
                .build()
            )
        report = system.run(pipeline, {"pairs": pairs_as_inputs(dataset.test)})
        verdicts = [int(bool(v)) for v in next(iter(report.outputs.values()))]
        usage = system.usage()
        rows.append(
            {
                "batch": batch_size,
                "f1": 100 * f1_score(y_true, verdicts),
                "calls": usage.served_calls,
                "tokens": usage.prompt_tokens + usage.completion_tokens,
                "cost": usage.cost,
            }
        )
    return rows


def test_ablation_batching(sweep, benchmark):
    lines = [f"{'batch':>6s} {'F1':>7s} {'calls':>6s} {'tokens':>8s} {'cost':>9s}"]
    for row in sweep:
        lines.append(
            f"{row['batch']:6d} {row['f1']:7.2f} {row['calls']:6d} "
            f"{row['tokens']:8d} ${row['cost']:.4f}"
        )
    emit("ablation_batching", "\n".join(lines))
    emit_json(
        "ablation_batching",
        [
            {
                "name": f"batch={row['batch']}",
                "provider_calls": row["calls"],
                "cost": row["cost"],
                "f1": row["f1"],
                "tokens": row["tokens"],
            }
            for row in sweep
        ],
    )

    # Accuracy is invariant under batching (same judgements, packed).
    f1s = {round(row["f1"], 2) for row in sweep}
    assert len(f1s) == 1
    # Calls and cost fall monotonically with batch size.
    calls = [row["calls"] for row in sweep]
    costs = [row["cost"] for row in sweep]
    assert calls == sorted(calls, reverse=True)
    assert costs == sorted(costs, reverse=True)
    # Batching 25 pairs cuts cost by at least 3x.
    assert sweep[0]["cost"] / sweep[-1]["cost"] > 3

    # Benchmark one batched call over 25 pairs.
    dataset = generate_er_dataset("beer", n_entities=150)
    examples = pick_examples(dataset.train, 2)
    pipeline = (
        PipelineBuilder("b")
        .load(source="pairs")
        .match_entities(impl="llm_batch", batch_size=25, examples=examples)
        .save(key="v")
        .build()
    )
    inputs = {"pairs": pairs_as_inputs(dataset.test[:25])}

    def run_batch():
        return LinguaManga().run(pipeline, inputs)

    report = benchmark(run_batch)
    assert len(next(iter(report.outputs.values()))) == 25
