"""Figure 3 / section 4.2 — the name-extraction pipeline.

Reproduces the demo storyline on the multilingual corpus:

1. the monolingual Figure 3 pipeline (tokenize -> LLMGC noun phrases ->
   LLM tagging) degrades on non-English text;
2. adding the LLM language-detection module restores accuracy
   ("Lingua Manga quickly resolves this issue by incorporating an LLM
   language detection module and providing multi-lingual tools");
3. attaching the optimizer's simulator to the tagging module slashes LLM
   calls at comparable accuracy ("the domain expert may use the simulator
   to create an ML-based alternative ... with significantly lower expenses").
"""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.names import generate_name_dataset
from repro.tasks.name_extraction import run_name_extraction

from _harness import emit, emit_json


@pytest.fixture(scope="module")
def storyline():
    documents = generate_name_dataset(n_documents=260).documents
    results = []
    system = LinguaManga()
    results.append(
        run_name_extraction(system, documents, multilingual=False, variant="monolingual")
    )
    results.append(
        run_name_extraction(system, documents, multilingual=True, variant="+langdetect")
    )
    # Fresh system for the simulator arm so its call count is self-contained.
    sim_system = LinguaManga()
    results.append(
        run_name_extraction(
            sim_system,
            documents,
            multilingual=True,
            simulate_tagging=True,
            variant="+simulator",
        )
    )
    return documents, results


def _render(documents, results) -> str:
    languages = sorted({d.language for d in documents})
    header = f"{'variant':14s} {'F1':>7s} {'calls':>6s} {'cost':>9s} " + " ".join(
        f"{lang:>6s}" for lang in languages
    )
    lines = [header]
    for result in results:
        per_language = " ".join(
            f"{100 * result.per_language_f1.get(lang, 0.0):6.1f}" for lang in languages
        )
        lines.append(
            f"{result.variant:14s} {100 * result.f1:7.2f} {result.llm_calls:6d} "
            f"${result.cost:<8.4f} {per_language}"
        )
    return "\n".join(lines)


def test_fig3_name_extraction(storyline, benchmark):
    documents, results = storyline
    emit("fig3_name_extraction", _render(documents, results))
    emit_json(
        "fig3_name_extraction",
        [
            {
                "name": result.variant,
                "provider_calls": result.llm_calls,
                "cost": result.cost,
                "f1": result.f1,
            }
            for result in results
        ],
    )
    mono, multi, simulated = results

    # 1. multilingual data degrades the monolingual pipeline...
    assert mono.per_language_f1["en"] > 0.85
    non_english = [f1 for lang, f1 in mono.per_language_f1.items() if lang != "en"]
    assert max(non_english) < 0.75
    # 2. ...and the language-detection module fixes it.
    assert multi.f1 > mono.f1 + 0.15
    assert min(multi.per_language_f1.values()) > 0.6
    # 3. the simulator cuts LLM traffic at comparable accuracy.
    assert simulated.llm_calls < multi.llm_calls
    assert simulated.f1 > multi.f1 - 0.08

    # Benchmark one end-to-end extraction pass on a slice.
    slice_docs = documents[:25]

    def run_slice():
        return run_name_extraction(LinguaManga(), slice_docs, multilingual=True).f1

    f1 = benchmark(run_slice)
    assert f1 > 0.5
