"""Autotune convergence — the profile store pays for itself by run two.

Every demo application is run twice with ``autotune=True`` over one
persistent cache journal + profile store.  Run one is cold: the store is
empty, so the tuner proposes nothing and the run is byte-identical to an
untuned run by construction.  Run two is warm: the store holds run one's
profile, the tuner verifies warmth against the live cache and applies the
output-neutral knob set (sequential workers, warm chunk size, prefetch
off).  The gates:

1. run two pays zero provider calls and zero cost on every app;
2. run two's report is byte-identical to an untuned warm control;
3. run two is no slower than run one (it skips the provider entirely);
4. with workers pinned to 1/2/8 the tuner reaches one identical decision
   list and one identical report — decisions depend on the store, never
   on the ambient parallelism.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.datasets.imputation import generate_buy_dataset
from repro.datasets.names import generate_name_dataset
from repro.tasks.entity_resolution import run_lingua_manga_er
from repro.tasks.imputation import run_hybrid_imputation
from repro.tasks.name_extraction import run_name_extraction

from _harness import emit, emit_json

# Timer slack for the run2 <= run1 gate: both runs are sub-second against
# the simulated provider, so absorb scheduler noise without hiding a real
# regression (a warm run that re-pays the provider would blow way past it).
WALL_SLACK_SECONDS = 0.05


def _run_er(system, **kwargs):
    dataset = generate_er_dataset("beer", seed=7)
    return run_lingua_manga_er(system, dataset, **kwargs)


def _run_names(system, **kwargs):
    documents = generate_name_dataset(seed=3, n_documents=80).documents
    return run_name_extraction(system, documents, **kwargs)


def _run_imputation(system, **kwargs):
    records = generate_buy_dataset(seed=11, n_train=60, n_test=120).test
    return run_hybrid_imputation(system, records, **kwargs)


APPS = {
    "entity_resolution": _run_er,
    "name_extraction": _run_names,
    "imputation_hybrid": _run_imputation,
}


def _timed(runner, cache, profile, autotune=True, **kwargs):
    system = LinguaManga(cache_path=str(cache))
    started = time.perf_counter()
    result = runner(
        system, autotune=autotune, profile_path=str(profile), **kwargs
    )
    return result, time.perf_counter() - started


@pytest.fixture(scope="module")
def convergence(tmp_path_factory) -> dict[str, dict]:
    """Cold tuned run, warm tuned run, and a warm untuned control per app."""
    sweep: dict[str, dict] = {}
    for name, runner in APPS.items():
        root = tmp_path_factory.mktemp(name)
        cache, profile = root / "cache.jsonl", root / "cache.autotune.jsonl"
        control_cache = root / "control-cache.jsonl"
        control_profile = root / "control-prof.jsonl"
        first, first_wall = _timed(runner, cache, profile)
        second, second_wall = _timed(runner, cache, profile)
        # The untuned control needs its own warm journal: cold seed run,
        # then the warm run whose report run two must reproduce.
        _timed(runner, control_cache, control_profile, autotune=False)
        control, _ = _timed(
            runner, control_cache, control_profile, autotune=False, workers=1
        )
        sweep[name] = {
            "first": first,
            "first_wall": first_wall,
            "second": second,
            "second_wall": second_wall,
            "control": control,
        }
    return sweep


def _render(sweep: dict[str, dict]) -> str:
    lines = [
        "autotune convergence (cold tuned run -> warm tuned run, shared "
        "cache journal + profile store):",
        f"{'app':>20} {'run1 calls':>11} {'run1 cost':>10} {'run2 calls':>11} "
        f"{'run2 cost':>10} {'wall1':>8} {'wall2':>8}",
    ]
    for name, arms in sweep.items():
        lines.append(
            f"{name:>20} {arms['first'].llm_calls:>11} "
            f"${arms['first'].cost:>9.5f} {arms['second'].llm_calls:>11} "
            f"${arms['second'].cost:>9.5f} {arms['first_wall']:>7.3f}s "
            f"{arms['second_wall']:>7.3f}s"
        )
    lines.append(
        "run-two reports byte-identical to untuned warm controls; "
        "decisions identical at pinned workers 1/2/8"
    )
    return "\n".join(lines)


def test_second_run_pays_nothing(convergence):
    for name, arms in convergence.items():
        assert arms["first"].llm_calls > 0, name
        assert arms["second"].llm_calls == 0, name
        assert arms["second"].cost == 0.0, name


def test_second_run_is_no_slower(convergence):
    for name, arms in convergence.items():
        assert (
            arms["second_wall"] <= arms["first_wall"] + WALL_SLACK_SECONDS
        ), name


def test_tuned_warm_report_is_byte_identical(convergence):
    for name, arms in convergence.items():
        assert (
            arms["second"].report.canonical_json()
            == arms["control"].report.canonical_json()
        ), name
        assert arms["second"].report.tuning["verified_warm"] is True, name


def test_decisions_deterministic_across_pinned_workers(tmp_path):
    cache = tmp_path / "cache.jsonl"
    profile = tmp_path / "cache.autotune.jsonl"
    _timed(_run_er, cache, profile)  # seed the store
    outcomes = set()
    for workers in (1, 2, 8):
        result, _ = _timed(_run_er, cache, profile, workers=workers)
        outcomes.add(
            (
                result.report.canonical_json(),
                json.dumps(result.report.tuning["decisions"], sort_keys=True),
            )
        )
    assert len(outcomes) == 1


def test_emit_report(convergence):
    emit("autotune", _render(convergence))
    arms = []
    for name, pair in convergence.items():
        for run_index, wall_key in (("run1", "first"), ("run2", "second")):
            result = pair[wall_key]
            arms.append(
                {
                    "name": f"{name} {run_index}",
                    "wall_seconds": pair[f"{wall_key}_wall"],
                    "provider_calls": result.llm_calls,
                    "cost": result.cost,
                }
            )
    emit_json("autotune", arms)
