"""Ablation C — the connector's selective data upload (section 3.2).

Compares three ways to let an LLM answer NL questions about a table:

- **full upload** — serialise rows into the prompt (capped by a prompt
  budget) and let the model compute; on tables larger than the budget the
  answers silently go wrong, and every uploaded cell is exposed.
- **schema only** — upload nothing but the schema; without the connector
  the model cannot execute SQL, so it cannot answer data questions at all.
- **connector** — the model writes SQL from the schema, the connector runs
  it locally under a SELECT-only policy; answers stay exact and only result
  rows are exposed.

Expected shape: connector accuracy ~100% with minimal exposure; full upload
exposes everything and loses accuracy once the table exceeds the prompt
budget; schema-only exposes nothing but answers nothing.
"""

from __future__ import annotations

import json

import pytest

from repro._util import seeded_rng
from repro.core.optimizer.connector import TabularConnector
from repro.core.runtime.system import LinguaManga
from repro.storage.table import Table

from _harness import emit, emit_json

PROMPT_ROW_BUDGET = 40  # rows that fit into the full-upload prompt
TABLE_SIZES = (20, 100, 400)


def make_table(n_rows: int) -> Table:
    rng = seeded_rng(f"connector-{n_rows}")
    return Table.from_records(
        "products",
        [
            {
                "id": i,
                "name": f"item {i}",
                "price": round(rng.uniform(5, 200), 2),
                "stock": rng.randrange(0, 50),
            }
            for i in range(n_rows)
        ],
    )


def questions_and_answers(table: Table):
    prices = table.column("price")
    over_100 = sum(1 for p in prices if p > 100)
    return [
        ("How many products have price over 100?", float(over_100)),
        ("What is the average of price?", sum(prices) / len(prices)),
        ("What is the highest price?", max(prices)),
    ]


def _first_number(text: str) -> float | None:
    import re

    match = re.search(r"-?\d+(?:\.\d+)?", text)
    return float(match.group()) if match else None


def run_full_upload(system: LinguaManga, table: Table) -> tuple[float, int]:
    """Rows in the prompt (truncated at the budget); accuracy + exposure."""
    visible_rows = table.records()[:PROMPT_ROW_BUDGET]
    exposure = len(visible_rows) * len(table.schema)
    payload = json.dumps(visible_rows)
    correct = 0
    qa = questions_and_answers(table)
    for question, expected in qa:
        response = system.service.complete(
            f"Answer the question from the table rows.\nRows: {payload}\n"
            f"Question: {question}",
            purpose="full-upload",
        )
        value = _first_number(response)
        if value is not None and abs(value - expected) < max(0.01 * abs(expected), 0.01):
            correct += 1
    return correct / len(qa), exposure


def run_schema_only(system: LinguaManga, table: Table) -> tuple[float, int]:
    """Only the schema goes up; the model has no data to compute from."""
    schema = f"TABLE {table.name} (" + ", ".join(
        f"{c.name} {c.type}" for c in table.schema.columns
    ) + ")"
    correct = 0
    qa = questions_and_answers(table)
    for question, expected in qa:
        response = system.service.complete(
            f"Schema: {schema}\nQuestion: {question}\nAnswer the question.",
            purpose="schema-only",
        )
        value = _first_number(response)
        if value is not None and abs(value - expected) < max(0.01 * abs(expected), 0.01):
            correct += 1
    return correct / len(qa), 0


def run_connector(system: LinguaManga, table: Table) -> tuple[float, int]:
    """The connector path: schema -> LLM SQL -> local execution."""
    system.register_table(table)
    connector = TabularConnector(system.database, system.service, max_result_rows=5)
    correct = 0
    qa = questions_and_answers(table)
    for question, expected in qa:
        answer = connector.ask(question)
        record = answer.result.record(0) if len(answer.result) else {}
        values = [v for v in record.values() if isinstance(v, (int, float))]
        if any(abs(v - expected) < max(0.01 * abs(expected), 0.01) for v in values):
            correct += 1
    return correct / len(qa), connector.report.values_uploaded


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n_rows in TABLE_SIZES:
        table = make_table(n_rows)
        for mode, runner in (
            ("full_upload", run_full_upload),
            ("schema_only", run_schema_only),
            ("connector", run_connector),
        ):
            accuracy, exposure = runner(LinguaManga(), table.copy())
            rows.append(
                {
                    "rows": n_rows,
                    "mode": mode,
                    "accuracy": 100 * accuracy,
                    "values_exposed": exposure,
                }
            )
    return rows


def test_ablation_connector(sweep, benchmark):
    lines = [f"{'table rows':>10s} {'mode':>12s} {'accuracy':>9s} {'exposed':>8s}"]
    for row in sweep:
        lines.append(
            f"{row['rows']:10d} {row['mode']:>12s} {row['accuracy']:8.1f}% "
            f"{row['values_exposed']:8d}"
        )
    emit("ablation_connector", "\n".join(lines))
    emit_json(
        "ablation_connector",
        [
            {
                "name": f"{row['mode']} rows={row['rows']}",
                "accuracy": row["accuracy"],
                "values_exposed": row["values_exposed"],
            }
            for row in sweep
        ],
    )

    by_key = {(r["rows"], r["mode"]): r for r in sweep}
    for n_rows in TABLE_SIZES:
        connector = by_key[(n_rows, "connector")]
        full = by_key[(n_rows, "full_upload")]
        schema = by_key[(n_rows, "schema_only")]
        # The connector is always exact and minimally exposed.
        assert connector["accuracy"] == 100.0
        assert connector["values_exposed"] < full["values_exposed"] or n_rows <= PROMPT_ROW_BUDGET
        # Schema-only cannot answer data questions.
        assert schema["accuracy"] == 0.0
    # Full upload collapses once the table exceeds the prompt budget.
    assert by_key[(20, "full_upload")]["accuracy"] == 100.0
    assert by_key[(400, "full_upload")]["accuracy"] < 50.0

    # Benchmark: one connector round trip.
    table = make_table(100)

    def ask_once():
        system = LinguaManga()
        system.register_table(table.copy())
        connector = TabularConnector(system.database, system.service)
        return connector.ask("How many products have price over 100?").result

    result = benchmark(ask_once)
    assert len(result) == 1
