"""Figure 2 — two possible entity-resolution workflows.

The paper's Figure 2 contrasts (a) a custom pipeline the user clicks
together from individual operators with (b) the built-in, well-optimized
template.  Both must produce working entity resolution; the template needs
less construction effort and arrives pre-tuned.  This benchmark builds both,
runs both on the beer benchmark, and reports construction effort (operators
authored / parameters supplied), F1 and LLM cost for each.
"""

from __future__ import annotations

import pytest

from repro.core.dsl.builder import PipelineBuilder
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets.entity_resolution import generate_er_dataset
from repro.ml.metrics import f1_score
from repro.tasks.entity_resolution import pairs_as_inputs, pick_examples

from _harness import emit, emit_json


def build_custom_pipeline(examples):
    """Figure 2a: the user assembles load -> resolve -> save by hand."""
    return (
        PipelineBuilder("custom_er", "hand-built ER pipeline (Figure 2a)")
        .load(source="pairs")
        .match_entities(
            impl="llm",
            task=(
                "Please determine if the following entities are equivalent. "
                "Answer Yes or No."
            ),
            examples=examples,
        )
        .save(key="verdicts")
        .build()
    )


@pytest.fixture(scope="module")
def comparison():
    dataset = generate_er_dataset("beer")
    examples = pick_examples(dataset.train, 4)
    y_true = [p.label for p in dataset.test]
    results = {}
    for label, pipeline in (
        ("custom (Fig 2a)", build_custom_pipeline(examples)),
        ("template (Fig 2b)", get_template("entity_resolution").instantiate(examples=examples)),
    ):
        system = LinguaManga()
        report = system.run(pipeline, {"pairs": pairs_as_inputs(dataset.test)})
        verdicts = next(iter(report.outputs.values()))
        usage = system.usage()
        results[label] = {
            "f1": 100 * f1_score(y_true, [int(bool(v)) for v in verdicts]),
            "operators": len(pipeline.operators),
            "user_params": sum(
                len([k for k in op.params if k not in ("impl",)])
                for op in pipeline.operators
            ),
            "llm_calls": usage.served_calls,
            "cost": usage.cost,
        }
    return results


def test_fig2_workflows(comparison, benchmark):
    """Both workflows work; the template needs no hand-written task prompt."""
    lines = [
        f"{'workflow':20s} {'F1':>7s} {'ops':>4s} {'params':>7s} {'calls':>6s} {'cost':>9s}"
    ]
    for label, row in comparison.items():
        lines.append(
            f"{label:20s} {row['f1']:7.2f} {row['operators']:4d} "
            f"{row['user_params']:7d} {row['llm_calls']:6d} ${row['cost']:.4f}"
        )
    emit("fig2_er_workflows", "\n".join(lines))
    emit_json(
        "fig2_er_workflows",
        [
            {
                "name": label,
                "provider_calls": row["llm_calls"],
                "cost": row["cost"],
                "f1": row["f1"],
                "operators": row["operators"],
                "user_params": row["user_params"],
            }
            for label, row in comparison.items()
        ],
    )

    custom = comparison["custom (Fig 2a)"]
    template = comparison["template (Fig 2b)"]
    # Both produce a working solution...
    assert custom["f1"] > 75 and template["f1"] > 75
    # ...and the template requires less construction effort.
    assert template["user_params"] <= custom["user_params"]

    # Benchmark: template instantiation + compilation (the no-code path).
    def instantiate_and_compile():
        return LinguaManga().compile(get_template("entity_resolution").instantiate())

    plan = benchmark(instantiate_and_compile)
    assert plan.bound
