"""Figure 5 — the Lingua Manga user interface.

Renders the full UI screen (pipeline canvas + module inspector + run log +
usage footer) for the name-extraction demo — the exact view the paper's
Figure 5 shows — and benchmarks the render path.
"""

from __future__ import annotations

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.ui.views import render_screen

from _harness import emit, emit_json


def test_fig5_ui(benchmark):
    system = LinguaManga()
    pipeline = get_template("name_extraction").instantiate()
    plan = system.compile(pipeline)
    report = plan.execute(
        {"documents": [{"text": "Yesterday John Smith met Anna Schmidt in Boston."}]}
    )
    tag_operator = next(
        op.name for op in pipeline.operators if op.kind == "tag_names"
    )
    screen = render_screen(plan, report, inspect=tag_operator)
    emit("fig5_ui", screen)
    emit_json(
        "fig5_ui",
        [
            {
                "name": "render_screen",
                "screen_chars": len(screen),
                "provider_calls": report.cost.served_calls,
            }
        ],
    )

    assert "pipeline: name_extraction_template" in screen
    assert f"module: {tag_operator}" in screen
    assert "run log" in screen
    assert "LLM usage" in screen

    rendered = benchmark(lambda: render_screen(plan, report, inspect=tag_operator))
    assert len(rendered) > 500
