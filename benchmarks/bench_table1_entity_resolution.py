"""Table 1 — Quantitative Experiment on Entity Resolution.

Regenerates the paper's Table 1: F1 of Magellan, Ditto, FMs and Lingua Manga
on the three entity-resolution benchmarks.  Paper values::

    Dataset            Magellan  Ditto   FMs    Lingua Manga
    BeerAdvo-RateBeer   78.8     94.37   78.6   89.66
    Fodors-Zagats      100.0    100.00   87.2   95.65
    iTunes-Amazon       91.2     97.06   65.9   92.00

Expected shape here: Ditto >= Lingua Manga > FMs on every dataset; Magellan
saturates on restaurants and trails on the dirty-text datasets.
"""

from __future__ import annotations

import pytest

from repro.baselines.ditto import evaluate_ditto
from repro.baselines.fms import evaluate_fms_matching
from repro.baselines.magellan import evaluate_magellan
from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import ER_DATASET_NAMES, generate_er_dataset
from repro.tasks.entity_resolution import run_lingua_manga_er

from _harness import emit, emit_json

PAPER = {
    "beer": {"magellan": 78.8, "ditto": 94.37, "fms": 78.6, "lingua_manga": 89.66},
    "restaurants": {"magellan": 100.0, "ditto": 100.0, "fms": 87.2, "lingua_manga": 95.65},
    "music": {"magellan": 91.2, "ditto": 97.06, "fms": 65.9, "lingua_manga": 92.0},
}


@pytest.fixture(scope="module")
def table1():
    rows = {}
    for name in ER_DATASET_NAMES:
        dataset = generate_er_dataset(name)
        system = LinguaManga()
        lm = run_lingua_manga_er(system, dataset, n_examples=4)
        fms_service = LinguaManga().service
        rows[name] = {
            "magellan": 100 * evaluate_magellan(dataset),
            "ditto": 100 * evaluate_ditto(dataset),
            "fms": 100 * evaluate_fms_matching(fms_service, dataset),
            "lingua_manga": 100 * lm.f1,
        }
    return rows


def _render(rows: dict) -> str:
    lines = [
        f"{'dataset':14s} {'Magellan':>9s} {'Ditto':>9s} {'FMs':>9s} {'LinguaManga':>12s}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:14s} {row['magellan']:9.2f} {row['ditto']:9.2f} "
            f"{row['fms']:9.2f} {row['lingua_manga']:12.2f}"
        )
        paper = PAPER[name]
        lines.append(
            f"{'  (paper)':14s} {paper['magellan']:9.2f} {paper['ditto']:9.2f} "
            f"{paper['fms']:9.2f} {paper['lingua_manga']:12.2f}"
        )
    return "\n".join(lines)


def test_table1_shape(table1, benchmark):
    """Verify the paper's qualitative claims and time the LM matcher."""
    emit("table1_entity_resolution", _render(table1))
    emit_json(
        "table1_entity_resolution",
        [
            {"name": f"{dataset_name} {method}", "f1": f1, "paper_f1": PAPER[dataset_name][method]}
            for dataset_name, row in table1.items()
            for method, f1 in row.items()
        ],
    )
    for name, row in table1.items():
        # Lingua Manga clearly beats raw prompting everywhere.
        assert row["lingua_manga"] > row["fms"] + 3
        # The supervised SOTA stays at or above the label-free system.
        assert row["ditto"] >= row["lingua_manga"] - 3
    # Restaurants is the easy benchmark: everyone's best dataset.
    assert table1["restaurants"]["magellan"] > 95
    assert max(
        table1["beer"]["fms"], table1["music"]["fms"]
    ) < table1["restaurants"]["fms"] + 3

    # Benchmark: LM few-shot matching on a small slice.
    dataset = generate_er_dataset("beer", n_entities=120)

    def run_slice():
        return run_lingua_manga_er(LinguaManga(), dataset, n_examples=2).f1

    result = benchmark(run_slice)
    assert result > 0.5
