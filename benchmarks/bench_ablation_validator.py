"""Ablation A — the validator's repair loop (design choice, section 3.2).

Sweeps the validator's repair-round budget ("timeout") and measures the
downstream quality of the LLMGC noun-phrase module on the name-extraction
corpus.  Expected shape: the raw first draft (0 rounds) is noticeably worse;
each repair round recovers quality until the test cases pass; extra budget
beyond that changes nothing.
"""

from __future__ import annotations

import pytest

from repro.core.modules.llmgc import LLMGCModule
from repro.core.optimizer.validator import ModuleValidator
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import default_noun_phrase_cases
from repro.datasets.names import generate_name_dataset
from repro.text.language import detect_language
from repro.text.normalize import normalize_text
from repro.text.phrases import noun_phrases
from repro.text.similarity import jaro_winkler_similarity

from _harness import emit, emit_json


def _tools():
    return {
        "noun_phrases": noun_phrases,
        "detect_language": detect_language,
        "normalize_text": normalize_text,
        "string_similarity": jaro_winkler_similarity,
    }


def _phrase_quality(module: LLMGCModule, documents) -> float:
    """Recall of ground-truth names among extracted candidate phrases."""
    found = total = 0
    for doc in documents:
        phrases = set(module.run(doc.text))
        for name in doc.names:
            total += 1
            if name in phrases:
                found += 1
    return found / total if total else 0.0


@pytest.fixture(scope="module")
def sweep():
    documents = generate_name_dataset(n_documents=150).documents
    rows = []
    for max_rounds in (0, 1, 2, 3, 4):
        system = LinguaManga()
        module = LLMGCModule(
            "chunker", system.service, "extract noun phrases from text", tools=_tools()
        )
        module.generate()
        rounds_used = 0
        cases_pass = False
        if max_rounds > 0:
            validator = ModuleValidator(
                system.service,
                default_noun_phrase_cases(),
                max_rounds=max_rounds,
                max_regenerations=0,
            )
            report = validator.validate_and_repair(module)
            rounds_used = report.rounds
            cases_pass = report.passed
        rows.append(
            {
                "budget": max_rounds,
                "rounds_used": rounds_used,
                "cases_pass": cases_pass,
                "revision": module.revision,
                "name_recall": 100 * _phrase_quality(module, documents),
                "llm_calls": system.usage().served_calls,
            }
        )
    return rows


def test_ablation_validator(sweep, benchmark):
    lines = [
        f"{'budget':>7s} {'used':>5s} {'pass':>5s} {'rev':>4s} {'name recall':>12s} {'calls':>6s}"
    ]
    for row in sweep:
        lines.append(
            f"{row['budget']:7d} {row['rounds_used']:5d} {str(row['cases_pass']):>5s} "
            f"{row['revision']:4d} {row['name_recall']:11.1f}% {row['llm_calls']:6d}"
        )
    emit("ablation_validator", "\n".join(lines))
    emit_json(
        "ablation_validator",
        [
            {
                "name": f"budget={row['budget']}",
                "provider_calls": row["llm_calls"],
                "rounds_used": row["rounds_used"],
                "cases_pass": row["cases_pass"],
                "name_recall": row["name_recall"],
            }
            for row in sweep
        ],
    )

    first, last = sweep[0], sweep[-1]
    # The unvalidated first draft is clearly worse.
    assert first["name_recall"] < last["name_recall"] - 10
    # Two repair rounds reach the repaired plateau (the chunker has 3 revisions).
    plateau = [row for row in sweep if row["budget"] >= 2]
    assert all(row["cases_pass"] for row in plateau)
    recalls = {round(row["name_recall"], 1) for row in plateau}
    assert len(recalls) == 1  # extra budget changes nothing

    # Benchmark one full validate-and-repair cycle.
    def validate_once():
        system = LinguaManga()
        module = LLMGCModule(
            "chunker", system.service, "extract noun phrases from text", tools=_tools()
        )
        validator = ModuleValidator(
            system.service, default_noun_phrase_cases(), max_rounds=4
        )
        return validator.validate_and_repair(module).passed

    assert benchmark(validate_once) is True
