"""Columnar hot-path speedup — the tentpole gate for the columnar refactor.

Two hot paths are measured against their scalar oracles on synthetic
corpora sized by ``BENCH_COLUMNAR_RECORDS`` (default 100k records):

- **blocking**: ``_block_columnar`` (one searchsorted join + bincount
  scores + batched banded Levenshtein rescue) vs ``_block_scalar``
  (dict probes, per-pair Levenshtein), both downstream of the shared
  TF-IDF model build;
- **baseline feature extraction**: ``PairFeatureExtractor`` columnar vs
  scalar over the full Magellan/Ditto metric menu.

The scalar side of feature extraction is measured on a
``BENCH_COLUMNAR_SCALAR_SAMPLE`` subset (default 4000 pairs) and
rate-extrapolated — running the per-pair oracle over all 100k pairs
would take minutes and adds no information.  Both paths are also checked
for *identical output* while being timed, so the speedup can never come
from computing something different.

A final section runs the ER demo app under ``RunProfile`` with columnar
execution on and off: the provider/local split shows where the saved time
lives, and the profile must reconcile with the cost snapshot in both
modes.

Acceptance gate: ``BENCH_COLUMNAR_MIN_SPEEDUP`` (default 5.0) on both hot
paths.  CI smoke narrows the corpus via the env knobs.
"""

from __future__ import annotations

import itertools
import math
import os
import random
import time

import numpy as np

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.ml.features import PAIR_FEATURE_NAMES, PairFeatureExtractor
from repro.obs import Observability
from repro.tasks.blocking import _block_columnar, _block_scalar
from repro.tasks.entity_resolution import run_lingua_manga_er
from repro.text.normalize import normalize_text
from repro.text.similarity import TfIdfModel

from _harness import emit, emit_json

N_RECORDS = int(os.environ.get("BENCH_COLUMNAR_RECORDS", "100000"))
SCALAR_SAMPLE = int(os.environ.get("BENCH_COLUMNAR_SCALAR_SAMPLE", "4000"))
MIN_SPEEDUP = float(os.environ.get("BENCH_COLUMNAR_MIN_SPEEDUP", "5.0"))
REPEATS = int(os.environ.get("BENCH_COLUMNAR_REPEATS", "2"))

GOLDEN_ER_F1 = 0.9090909090909091


def _best_of(fn):
    """Best-of-``REPEATS`` wall time: damps scheduler/cache noise for both
    contenders equally.  Returns ``(seconds, result)``."""
    best = float("inf")
    result = None
    for _ in range(max(REPEATS, 1)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _vocabulary(rng: random.Random, size: int) -> list[str]:
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(3, 9)))
        for _ in range(size)
    ]


def _synthetic_records(n: int, seed: int, dirty_fraction: float = 0.0) -> list[dict]:
    """Product-ish records: multi-word name, short brand, numeric field.

    The token and brand pools are derived from fixed seeds so that two
    record streams (``seed=1`` vs ``seed=2``) describe the same domain —
    real ER sides share a vocabulary; disjoint pools would push every
    record into the Levenshtein rescue and benchmark nothing else.

    ``dirty_fraction`` of the records get OCR-grade corruption: one
    deletion in *every* name token, the documented blind spot of token
    blocking, which routes those records through the sorted-neighborhood
    rescue — the regime a curation deployment over dirty data lives in.
    """
    rng = random.Random(seed)
    vocab = _vocabulary(random.Random(1234), max(1000, n // 4))
    brands = _vocabulary(random.Random(4321), max(50, n // 200))
    records = []
    for _ in range(n):
        name = " ".join(rng.choice(vocab) for _ in range(4))
        if rng.random() < dirty_fraction:
            name = " ".join(
                token[:k] + token[k + 1 :]
                for token in name.split()
                for k in (rng.randrange(len(token)),)
            )
        elif rng.random() < 0.1:  # light typos keep the rescue gate honest
            name = name.replace(name[rng.randrange(len(name))], "", 1)
        records.append(
            {
                "name": name,
                "brand": rng.choice(brands) if rng.random() > 0.05 else None,
                "abv": f"{rng.uniform(3, 12):.1f}%" if rng.random() > 0.1 else "",
            }
        )
    return records


def test_blocking_speedup():
    per_side = max(N_RECORDS // 2, 10)
    left = _synthetic_records(per_side, seed=1, dirty_fraction=0.4)
    right = _synthetic_records(per_side, seed=2)
    left_texts = [normalize_text(str(r.get("name") or "")) for r in left]
    right_texts = [normalize_text(str(r.get("name") or "")) for r in right]
    model = TfIdfModel(left_texts + right_texts)
    params = dict(
        max_candidates_per_record=5,
        min_shared_tokens=1,
        neighborhood_window=3,
        fallback_similarity=0.55,
    )

    scalar_seconds, (scalar_pairs, scalar_considered) = _best_of(
        lambda: _block_scalar(left_texts, right_texts, model, **params)
    )
    columnar_seconds, (columnar_pairs, columnar_considered) = _best_of(
        lambda: _block_columnar(left_texts, right_texts, model, **params)
    )

    assert columnar_pairs == scalar_pairs
    assert columnar_considered == scalar_considered
    speedup = scalar_seconds / columnar_seconds
    emit(
        "columnar_blocking",
        f"blocking hot path, {per_side:,} x {per_side:,} records "
        f"({len(scalar_pairs):,} candidate pairs):\n"
        f"scalar   {scalar_seconds:8.3f}s\n"
        f"columnar {columnar_seconds:8.3f}s\n"
        f"speedup  {speedup:7.1f}x (identical pairs and counts)",
    )
    emit_json(
        "columnar_blocking",
        [
            {"name": "scalar", "wall_seconds": scalar_seconds},
            {"name": "columnar", "wall_seconds": columnar_seconds},
        ],
        speedup=speedup,
        candidate_pairs=len(scalar_pairs),
    )
    assert speedup >= MIN_SPEEDUP


def _catalog_records(n: int, seed: int) -> list[dict]:
    """Product records with heavy-tailed name tokens.

    Real attribute-value tokens are zipf-ish; ``1/sqrt(rank)`` keeps the
    head common without one stop-word dominating the join.
    """
    rng = random.Random(seed)
    vocab = _vocabulary(random.Random(1234), 6000)
    weights = [1.0 / math.sqrt(rank) for rank in range(1, len(vocab) + 1)]
    cum_weights = list(itertools.accumulate(weights))
    brands = _vocabulary(random.Random(4321), 60)
    records = []
    for _ in range(n):
        name = " ".join(rng.choices(vocab, cum_weights=cum_weights, k=4))
        if rng.random() < 0.1:
            name = name.replace(name[rng.randrange(len(name))], "", 1)
        records.append(
            {
                "name": name,
                "brand": rng.choice(brands) if rng.random() > 0.05 else None,
                "abv": f"{rng.uniform(3, 12):.1f}%" if rng.random() > 0.1 else "",
            }
        )
    return records


def _candidate_pairs(n_pairs: int, seed: int) -> list[tuple[dict, dict]]:
    """Blocking-shaped pair workload.

    Downstream of blocking each left record appears in up to
    ``max_candidates_per_record`` pairs and short attributes repeat across
    the batch — the shape the columnar cache exploits — so the bench pairs
    mirror that instead of zipping two fully unique record streams.
    """
    per_record = 5
    rng = random.Random(seed)
    left = _catalog_records(max(n_pairs // per_record, 1), seed + 10)
    right = _catalog_records(max(n_pairs // per_record, 1), seed + 20)
    pairs = [
        (record, rng.choice(right)) for record in left for _ in range(per_record)
    ]
    rng.shuffle(pairs)
    return pairs[:n_pairs]


def test_feature_extraction_speedup():
    n_pairs = max(N_RECORDS, 10)
    sample = min(SCALAR_SAMPLE, n_pairs)
    pairs = _candidate_pairs(n_pairs, seed=3)
    attributes = ("name", "brand", "abv")

    scalar_seconds, scalar_matrix = _best_of(
        lambda: PairFeatureExtractor(attributes, columnar=False).transform(
            pairs[:sample]
        )
    )
    scalar_rate = sample / scalar_seconds

    columnar_seconds, columnar_matrix = _best_of(
        lambda: PairFeatureExtractor(attributes, columnar=True).transform(pairs)
    )
    columnar_rate = n_pairs / columnar_seconds

    # Equivalence while being timed: the sampled prefix must be bit-equal.
    assert np.array_equal(columnar_matrix[:sample], scalar_matrix)
    speedup = columnar_rate / scalar_rate
    emit(
        "columnar_features",
        f"pair feature extraction ({len(attributes)} attributes, "
        f"{len(PAIR_FEATURE_NAMES)} metrics):\n"
        f"scalar   {scalar_rate:10,.0f} pairs/s (measured on {sample:,})\n"
        f"columnar {columnar_rate:10,.0f} pairs/s (measured on {n_pairs:,})\n"
        f"speedup  {speedup:7.1f}x (bit-identical features)",
    )
    emit_json(
        "columnar_features",
        [
            {
                "name": "scalar",
                "wall_seconds": scalar_seconds,
                "pairs_per_sec": scalar_rate,
            },
            {
                "name": "columnar",
                "wall_seconds": columnar_seconds,
                "pairs_per_sec": columnar_rate,
            },
        ],
        speedup=speedup,
    )
    assert speedup >= MIN_SPEEDUP


def test_profile_split_and_report_parity():
    """RunProfile's provider/local split under both execution modes.

    The demo corpus is small, so no timing gate here — the point is that
    the profile reconciles with the cost snapshot in both modes and the
    reports are byte-identical (columnar execution is invisible).
    """
    dataset = generate_er_dataset("beer")
    rows = []
    arms = []
    reports = []
    for columnar in (False, True):
        system = LinguaManga(obs=Observability())
        started = time.perf_counter()
        result = run_lingua_manga_er(system, dataset, columnar=columnar)
        seconds = time.perf_counter() - started
        assert result.f1 == GOLDEN_ER_F1
        profile = result.report.profile
        assert profile.reconciles_with(result.report.cost)
        provider = sum(row.provider_calls for row in profile.rows)
        rows.append(
            f"columnar={str(columnar):5s} wall {seconds * 1000:8.1f}ms, "
            f"provider calls {provider}, f1 {result.f1:.4f}"
        )
        arms.append(
            {
                "name": f"columnar={columnar}",
                "wall_seconds": seconds,
                "provider_calls": provider,
                "f1": result.f1,
            }
        )
        reports.append(result.report.canonical_json())
    assert reports[0] == reports[1]
    emit(
        "columnar_profile",
        "ER demo app under RunProfile (provider/local split):\n"
        + "\n".join(rows)
        + "\nreports byte-identical across modes",
    )
    emit_json("columnar_profile", arms, reports_identical=True)
