"""Figure 4 / section 4.3 — data imputation on the Buy dataset.

Paper numbers::

    HoloClean                16.2 %
    FMs (prior LLM work)     84.6 %
    pure LLM module          93.92 %
    Lingua Manga (hybrid)    94.48 %   <- with 1/6 the LLM calls of pure LLM
    IMP (thousands of labels) 96.5 %

Expected shape: HoloClean << FMs < pure LLM <= hybrid <= IMP, and the
hybrid's LLM-call ratio lands near 1/6.
"""

from __future__ import annotations

import pytest

from repro.baselines.fms import evaluate_fms_imputation
from repro.baselines.holoclean import evaluate_holoclean
from repro.baselines.imp import evaluate_imp
from repro.core.optimizer.cost import CostComparison, CostSnapshot
from repro.core.runtime.system import LinguaManga
from repro.datasets.imputation import generate_buy_dataset
from repro.llm.service import LLMService
from repro.tasks.imputation import run_hybrid_imputation, run_llm_imputation

from _harness import emit, emit_json

PAPER = {
    "holoclean": 16.2,
    "fms": 84.6,
    "pure_llm": 93.92,
    "hybrid": 94.48,
    "imp": 96.5,
}


@pytest.fixture(scope="module")
def figure4():
    buy = generate_buy_dataset()
    system = LinguaManga()
    pure = run_llm_imputation(system, buy.test)
    hybrid = run_hybrid_imputation(system, buy.test)
    rows = {
        "holoclean": (100 * evaluate_holoclean(buy.train, buy.test), 0),
        "fms": (100 * evaluate_fms_imputation(LLMService(), buy.test), len(buy.test)),
        "pure_llm": (100 * pure.accuracy, pure.llm_calls),
        "hybrid": (100 * hybrid.accuracy, hybrid.llm_calls),
        "imp": (100 * evaluate_imp(buy.train, buy.test), 0),
    }
    return buy, rows, pure, hybrid


def test_fig4_data_imputation(figure4, benchmark):
    buy, rows, pure, hybrid = figure4
    lines = [f"{'method':12s} {'accuracy':>9s} {'paper':>7s} {'llm_calls':>10s}"]
    for method, (accuracy, calls) in rows.items():
        lines.append(
            f"{method:12s} {accuracy:8.2f}% {PAPER[method]:6.1f}% {calls:10d}"
        )
    comparison = CostComparison(
        "pure_llm",
        CostSnapshot(pure.llm_calls, 0, pure.cost, 0.0),
        "hybrid",
        CostSnapshot(hybrid.llm_calls, 0, hybrid.cost, 0.0),
    )
    lines.append("")
    lines.append(comparison.to_text())
    emit("fig4_data_imputation", "\n".join(lines))
    emit_json(
        "fig4_data_imputation",
        [
            {
                "name": method,
                "provider_calls": calls,
                "accuracy": accuracy,
                "paper_accuracy": PAPER[method],
            }
            for method, (accuracy, calls) in rows.items()
        ],
        call_ratio=comparison.call_ratio(),
    )

    # Shape assertions from the paper.
    assert rows["holoclean"][0] < 40  # signal-starved classical repair
    assert rows["fms"][0] < rows["pure_llm"][0] - 3
    assert rows["hybrid"][0] >= rows["pure_llm"][0] - 1.5
    assert rows["imp"][0] >= rows["hybrid"][0] - 1.5
    # The 1/6-calls claim (allow 1/4 .. 1/9).
    ratio = comparison.call_ratio()
    assert 1 / 9 < ratio < 1 / 4

    # Benchmark: hybrid imputation of a small batch.
    slice_records = buy.test[:40]

    def run_slice():
        return run_hybrid_imputation(LinguaManga(), slice_records).accuracy

    accuracy = benchmark(run_slice)
    assert accuracy > 0.7
