"""Ablation D — label efficiency (paper section 1, "Label Efficient").

"With our system, users can develop a data curation solution with no or only
a few labeled examples from the specific application while still achieving
accuracy comparable to the SOTA ML-based methods trained with thousands of
labels."

This benchmark sweeps the label budget on the beer benchmark: Lingua Manga
with 0/2/4/8 few-shot examples versus the supervised Ditto proxy trained on
25/100/400/all labelled pairs.  Expected shape: Lingua Manga is already
strong at zero labels and flat in the budget; the supervised matcher needs
hundreds of labels to catch up.
"""

from __future__ import annotations

import pytest

from repro.baselines.ditto import DittoMatcher
from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.ml.metrics import f1_score
from repro.tasks.entity_resolution import run_lingua_manga_er

from _harness import emit, emit_json

LM_EXAMPLES = (0, 2, 4, 8)
DITTO_LABELS = (25, 100, 400, None)  # None = the full training split


@pytest.fixture(scope="module")
def sweep():
    dataset = generate_er_dataset("beer")
    y_true = [p.label for p in dataset.test]
    lm_rows = []
    for n_examples in LM_EXAMPLES:
        result = run_lingua_manga_er(LinguaManga(), dataset, n_examples=n_examples)
        lm_rows.append((n_examples, 100 * result.f1))
    ditto_rows = []
    train = dataset.train + dataset.valid
    for budget in DITTO_LABELS:
        subset = train if budget is None else train[:budget]
        if sum(p.label for p in subset) == 0:  # degenerate tiny budgets
            ditto_rows.append((budget, 0.0))
            continue
        matcher = DittoMatcher().fit(dataset.attributes, subset)
        f1 = 100 * f1_score(y_true, matcher.predict(dataset.test))
        ditto_rows.append((len(subset), f1))
    return lm_rows, ditto_rows


def test_ablation_label_efficiency(sweep, benchmark):
    lm_rows, ditto_rows = sweep
    lines = ["Lingua Manga (few-shot examples):"]
    for n, f1 in lm_rows:
        lines.append(f"  {n:4d} examples -> F1 {f1:6.2f}")
    lines.append("Ditto proxy (labelled training pairs):")
    for n, f1 in ditto_rows:
        lines.append(f"  {n:4d} labels   -> F1 {f1:6.2f}")
    emit("ablation_label_efficiency", "\n".join(lines))
    emit_json(
        "ablation_label_efficiency",
        [{"name": f"lingua_manga examples={n}", "f1": f1} for n, f1 in lm_rows]
        + [{"name": f"ditto labels={n}", "f1": f1} for n, f1 in ditto_rows],
    )

    # Two examples already put Lingua Manga at its plateau — the "no or only
    # a few labeled examples" claim.  (Note: the Ditto *proxy* is feature-
    # based and therefore more label-efficient than real BERT fine-tuning,
    # so the interesting comparison is labels-to-plateau, not tiny-budget
    # accuracy.)
    lm_two = lm_rows[1][1]
    lm_best = max(f1 for _, f1 in lm_rows)
    assert lm_two >= lm_best - 2
    assert lm_two > 85
    # Even at zero labels the system is usable.
    assert lm_rows[0][1] > 70
    # With its full label budget the supervised matcher is comparable.
    ditto_full = ditto_rows[-1][1]
    assert abs(ditto_full - lm_best) < 8
    # Lingua Manga's curve is flat: examples help, but only by a few points.
    assert max(f1 for _, f1 in lm_rows) - min(f1 for _, f1 in lm_rows) < 15

    # Benchmark the cheapest arm: zero-shot matching on a slice.
    small = generate_er_dataset("beer", n_entities=100)

    def run_zero_shot():
        return run_lingua_manga_er(LinguaManga(), small, n_examples=0).f1

    assert benchmark(run_zero_shot) > 0.4
