"""Figure 1 — system architecture.

Figure 1 of the paper illustrates the system: DSL pipelines compiled into
physical modules, with the optimizer and LLM service in the loop.  This
benchmark exercises that whole path (parse DSL -> compile -> physical plan)
for every built-in template and renders the architecture diagram.
"""

from __future__ import annotations

from repro.core.compiler.explain import explain_plan, render_architecture
from repro.core.dsl.parser import parse_pipeline
from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import available_templates

from _harness import emit, emit_json

DSL = '''
pipeline "fig1_demo":
  raw = load(source="values")
  c   = clean_text(input=raw, impl="custom")
  d   = dedupe(input=c, impl="custom")
  save(input=d, key="out")
'''


def test_fig1_architecture(benchmark):
    """Render the architecture and time DSL-to-plan compilation."""
    system = LinguaManga()
    sections = [render_architecture(), ""]
    arms = []
    for template in available_templates():
        pipeline = template.instantiate()
        plan = system.compile(pipeline)
        sections.append(explain_plan(plan))
        sections.append("")
        arms.append({"name": template.name, "operators": len(pipeline.operators)})
    emit("fig1_architecture", "\n".join(sections))
    emit_json("fig1_architecture", arms)

    def parse_and_compile():
        pipeline = parse_pipeline(DSL)
        return LinguaManga().compile(pipeline)

    plan = benchmark(parse_and_compile)
    assert len(plan.bound) == 4
