"""Serving-layer throughput and tail latency under a multi-tenant fleet.

One fleet — ``BENCH_SERVE_JOBS`` jobs (default 32) cycling the three demo
applications across 8 tenants — is driven through the job queue at pool
sizes 1/2/4/8, each arm on a fresh data directory (cold caches).  A final
arm resubmits the fleet warm at 8 workers: every job is answered from the
tenants' cache journals at zero provider cost.

Measured per arm: submit-to-drain wall clock, jobs/second, and per-job
submit-to-terminal latency (p50/p99) observed by one watcher thread per
job parked on the store's condition variable — no polling.

Gates are determinism-grade, not timing-grade (CI runners are noisy):
every job succeeds, admission refuses nothing, the provenance audit sees
zero cross-tenant hits at every pool size, and the warm arm pays zero
provider calls.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.llm.providers import SimulatedProvider
from repro.serve import JobQueue, JobSpec

from _harness import emit, emit_json

N_JOBS = int(os.environ.get("BENCH_SERVE_JOBS", "32"))
N_TENANTS = 8
POOL_SIZES = (1, 2, 4, 8)

TASK_CYCLE = (
    ("imputation", {"seed": 11, "n_train": 4, "n_test": 8}),
    ("names", {"seed": 3, "n_documents": 8}),
    ("er", {"name": "beer", "seed": 7, "n_entities": 12}),
)


def _spec(index: int) -> JobSpec:
    task, ref = TASK_CYCLE[index % len(TASK_CYCLE)]
    return JobSpec(
        tenant=f"tenant{index % N_TENANTS}",
        task=task,
        dataset=dict(ref),
        options={"workers": 2},
    )


def _drive_fleet(queue: JobQueue) -> dict:
    """Submit the fleet, wait for every terminal, return the measurements."""
    latencies: dict[str, float] = {}
    lock = threading.Lock()
    watchers = []
    started = time.perf_counter()

    def watch(job_id: str, submitted: float) -> None:
        record = queue.store.wait_for(job_id, timeout=600)
        assert record.status == "succeeded", (job_id, record.status, record.error)
        with lock:
            latencies[job_id] = time.perf_counter() - submitted

    for index in range(N_JOBS):
        job = queue.submit(_spec(index))
        watcher = threading.Thread(
            target=watch, args=(job.job_id, time.perf_counter()), daemon=True
        )
        watcher.start()
        watchers.append(watcher)
    for watcher in watchers:
        watcher.join(timeout=600)
        assert not watcher.is_alive(), "a watcher never saw its job finish"
    wall = time.perf_counter() - started

    ordered = sorted(latencies.values())
    return {
        "jobs": len(ordered),
        "wall_seconds": wall,
        "throughput_jobs_per_s": len(ordered) / wall,
        "p50_latency_s": ordered[len(ordered) // 2],
        "p99_latency_s": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
        "refusals": queue.admission.refusals,
        "audit_violations": len(queue.audit_violations),
    }


@pytest.fixture(scope="module")
def sweep(tmp_path_factory) -> list[dict]:
    arms = []
    for workers in POOL_SIZES:
        provider = SimulatedProvider()
        queue = JobQueue(
            tmp_path_factory.mktemp(f"pool{workers}"),
            provider=provider,
            max_workers=workers,
        )
        arm = _drive_fleet(queue)
        arm.update(
            name=f"cold pool={workers}",
            provider_calls=provider.calls_served,
            hub_shared=queue.registry.hub.stats()["shared_calls"],
        )
        arms.append(arm)
        if workers == POOL_SIZES[-1]:
            # warm rerun on the same directory: every tenant's journal is
            # hot, so the whole fleet costs zero provider calls.
            before = provider.calls_served
            warm = _drive_fleet(queue)
            warm.update(
                name=f"warm pool={workers}",
                provider_calls=provider.calls_served - before,
                hub_shared=queue.registry.hub.stats()["shared_calls"],
            )
            arms.append(warm)
        queue.close()
    return arms


def test_every_arm_drains_clean(sweep):
    for arm in sweep:
        assert arm["jobs"] == N_JOBS, arm["name"]
        assert arm["refusals"] == 0, arm["name"]
        assert arm["audit_violations"] == 0, arm["name"]


def test_cold_arms_pay_the_provider_once_per_identity(sweep):
    cold_calls = {arm["provider_calls"] for arm in sweep if arm["name"].startswith("cold")}
    # the fleet is identical in every arm, so with the hub de-duplicating
    # across tenants the provider bill is pool-size independent.
    assert len(cold_calls) == 1, cold_calls
    assert cold_calls.pop() > 0


def test_warm_arm_pays_nothing(sweep):
    warm = next(arm for arm in sweep if arm["name"].startswith("warm"))
    assert warm["provider_calls"] == 0


def test_emit_report(sweep):
    lines = [
        f"serve fleet: {N_JOBS} jobs over {N_TENANTS} tenants "
        "(imputation/names/er cycle, workers=2 per job):",
        f"{'arm':>14} {'wall':>8} {'jobs/s':>7} {'p50':>7} {'p99':>7} "
        f"{'provider calls':>15} {'hub shared':>11}",
    ]
    for arm in sweep:
        lines.append(
            f"{arm['name']:>14} {arm['wall_seconds']:>7.2f}s "
            f"{arm['throughput_jobs_per_s']:>7.1f} {arm['p50_latency_s']:>6.2f}s "
            f"{arm['p99_latency_s']:>6.2f}s {arm['provider_calls']:>15} "
            f"{arm['hub_shared']:>11}"
        )
    lines.append(
        "zero refusals and zero cross-tenant cache hits at every pool size; "
        "warm fleet pays zero provider calls"
    )
    emit("serve", "\n".join(lines))
    emit_json("serve", [{**arm, "cost": None} for arm in sweep])
