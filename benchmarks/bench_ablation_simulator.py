"""Ablation B — the simulator's takeover control (section 3.2).

Sweeps the student's confidence threshold on the tagging workload and
reports accuracy vs LLM-call savings, plus the self-training claim: the
student can match or exceed its (noisy) teacher because confident
predictions filter the teacher's noise.
"""

from __future__ import annotations

import pytest

from repro.core.runtime.system import LinguaManga
from repro.datasets.names import generate_name_dataset
from repro.tasks.name_extraction import run_name_extraction

from _harness import emit, emit_json

THRESHOLDS = (0.95, 0.8, 0.65, 0.5)


@pytest.fixture(scope="module")
def sweep():
    documents = generate_name_dataset(n_documents=220).documents
    baseline_system = LinguaManga()
    baseline = run_name_extraction(
        baseline_system, documents, multilingual=True, variant="no simulator"
    )
    rows = [
        {
            "threshold": None,
            "f1": 100 * baseline.f1,
            "llm_calls": baseline.llm_calls,
            "savings": 0.0,
        }
    ]
    for threshold in THRESHOLDS:
        system = LinguaManga()
        # Rebuild the template with a custom simulator config.
        from repro.core.templates.library import get_template

        pipeline = get_template("name_extraction").instantiate(
            multilingual=True, simulate_tagging=True
        )
        for op in pipeline.operators:
            if op.kind == "tag_names":
                op.params["simulate_config"]["confidence_threshold"] = threshold
        before = system.usage().served_calls
        report = system.run(
            pipeline, {"documents": [{"text": d.text} for d in documents]}
        )
        calls = system.usage().served_calls - before
        enriched = next(iter(report.outputs.values()))
        from repro.tasks.name_extraction import score_extractions

        _, _, f1 = score_extractions(documents, [d.get("names", []) for d in enriched])
        rows.append(
            {
                "threshold": threshold,
                "f1": 100 * f1,
                "llm_calls": calls,
                "savings": 1 - calls / baseline.llm_calls,
            }
        )
    return rows


def test_ablation_simulator(sweep, benchmark):
    lines = [f"{'threshold':>9s} {'F1':>7s} {'llm_calls':>10s} {'savings':>8s}"]
    for row in sweep:
        threshold = "off" if row["threshold"] is None else f"{row['threshold']:.2f}"
        lines.append(
            f"{threshold:>9s} {row['f1']:7.2f} {row['llm_calls']:10d} "
            f"{100 * row['savings']:7.1f}%"
        )
    emit("ablation_simulator", "\n".join(lines))
    emit_json(
        "ablation_simulator",
        [
            {
                "name": "off" if row["threshold"] is None else f"threshold={row['threshold']:.2f}",
                "provider_calls": row["llm_calls"],
                "f1": row["f1"],
                "savings": row["savings"],
            }
            for row in sweep
        ],
    )

    baseline = sweep[0]
    by_threshold = {row["threshold"]: row for row in sweep[1:]}
    # Lower confidence thresholds mean more takeover, hence more savings.
    savings = [by_threshold[t]["savings"] for t in THRESHOLDS]
    assert savings == sorted(savings)
    # An aggressive threshold saves a lot...
    assert by_threshold[0.5]["savings"] > 0.25
    # ...while accuracy stays within a few points of the teacher-only run
    # (and can exceed it — the self-training-with-filters effect).
    assert by_threshold[0.65]["f1"] > baseline["f1"] - 6

    # Benchmark: one simulated-tagging run on a slice.
    slice_docs = generate_name_dataset(n_documents=40).documents

    def run_slice():
        return run_name_extraction(
            LinguaManga(), slice_docs, multilingual=True, simulate_tagging=True
        ).f1

    assert benchmark(run_slice) > 0.4
