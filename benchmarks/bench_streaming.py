"""Streaming execution — memory-bounded ER over an out-of-core corpus.

Runs the entity-resolution template through the shard work-queue executor
(:meth:`LinguaManga.run_stream`) over a :class:`StreamingERCorpus` that is
never materialized: pairs are generated on demand, shards spill to disk,
and matched verdicts leave through a sink.  The bench records throughput
per worker count and demonstrates the tentpole's memory claim — peak
residency is O(chunk_size x window), *independent of corpus size* — by
growing the corpus 4x and watching the spill high-watermark stay put.

``STREAM_BENCH_PAIRS`` scales the corpus (default 2 000 for CI; the
full-size run uses 1 000 000).
"""

from __future__ import annotations

import gc
import os
import time

from repro.core.runtime.system import LinguaManga
from repro.core.templates.library import get_template
from repro.datasets import StreamingERCorpus

from _harness import emit, emit_json

PAIRS = int(os.environ.get("STREAM_BENCH_PAIRS", "2000"))
CHUNK = 200
WINDOW = 8


def rss_mb() -> float:
    """Current resident set size in MiB (0.0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return 0.0


def run_arm(n_pairs: int, workers: int) -> dict:
    gc.collect()
    corpus = StreamingERCorpus(n_pairs, seed=7)
    system = LinguaManga()
    pipeline = get_template("entity_resolution").instantiate(
        examples=corpus.examples()
    )
    matches = 0
    peak_rss = [rss_mb()]

    def sink(outputs) -> None:
        nonlocal matches
        matches += sum(1 for verdict in outputs if verdict)
        peak_rss.append(rss_mb())

    started = time.perf_counter()
    report = system.run_stream(
        pipeline,
        {"pairs": corpus.inputs()},
        workers=workers,
        chunk_size=CHUNK,
        window=WINDOW,
        source_id=corpus.fingerprint,
        sink=sink,
    )
    elapsed = time.perf_counter() - started
    summary = next(iter(report.outputs.values()))
    assert summary["records"] == n_pairs
    return {
        "pairs": n_pairs,
        "workers": workers,
        "seconds": elapsed,
        "records_per_sec": n_pairs / elapsed if elapsed > 0 else 0.0,
        "matches": matches,
        "shards": report.recovery["shards"],
        "spill_peak_bytes": report.recovery["spill_peak_bytes"],
        "peak_rss_mb": max(peak_rss),
    }


def sweep() -> dict[str, dict]:
    arms: dict[str, dict] = {}
    for workers in (1, 2, 8):
        arms[f"{PAIRS} pairs / {workers}w"] = run_arm(PAIRS, workers)
    arms[f"{PAIRS * 4} pairs / 8w"] = run_arm(PAIRS * 4, 8)
    return arms


def render(arms: dict[str, dict]) -> str:
    header = (
        f"{'arm':>22}  {'shards':>6}  {'rec/s':>9}  "
        f"{'spill peak':>10}  {'peak RSS':>9}"
    )
    lines = [header, "-" * len(header)]
    for name, row in arms.items():
        lines.append(
            f"{name:>22}  {row['shards']:>6}  {row['records_per_sec']:>9.0f}  "
            f"{row['spill_peak_bytes']:>9.0f}B  {row['peak_rss_mb']:>7.1f}MB"
        )
    lines.append(
        "\ninvariant: spill high-watermark is O(chunk x window) — flat as the"
        "\ncorpus grows 4x; verdicts leave through the sink, never accumulate."
    )
    return "\n".join(lines)


def test_streaming_bench():
    arms = sweep()
    emit("streaming", render(arms))
    emit_json(
        "streaming",
        [
            {
                "name": name,
                "wall_seconds": row["seconds"],
                "records_per_sec": row["records_per_sec"],
                "shards": row["shards"],
                "spill_peak_bytes": row["spill_peak_bytes"],
                "peak_rss_mb": row["peak_rss_mb"],
            }
            for name, row in arms.items()
        ],
    )

    base = arms[f"{PAIRS} pairs / 8w"]
    big = arms[f"{PAIRS * 4} pairs / 8w"]
    one = arms[f"{PAIRS} pairs / 1w"]
    # The memory claim: the spill high-watermark is bounded by the
    # in-flight window, not the data.  The 1-worker arm measures a
    # single shard's spill footprint; backpressure admits at most
    # WINDOW shards, so 4x the corpus must stay under that ceiling.
    # (The watermark itself is scheduling-dependent — how many shards
    # happen to be in flight at once — so gate on the ceiling, not on
    # arm-to-arm equality.)
    per_shard = one["spill_peak_bytes"]
    assert big["spill_peak_bytes"] <= WINDOW * per_shard * 1.25
    assert big["spill_peak_bytes"] <= base["spill_peak_bytes"] * WINDOW
    assert big["shards"] == base["shards"] * 4
    # RSS stays flat too (soft gate: the meter is noisy under GC).
    if base["peak_rss_mb"] and big["peak_rss_mb"]:
        assert big["peak_rss_mb"] <= base["peak_rss_mb"] * 1.5 + 64
    # Throughput does not collapse when workers scale up (the simulated
    # provider is GIL-bound, so this is a no-regression gate, not speedup).
    eight = arms[f"{PAIRS} pairs / 8w"]
    assert eight["records_per_sec"] >= 0.4 * one["records_per_sec"]


def test_streaming_matches_batch_verdicts():
    """The streamed sink sees exactly the batch scheduler's verdicts."""
    corpus = StreamingERCorpus(400, seed=7)
    pipeline = get_template("entity_resolution").instantiate(
        examples=corpus.examples()
    )
    streamed: list = []
    LinguaManga().run_stream(
        pipeline,
        {"pairs": corpus.inputs()},
        workers=4,
        chunk_size=50,
        source_id=corpus.fingerprint,
        sink=streamed.extend,
    )
    batch = LinguaManga().run(
        get_template("entity_resolution").instantiate(examples=corpus.examples()),
        {"pairs": list(corpus.inputs())},
        chunk_size=50,
    )
    assert streamed == next(iter(batch.outputs.values()))
