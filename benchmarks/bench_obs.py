"""Observability overhead — tracing and metrics must be close to free.

The acceptance bar from the observability PR: running the ER demo app with
the full ``Observability`` stack attached (structured tracer + metrics
registry + run profiler) may not slow the run down by more than a few
percent, and with observability *disabled* the system must behave exactly
as if the layer did not exist (same provider calls, same golden F1).

Wall-clock on a shared CI box is noisy, so the hard assertion is a loose
25% ceiling; the emitted report records the actual ratio, which on an idle
machine lands under 5%.
"""

from __future__ import annotations

import time

from repro.core.runtime.system import LinguaManga
from repro.datasets.entity_resolution import generate_er_dataset
from repro.obs import Observability
from repro.tasks.entity_resolution import run_lingua_manga_er

from _harness import emit, emit_json

GOLDEN_ER_F1 = 0.9090909090909091
REPEATS = 3


def _time_er(dataset, obs_factory) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        system = LinguaManga(obs=obs_factory())
        started = time.perf_counter()
        result = run_lingua_manga_er(system, dataset)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_observability_overhead_is_small():
    dataset = generate_er_dataset("beer")
    off_seconds, off_result = _time_er(dataset, lambda: None)
    on_seconds, on_result = _time_er(dataset, Observability)

    # Observability never changes behaviour, only watches it.
    assert on_result.f1 == off_result.f1 == GOLDEN_ER_F1
    assert on_result.llm_calls == off_result.llm_calls
    assert on_result.report.profile.reconciles_with(on_result.report.cost)

    overhead = on_seconds / off_seconds - 1.0
    emit(
        "obs",
        "observability overhead (ER app, beer, best of "
        f"{REPEATS} runs):\n"
        f"obs off {off_seconds * 1000:.1f}ms, on {on_seconds * 1000:.1f}ms, "
        f"overhead {overhead:+.1%}",
    )
    emit_json(
        "obs",
        [
            {
                "name": "obs off",
                "wall_seconds": off_seconds,
                "provider_calls": off_result.llm_calls,
            },
            {
                "name": "obs on",
                "wall_seconds": on_seconds,
                "provider_calls": on_result.llm_calls,
            },
        ],
        overhead=overhead,
    )
    # Loose ceiling for noisy CI boxes; typical idle-machine result: < 5%.
    assert overhead < 0.25
