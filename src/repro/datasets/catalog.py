"""The shared "world" catalogue.

The paper's experiments hinge on *world knowledge*: the LLM knows that a
"PlayStation 2 Memory Card" is made by Sony even though the record never says
so.  In this offline reproduction, the world is this module: a brand/product
catalogue, multilingual person-name gazetteers, and capitalised non-name
distractors.  Dataset generators sample from it; the simulated LLM's
knowledge base is a *partial, noisy view* of it (see
:mod:`repro.llm.knowledge`), which is what makes the LLM imperfect in the
calibrated way the experiments need.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "Brand",
    "BRANDS",
    "brand_of_product",
    "brand_and_line_of_product",
    "FIRST_NAMES",
    "LAST_NAMES",
    "NON_NAME_PROPER_NOUNS",
    "BEER_STYLES",
    "BREWERY_WORDS",
    "CITY_NAMES",
    "CUISINES",
    "GENRES",
    "ARTIST_WORDS",
]


@dataclass(frozen=True)
class Brand:
    """A manufacturer with its product-line vocabulary."""

    name: str
    lines: tuple[str, ...]
    category: str


# ~90 brands across consumer-electronics categories, in the spirit of the Buy
# dataset (products with names/descriptions, manufacturer missing).
BRANDS: tuple[Brand, ...] = (
    Brand("Sony", ("PlayStation", "Walkman", "Bravia", "Cyber-shot", "Handycam", "VAIO", "Discman"), "electronics"),
    Brand("Microsoft", ("Xbox", "Zune", "Surface", "SideWinder", "LifeCam", "IntelliMouse"), "electronics"),
    Brand("Nintendo", ("GameCube", "Wii", "DS Lite", "Game Boy", "GBA"), "electronics"),
    Brand("Apple", ("iPod", "iPhone", "MacBook", "iMac", "AirPort", "Mac mini"), "electronics"),
    Brand("Samsung", ("Galaxy", "SyncMaster", "YP-", "BlackJack", "Omnia"), "electronics"),
    Brand("Panasonic", ("Lumix", "Viera", "Toughbook", "RAMSA", "Technics"), "electronics"),
    Brand("Canon", ("PowerShot", "EOS", "PIXMA", "imageCLASS", "Selphy"), "cameras"),
    Brand("Nikon", ("Coolpix", "D40", "D80", "Nikkor", "SB-600"), "cameras"),
    Brand("Olympus", ("Stylus", "Evolt", "FE-", "SP-", "Camedia"), "cameras"),
    Brand("Kodak", ("EasyShare", "PlaySport", "Zi8"), "cameras"),
    Brand("Fujifilm", ("FinePix", "Instax"), "cameras"),
    Brand("HP", ("Pavilion", "DeskJet", "LaserJet", "Photosmart", "iPAQ", "OfficeJet"), "computers"),
    Brand("Dell", ("Inspiron", "Latitude", "XPS", "Dimension", "OptiPlex"), "computers"),
    Brand("Lenovo", ("ThinkPad", "IdeaPad", "ThinkCentre"), "computers"),
    Brand("Toshiba", ("Satellite", "Portege", "Qosmio", "Gigabeat"), "computers"),
    Brand("Acer", ("Aspire", "TravelMate", "Ferrari"), "computers"),
    Brand("Asus", ("Eee PC", "ZenBook", "Transformer"), "computers"),
    Brand("Gateway", ("Profile", "Solo"), "computers"),
    Brand("Compaq", ("Presario", "Armada"), "computers"),
    Brand("IBM", ("ThinkVision", "NetVista"), "computers"),
    Brand("Logitech", ("QuickCam", "Harmony", "MX Revolution", "diNovo", "Wingman"), "accessories"),
    Brand("Belkin", ("TuneCast", "SurgeMaster", "Wireless G"), "accessories"),
    Brand("Kensington", ("SlimBlade", "Orbit", "MicroSaver"), "accessories"),
    Brand("Targus", ("CityGear", "DefCon", "Notepac"), "accessories"),
    Brand("SanDisk", ("Sansa", "Cruzer", "Ultra II", "Memory Stick Pro"), "storage"),
    Brand("Kingston", ("DataTraveler", "ValueRAM", "HyperX"), "storage"),
    Brand("Seagate", ("Barracuda", "FreeAgent", "Momentus"), "storage"),
    Brand("Western Digital", ("My Book", "Caviar", "Passport"), "storage"),
    Brand("Maxtor", ("OneTouch", "DiamondMax"), "storage"),
    Brand("Iomega", ("Zip Drive", "ScreenPlay", "StorCenter"), "storage"),
    Brand("LaCie", ("Porsche Drive", "Rugged", "d2 Quadra"), "storage"),
    Brand("Lexar", ("JumpDrive", "Platinum II"), "storage"),
    Brand("Garmin", ("nuvi", "StreetPilot", "Forerunner", "eTrex", "Zumo"), "gps"),
    Brand("TomTom", ("GO 910", "ONE XL", "RIDER"), "gps"),
    Brand("Magellan", ("Maestro", "RoadMate", "eXplorist"), "gps"),
    Brand("Motorola", ("RAZR", "MOTOKRZR", "Bluetooth H500", "TalkAbout"), "phones"),
    Brand("Nokia", ("N95", "E62", "6300", "5300 XpressMusic"), "phones"),
    Brand("BlackBerry", ("Pearl", "Curve", "8700c"), "phones"),
    Brand("Palm", ("Treo", "Tungsten", "Zire"), "phones"),
    Brand("Plantronics", ("Voyager", "Discovery 655", "Audio 470"), "audio"),
    Brand("Bose", ("QuietComfort", "SoundDock", "Wave Radio", "Companion 3"), "audio"),
    Brand("Sennheiser", ("HD 555", "PX 100", "RS 130"), "audio"),
    Brand("JBL", ("On Stage", "Creature II", "Radial"), "audio"),
    Brand("Klipsch", ("ProMedia", "iGroove"), "audio"),
    Brand("Altec Lansing", ("inMotion", "VS2121"), "audio"),
    Brand("Harman Kardon", ("SoundSticks", "Drive+Play"), "audio"),
    Brand("Pioneer", ("AVIC", "DEH-", "Elite VSX"), "audio"),
    Brand("Kenwood", ("KDC-", "eXcelon"), "audio"),
    Brand("Alpine", ("CDA-", "IVA-", "PDX-"), "audio"),
    Brand("JVC", ("Everio", "KD-", "HA-"), "audio"),
    Brand("Denon", ("AVR-", "DCM-"), "audio"),
    Brand("Onkyo", ("TX-SR", "HT-S"), "audio"),
    Brand("Yamaha", ("RX-V", "YST-", "HTR-"), "audio"),
    Brand("Creative", ("Zen", "Sound Blaster", "MuVo", "Inspire T"), "audio"),
    Brand("iRiver", ("Clix", "H10", "T60"), "audio"),
    Brand("Philips", ("GoGear", "Norelco", "Sonicare", "Streamium"), "electronics"),
    Brand("Sharp", ("Aquos", "Notevision"), "electronics"),
    Brand("LG", ("Chocolate", "enV", "Flatron"), "electronics"),
    Brand("Sanyo", ("Xacti", "Katana"), "electronics"),
    Brand("Casio", ("Exilim", "Pathfinder", "G-Shock"), "electronics"),
    Brand("Epson", ("Stylus", "PowerLite", "Perfection"), "printers"),
    Brand("Brother", ("HL-", "MFC-", "P-touch"), "printers"),
    Brand("Xerox", ("Phaser", "WorkCentre", "DocuMate"), "printers"),
    Brand("Lexmark", ("X4550", "Z845", "E120n"), "printers"),
    Brand("D-Link", ("AirPlus", "DIR-655", "DGS-"), "networking"),
    Brand("Linksys", ("WRT54G", "EtherFast", "Wireless-N"), "networking"),
    Brand("Netgear", ("RangeMax", "ProSafe", "WGR614"), "networking"),
    Brand("TRENDnet", ("TEW-", "TK-"), "networking"),
    Brand("Cisco", ("Catalyst", "Aironet"), "networking"),
    Brand("APC", ("Back-UPS", "Smart-UPS", "SurgeArrest"), "power"),
    Brand("Tripp Lite", ("SmartPro", "Isobar"), "power"),
    Brand("CyberPower", ("Intelligent LCD", "AVR Series"), "power"),
    Brand("Energizer", ("e2 Lithium", "Rechargeable NiMH"), "power"),
    Brand("Duracell", ("CopperTop", "PowerPix"), "power"),
    Brand("ViewSonic", ("ViewPanel", "VX2235wm", "VA1912w"), "monitors"),
    Brand("NEC", ("MultiSync", "AccuSync"), "monitors"),
    Brand("BenQ", ("FP202W", "Joybook"), "monitors"),
    Brand("Hitachi", ("Deskstar", "UltraVision", "Travelstar"), "electronics"),
    Brand("TiVo", ("Series2", "Series3 HD"), "electronics"),
    Brand("Netflix", ("Player by Roku",), "electronics"),
    Brand("GE", ("Digital Messaging", "Cordless 5.8GHz"), "electronics"),
    Brand("Uniden", ("TRU8885", "DECT"), "phones"),
    Brand("VTech", ("DS6111", "CS6219"), "phones"),
    Brand("RCA", ("Lyra", "Small Wonder"), "electronics"),
    Brand("Griffin", ("iTrip", "PowerMate", "AirClick"), "accessories"),
    Brand("DLO", ("HomeDock", "TransPod"), "accessories"),
    Brand("Monster", ("iCarPlay", "Cable THX"), "accessories"),
    Brand("Case Logic", ("Sporty Backpack", "Slim Laptop Case"), "accessories"),
    Brand("Wacom", ("Intuos", "Graphire", "Bamboo"), "accessories"),
    Brand("Fellowes", ("Powershred", "Microban"), "office"),
    Brand("3M", ("Privacy Filter", "Scotch"), "office"),
    Brand("Honeywell", ("QuietCare", "TurboForce"), "appliances"),
    Brand("Black & Decker", ("Dustbuster", "VersaPak"), "appliances"),
)

_LINE_TO_BRAND: dict[str, str] = {}
for _brand in BRANDS:
    for _line in _brand.lines:
        _LINE_TO_BRAND[_line.lower()] = _brand.name


def brand_and_line_of_product(product_name: str) -> tuple[str | None, str | None]:
    """Ground-truth ``(manufacturer, matched_line)`` of a product name.

    This implements the "world" oracle: the generator uses it to label data
    and the evaluation uses it to score predictions.  Longer line names are
    matched first so "Memory Stick Pro" beats "Memory".  The matched line is
    returned so callers (the simulated LLM's knowledge gaps) can key their
    behaviour on the *product line* rather than the exact phrasing.
    """
    lowered = product_name.lower()
    best: tuple[int, str, str] | None = None
    for line, brand in _LINE_TO_BRAND.items():
        if line in lowered and (best is None or len(line) > best[0]):
            best = (len(line), brand, line)
    if best is not None:
        return best[1], best[2]
    # Fall back to an explicit brand-name mention (whole words only, so
    # "GE" never matches inside "Gadget").
    for brand in BRANDS:
        if re.search(r"\b" + re.escape(brand.name.lower()) + r"\b", lowered):
            return brand.name, None
    return None, None


def brand_of_product(product_name: str) -> str | None:
    """Ground-truth manufacturer of a product name, if any line matches."""
    return brand_and_line_of_product(product_name)[0]


# -- person names ---------------------------------------------------------------

FIRST_NAMES: dict[str, tuple[str, ...]] = {
    "en": (
        "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
        "Linda", "William", "Elizabeth", "David", "Barbara", "Richard",
        "Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
        "Emily", "Daniel", "Laura", "Matthew", "Grace", "Andrew", "Hannah",
    ),
    "es": (
        "José", "María", "Antonio", "Carmen", "Juan", "Ana", "Manuel",
        "Isabel", "Francisco", "Dolores", "Luis", "Pilar", "Javier", "Teresa",
        "Miguel", "Rosa", "Carlos", "Lucía", "Alejandro", "Elena", "Diego",
        "Sofía", "Pablo", "Marta",
    ),
    "de": (
        "Hans", "Anna", "Peter", "Ursula", "Wolfgang", "Monika", "Klaus",
        "Petra", "Jürgen", "Sabine", "Dieter", "Renate", "Manfred", "Helga",
        "Uwe", "Ingrid", "Stefan", "Claudia", "Matthias", "Katrin", "Lukas",
        "Greta",
    ),
    "fr": (
        "Jean", "Marie", "Pierre", "Monique", "Michel", "Catherine", "André",
        "Françoise", "Philippe", "Nathalie", "Alain", "Isabelle", "Jacques",
        "Sylvie", "Bernard", "Martine", "Éric", "Sophie", "Claude", "Camille",
        "Luc", "Amélie",
    ),
    "zh": (
        "Wei", "Fang", "Jun", "Na", "Ming", "Li", "Qiang", "Xiuying", "Lei",
        "Yan", "Tao", "Juan", "Chao", "Xia", "Peng", "Hui", "Jie", "Mei",
        "Hao", "Lin",
    ),
}

LAST_NAMES: dict[str, tuple[str, ...]] = {
    "en": (
        "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
        "Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Jackson",
        "Martin", "Lee", "Thompson", "White", "Harris", "Clark", "Lewis",
    ),
    "es": (
        "García", "Rodríguez", "Martínez", "Hernández", "López", "González",
        "Pérez", "Sánchez", "Ramírez", "Torres", "Flores", "Rivera", "Gómez",
        "Díaz", "Morales", "Ortiz", "Castillo", "Ruiz", "Vargas", "Mendoza",
    ),
    "de": (
        "Müller", "Schmidt", "Schneider", "Fischer", "Weber", "Meyer",
        "Wagner", "Becker", "Schulz", "Hoffmann", "Koch", "Bauer", "Richter",
        "Klein", "Wolf", "Schröder", "Neumann", "Braun", "Zimmermann",
    ),
    "fr": (
        "Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit",
        "Durand", "Leroy", "Moreau", "Simon", "Laurent", "Lefebvre", "Michel",
        "Garnier", "Rousseau", "Fontaine", "Chevalier",
    ),
    "zh": (
        "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
        "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Lin", "Gao",
        "Luo",
    ),
}

# Capitalised proper nouns that are NOT person names: the distractor set the
# tagging operator must reject.
NON_NAME_PROPER_NOUNS: tuple[str, ...] = (
    "Boston", "Madrid", "Berlin", "Paris", "Beijing", "London", "Chicago",
    "Barcelona", "Munich", "Lyon", "Shanghai", "Seattle", "Valencia",
    "Hamburg", "Marseille", "Shenzhen", "Austin", "Sevilla", "Frankfurt",
    "Toulouse", "Hangzhou", "Denver", "Acme Corporation", "Globex",
    "Initech", "Stark Industries", "Wayne Enterprises", "Umbrella Corp",
    "Cyberdyne Systems", "Tyrell Corporation", "Hooli", "Vandelay Industries",
    "Monday", "Tuesday", "January", "September", "Christmas", "Easter",
    "Europe", "Asia", "America", "Internet", "University",
)

# -- entity-resolution vocabulary -------------------------------------------------

BEER_STYLES: tuple[str, ...] = (
    "IPA", "Double IPA", "Pale Ale", "Amber Ale", "Brown Ale", "Porter",
    "Imperial Stout", "Oatmeal Stout", "Milk Stout", "Pilsner", "Lager",
    "Hefeweizen", "Witbier", "Saison", "Tripel", "Dubbel", "Barleywine",
    "Kölsch", "ESB", "Red Ale", "Golden Ale", "Scotch Ale", "Bock",
)

BREWERY_WORDS: tuple[str, ...] = (
    "Stone", "Anchor", "Bear Republic", "Dogfish Head", "Lagunitas",
    "Sierra Nevada", "Founders", "Great Divide", "Rogue", "Oskar Blues",
    "Deschutes", "Harpoon", "Smuttynose", "Victory", "Troegs", "Bells",
    "Goose Island", "New Belgium", "Left Hand", "Avery", "Flying Dog",
    "Green Flash", "Ballast Point", "Cigar City", "Odell", "Boulevard",
    "Summit", "Surly", "Alpine", "Russian River", "Firestone Walker",
    "Three Floyds", "Half Acre", "Revolution", "Metropolitan",
)

CITY_NAMES: tuple[str, ...] = (
    "New York", "Los Angeles", "San Francisco", "Chicago", "Boston",
    "Seattle", "Portland", "Austin", "Denver", "Miami", "Atlanta",
    "Philadelphia", "Phoenix", "San Diego", "Dallas", "Houston",
    "Minneapolis", "Detroit", "Baltimore", "Washington",
)

CUISINES: tuple[str, ...] = (
    "Italian", "French", "American (New)", "American (Traditional)",
    "Japanese", "Chinese", "Mexican", "Thai", "Indian", "Mediterranean",
    "Steakhouses", "Seafood", "Pizza", "BBQ", "Cafe", "Delis",
    "Vietnamese", "Korean", "Greek", "Spanish",
)

GENRES: tuple[str, ...] = (
    "Pop", "Rock", "Alternative", "Hip-Hop/Rap", "R&B/Soul", "Country",
    "Electronic", "Dance", "Jazz", "Classical", "Folk", "Indie Rock",
    "Metal", "Reggae", "Blues", "Soundtrack", "Latin", "World", "Punk",
    "Singer/Songwriter",
)

ARTIST_WORDS: tuple[str, ...] = (
    "Midnight", "Crimson", "Velvet", "Echo", "Silver", "Golden", "Electric",
    "Neon", "Lunar", "Solar", "Wild", "Broken", "Silent", "Burning",
    "Frozen", "Painted", "Hollow", "Rising", "Falling", "Distant",
    "Arrows", "Foxes", "Wolves", "Rivers", "Harbors", "Engines", "Mirrors",
    "Gardens", "Shadows", "Satellites", "Parades", "Lanterns", "Anthems",
)
