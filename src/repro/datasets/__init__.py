"""Seeded synthetic datasets standing in for the paper's benchmark data."""

from repro.datasets.curation import (
    CurationCorpus,
    CurationDoc,
    CurationEvalSet,
)
from repro.datasets.entity_resolution import (
    ER_DATASET_NAMES,
    ERDataset,
    RecordPair,
    generate_er_dataset,
)
from repro.datasets.imputation import (
    ImputationDataset,
    ImputationRecord,
    generate_buy_dataset,
)
from repro.datasets.names import (
    NameDocument,
    NameExtractionDataset,
    generate_name_dataset,
)
from repro.datasets.streaming import StreamingERCorpus

__all__ = [
    "CurationCorpus",
    "CurationDoc",
    "CurationEvalSet",
    "ER_DATASET_NAMES",
    "ERDataset",
    "RecordPair",
    "generate_er_dataset",
    "ImputationDataset",
    "ImputationRecord",
    "generate_buy_dataset",
    "NameDocument",
    "NameExtractionDataset",
    "generate_name_dataset",
    "StreamingERCorpus",
]
