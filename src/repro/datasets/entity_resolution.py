"""Synthetic entity-resolution benchmark datasets.

Seeded generators standing in for the three Magellan benchmark datasets of
paper Table 1.  Each generator builds canonical entities, derives two dirty
"source" views with a domain-specific corruption profile, and emits labelled
record pairs (matches plus blocking-style hard negatives):

- ``beer``        — BeerAdvo-RateBeer:  style-name rewrites, brewery suffix
                    churn, ABV rounding, typos (medium difficulty).
- ``restaurants`` — Fodors-Zagats: address abbreviations, phone formats,
                    cuisine synonyms (easy; supervised methods saturate).
- ``music``       — iTunes-Amazon: featuring credits, edition suffixes,
                    heavy typos, missing fields (hard; dirtiest text).

The corruption menus lean on abbreviation/unit conventions that
:func:`repro.text.normalize.normalize_text` can invert — that is the
"world knowledge" edge the LLM-based methods have over similarity-feature
baselines, mirroring the paper's argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util import seeded_rng

__all__ = ["RecordPair", "ERDataset", "generate_er_dataset", "ER_DATASET_NAMES"]

ER_DATASET_NAMES = ("beer", "restaurants", "music")


@dataclass(frozen=True)
class RecordPair:
    """A labelled candidate pair: 1 = same entity, 0 = different."""

    left: dict
    right: dict
    label: int
    pair_id: str


@dataclass
class ERDataset:
    """A benchmark dataset with Magellan-style train/valid/test splits."""

    name: str
    attributes: list[str]
    train: list[RecordPair] = field(default_factory=list)
    valid: list[RecordPair] = field(default_factory=list)
    test: list[RecordPair] = field(default_factory=list)

    @property
    def all_pairs(self) -> list[RecordPair]:
        """Every pair across splits."""
        return self.train + self.valid + self.test

    def summary(self) -> str:
        """One-line dataset description."""
        def pos(pairs: list[RecordPair]) -> int:
            return sum(p.label for p in pairs)

        return (
            f"{self.name}: train={len(self.train)} (+{pos(self.train)}) "
            f"valid={len(self.valid)} (+{pos(self.valid)}) "
            f"test={len(self.test)} (+{pos(self.test)})"
        )


# -- corruption helpers ---------------------------------------------------------


def _typo(text: str, rng: random.Random) -> str:
    if len(text) < 4:
        return text
    i = rng.randrange(1, len(text) - 2)
    kind = rng.random()
    if kind < 0.4:  # transpose
        return text[:i] + text[i + 1] + text[i] + text[i + 2 :]
    if kind < 0.7:  # drop
        return text[:i] + text[i + 1 :]
    return text[:i] + text[i] + text[i:]  # duplicate


def _maybe(rng: random.Random, p: float) -> bool:
    return rng.random() < p


_STYLE_REWRITES = {
    "IPA": "India Pale Ale",
    "Double IPA": "Imperial IPA",
    "ESB": "Extra Special Bitter",
    "Hefeweizen": "Wheat Beer",
    "Witbier": "White Ale",
}

_BREWERY_SUFFIXES = ["Brewing Co.", "Brewery", "Brewing Company", "Beer Co.", "Craft Brewery"]

_CUISINE_SYNONYMS = {
    "American (New)": "New American",
    "American (Traditional)": "Traditional American",
    "Steakhouses": "Steak House",
    "BBQ": "Barbecue",
    "Delis": "Delicatessen",
}

_EDITION_SUFFIXES = [" (Album Version)", " [Explicit]", " - Single", " (Deluxe Edition)", " (Remastered)"]


# -- canonical entity builders -----------------------------------------------------


def _beer_entities(rng: random.Random, n: int) -> list[dict]:
    from repro.datasets.catalog import BEER_STYLES, BREWERY_WORDS

    entities = []
    seen: set[tuple[str, str]] = set()
    adjectives = ["Old", "Double", "Dark", "Wild", "Lucky", "Iron", "Golden",
                  "Rusty", "Smoky", "Velvet", "Arrogant", "Hazy", "Raging"]
    nouns = ["Bastard", "Monk", "Ranger", "Trail", "Otter", "Moon", "Anvil",
             "Harvest", "Nugget", "Tide", "Summit", "Raven", "Badger"]
    while len(entities) < n:
        brewery = rng.choice(BREWERY_WORDS)
        style = rng.choice(BEER_STYLES)
        beer_name = f"{rng.choice(adjectives)} {rng.choice(nouns)} {style}"
        key = (brewery, beer_name)
        if key in seen:
            continue
        seen.add(key)
        entities.append(
            {
                "beer_name": beer_name,
                "brewery": f"{brewery} {rng.choice(_BREWERY_SUFFIXES)}",
                "style": style,
                "abv": round(rng.uniform(4.0, 11.5), 1),
            }
        )
    return entities


def _beer_corrupt(record: dict, rng: random.Random, intensity: float) -> dict:
    out = dict(record)
    if _maybe(rng, 0.5 * intensity):
        base = out["brewery"].rsplit(" ", 1)[0]
        for suffix in _BREWERY_SUFFIXES:
            if out["brewery"].endswith(suffix):
                base = out["brewery"][: -len(suffix)].strip()
                break
        out["brewery"] = f"{base} {rng.choice(_BREWERY_SUFFIXES)}"
    if _maybe(rng, 0.35 * intensity):
        out["beer_name"] = _typo(out["beer_name"], rng)
    if _maybe(rng, 0.3 * intensity):
        out["abv"] = round(record["abv"] + rng.choice([-0.1, 0.1]), 1)
    if _maybe(rng, 0.25 * intensity):
        out["style"] = None
    if _maybe(rng, 0.2 * intensity):
        out["beer_name"] = out["beer_name"].lower()
    return out


def _beer_test_corrupt(record: dict, rng: random.Random, intensity: float) -> dict:
    """Corruption kinds that only appear in the (later-crawled) test data.

    Style-name rewrites ("IPA" -> "India Pale Ale") and shouting case are
    format drift a trained matcher never saw — but normalisation-based
    methods invert them.
    """
    out = dict(record)
    if _maybe(rng, 0.75):
        for short, long_form in _STYLE_REWRITES.items():
            if short in out["beer_name"]:
                out["beer_name"] = out["beer_name"].replace(short, long_form)
                break
    if _maybe(rng, 0.25 * intensity):
        out["beer_name"] = out["beer_name"].upper()
    return out


def _restaurant_entities(rng: random.Random, n: int) -> list[dict]:
    from repro.datasets.catalog import CITY_NAMES, CUISINES

    words = ["Blue", "Golden", "Little", "Grand", "Royal", "Rustic", "Corner",
             "Garden", "Harbor", "Union", "Market", "Village", "Central", "Stone"]
    kinds = ["Bistro", "Grill", "Kitchen", "Tavern", "Cafe", "Table", "House",
             "Diner", "Trattoria", "Brasserie", "Cantina", "Osteria"]
    streets = ["Main", "Oak", "Maple", "Market", "Broadway", "Pine", "Cedar",
               "Elm", "Washington", "Lake", "Hill", "Park"]
    entities = []
    # Same-name restaurants in different cities are legitimate distinct
    # entities (and make for realistic hard negatives), so uniqueness is on
    # (name, city) rather than name alone.
    seen: set[tuple[str, str]] = set()
    while len(entities) < n:
        name = f"{rng.choice(words)} {rng.choice(kinds)}"
        city = rng.choice(CITY_NAMES)
        if (name, city) in seen:
            continue
        seen.add((name, city))
        entities.append(
            {
                "name": name,
                "address": f"{rng.randrange(10, 999)} {rng.choice(streets)} St.",
                "city": city,
                "phone": f"{rng.randrange(200, 999)}-{rng.randrange(200, 999)}-{rng.randrange(1000, 9999)}",
                "cuisine": rng.choice(CUISINES),
            }
        )
    return entities


def _restaurant_corrupt(record: dict, rng: random.Random, intensity: float) -> dict:
    out = dict(record)
    if _maybe(rng, 0.6 * intensity):
        out["address"] = out["address"].replace("St.", rng.choice(["Street", "St"]))
    if _maybe(rng, 0.5 * intensity):
        digits = out["phone"].replace("-", "")
        out["phone"] = f"{digits[:3]}/{digits[3:6]}-{digits[6:]}"
    if _maybe(rng, 0.4 * intensity):
        synonym = _CUISINE_SYNONYMS.get(out["cuisine"])
        if synonym:
            out["cuisine"] = synonym
    if _maybe(rng, 0.15 * intensity):
        out["name"] = _typo(out["name"], rng)
    if _maybe(rng, 0.1 * intensity):
        out["cuisine"] = None
    return out


def _music_entities(rng: random.Random, n: int) -> list[dict]:
    from repro.datasets.catalog import ARTIST_WORDS, GENRES

    song_a = ["Midnight", "Summer", "Broken", "Golden", "Silent", "Electric",
              "Lonely", "Crimson", "Fading", "Restless", "Neon", "Hollow"]
    song_b = ["Dreams", "Rain", "Hearts", "Roads", "Lights", "Echoes",
              "Fire", "Waves", "Shadows", "Letters", "Wings", "Rivers"]
    entities = []
    seen: set[tuple[str, str]] = set()
    while len(entities) < n:
        artist = f"The {rng.choice(ARTIST_WORDS)} {rng.choice(ARTIST_WORDS)}"
        song = f"{rng.choice(song_a)} {rng.choice(song_b)}"
        key = (artist, song)
        if key in seen:
            continue
        seen.add(key)
        minutes = rng.randrange(2, 6)
        seconds = rng.randrange(0, 60)
        entities.append(
            {
                "song": song,
                "artist": artist,
                "album": f"{rng.choice(song_a)} {rng.choice(song_b)}",
                "genre": rng.choice(GENRES),
                "time": f"{minutes}:{seconds:02d}",
                "released": str(rng.randrange(1995, 2023)),
            }
        )
    return entities


def _music_corrupt(record: dict, rng: random.Random, intensity: float) -> dict:
    from repro.datasets.catalog import FIRST_NAMES, LAST_NAMES

    out = dict(record)
    if _maybe(rng, 0.45 * intensity):
        out["song"] = out["song"] + rng.choice(_EDITION_SUFFIXES)
    if _maybe(rng, 0.4 * intensity):
        guest = f"{rng.choice(FIRST_NAMES['en'])} {rng.choice(LAST_NAMES['en'])}"
        out["artist"] = out["artist"] + rng.choice([" feat. ", " ft. ", " featuring "]) + guest
    if _maybe(rng, 0.45 * intensity):
        out["song"] = _typo(out["song"], rng)
    if _maybe(rng, 0.18 * intensity):
        out["song"] = _typo(out["song"], rng)  # second typo pass: very dirty feeds
    if _maybe(rng, 0.35 * intensity):
        out["artist"] = _typo(out["artist"], rng)
    if _maybe(rng, 0.3 * intensity):
        out["album"] = None
    if _maybe(rng, 0.3 * intensity):
        out["released"] = None
    if _maybe(rng, 0.25 * intensity):
        out["genre"] = rng.choice(["Pop", "Rock"])  # sloppy genre tagging
    if _maybe(rng, 0.3 * intensity):
        out["song"] = out["song"].lower()
    return out


def _music_test_corrupt(record: dict, rng: random.Random, intensity: float) -> dict:
    """Test-only music drift: track-number prefixes and duration reformats."""
    out = dict(record)
    if _maybe(rng, 0.3):
        out["song"] = f"{rng.randrange(1, 15):02d} - {out['song']}"
    if _maybe(rng, 0.35) and isinstance(out.get("time"), str) and ":" in out["time"]:
        minutes, seconds = out["time"].split(":")
        out["time"] = f"{int(minutes) * 60 + int(seconds)} sec"
    return out


_DOMAINS = {
    "beer": {
        "build": _beer_entities,
        "corrupt": _beer_corrupt,
        "key": "beer_name",
        "negative_keys": ("beer_name",),
        "copy_attr": "brewery",
        "copy_fraction": 0.55,
        "intensity": 1.0,
        "train_discount": 0.5,
        "test_corrupt": _beer_test_corrupt,
        "n_entities": 900,
        "pos_fraction": 0.22,
    },
    "restaurants": {
        "build": _restaurant_entities,
        "corrupt": _restaurant_corrupt,
        "key": "name",
        "negative_keys": ("name",),
        "intensity": 0.7,
        "train_discount": 0.95,
        "n_entities": 1100,
        "pos_fraction": 0.18,
    },
    "music": {
        "build": _music_entities,
        "corrupt": _music_corrupt,
        "key": "song",
        "negative_keys": ("song",),
        "copy_attr": "song",
        "copy_fraction": 0.35,
        "intensity": 1.45,
        "train_discount": 0.7,
        "test_corrupt": _music_test_corrupt,
        "n_entities": 1000,
        "pos_fraction": 0.25,
    },
}


def _similar_negatives(
    entities: list[dict], key: str, rng: random.Random, count: int
) -> list[tuple[int, int]]:
    """Pick hard-negative index pairs: different entities with token overlap.

    This mimics a blocking stage: candidate pairs that survive blocking share
    tokens, so negatives are not trivially dissimilar.
    """
    from collections import defaultdict

    by_token: dict[str, list[int]] = defaultdict(list)
    for index, entity in enumerate(entities):
        for token in str(entity[key]).lower().split():
            by_token[token].append(index)
    candidates: set[tuple[int, int]] = set()
    for indices in by_token.values():
        if len(indices) < 2:
            continue
        for _ in range(min(len(indices), 6)):
            a, b = rng.sample(indices, 2)
            if a > b:
                a, b = b, a
            if a != b:
                candidates.add((a, b))
    pool = sorted(candidates)
    rng.shuffle(pool)
    if len(pool) < count:
        # Top up with random pairs.
        while len(pool) < count:
            a, b = rng.sample(range(len(entities)), 2)
            if a > b:
                a, b = b, a
            if (a, b) not in pool:
                pool.append((a, b))
    return pool[:count]


def generate_er_dataset(
    name: str,
    seed: int = 7,
    n_entities: int | None = None,
    intensity: float | None = None,
) -> ERDataset:
    """Generate one of the three benchmark datasets by ``name``.

    ``n_entities`` and ``intensity`` override the domain defaults (useful
    for ablations on dataset dirtiness).
    """
    if name not in _DOMAINS:
        raise ValueError(f"unknown ER dataset {name!r}; have {ER_DATASET_NAMES}")
    spec = _DOMAINS[name]
    rng = seeded_rng(f"er-{name}-{seed}")
    n = n_entities if n_entities is not None else spec["n_entities"]
    level = intensity if intensity is not None else spec["intensity"]
    entities = spec["build"](rng, n)
    corrupt = spec["corrupt"]
    key = spec["key"]
    # The benchmark's test portions are dirtier than the labelled training
    # data (formatting drift between the two sources over time).  This is
    # what keeps trained matchers from saturating — training-free LLM
    # methods are unaffected because they never see the training split.
    train_discount = spec.get("train_discount", 1.0)

    # Skeletons first (entity indices + label), then split, then corrupt at
    # the split's intensity.
    n_pos = int(n * spec["pos_fraction"])
    pos_indices = rng.sample(range(n), n_pos)
    skeletons: list[tuple[int, int, dict | None]] = [
        (index, index, None) for index in pos_indices
    ]

    n_neg = int(n_pos * 3.4)
    negative_keys = spec.get("negative_keys", (key,))
    copy_attr = spec.get("copy_attr")
    copy_fraction = spec.get("copy_fraction", 0.0)
    per_key = [n_neg // len(negative_keys)] * len(negative_keys)
    per_key[0] += n_neg - sum(per_key)
    for negative_key, quota in zip(negative_keys, per_key):
        for a, b in _similar_negatives(entities, negative_key, rng, quota):
            right_entity = dict(entities[b])
            if copy_attr and rng.random() < copy_fraction:
                # Extra-hard negative: the right record shares ``copy_attr``
                # with the left one (same brewery's other beer; a cover of
                # the same song by another artist).
                right_entity[copy_attr] = entities[a][copy_attr]
            skeletons.append((a, b, right_entity))

    rng.shuffle(skeletons)
    n_total = len(skeletons)
    train_end = int(n_total * 0.6)
    valid_end = int(n_total * 0.8)
    splits: dict[str, list[RecordPair]] = {"train": [], "valid": [], "test": []}
    for rank, (a, b, right_override) in enumerate(skeletons):
        if rank < train_end:
            split = "train"
        elif rank < valid_end:
            split = "valid"
        else:
            split = "test"
        split_level = level * (train_discount if split != "test" else 1.0)
        label = 1 if (a == b and right_override is None) else 0
        right_entity = right_override if right_override is not None else entities[b]
        if label == 1:
            left = corrupt(entities[a], rng, split_level * 0.6)
            right = corrupt(right_entity, rng, split_level)
        else:
            left = corrupt(entities[a], rng, split_level * 0.5)
            right = corrupt(right_entity, rng, split_level * 0.8)
        test_corrupt = spec.get("test_corrupt")
        if split == "test" and test_corrupt is not None:
            right = test_corrupt(right, rng, level)
        splits[split].append(
            RecordPair(left, right, label, f"{name}-{split}-{rank}")
        )

    attributes = list(entities[0].keys())
    return ERDataset(
        name=name,
        attributes=attributes,
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
    )
