"""Synthetic multilingual name-extraction corpus (paper section 4.2).

Sentences in five languages (EN/ES/DE/FR/romanised ZH) containing zero or
more person names plus capitalised distractors (cities, companies).  Ground
truth is the exact set of person-name strings per sentence, which is what the
pipeline's F1 is scored against.  The startup dataset the paper used was
"unique in that it has to handle multilingual data", and this generator
recreates exactly that property.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util import seeded_rng
from repro.datasets.catalog import FIRST_NAMES, LAST_NAMES, NON_NAME_PROPER_NOUNS

__all__ = ["NameDocument", "NameExtractionDataset", "generate_name_dataset"]

# Sentence skeletons with {name}, {name2} and {place} slots.
_TEMPLATES: dict[str, list[str]] = {
    "en": [
        "Yesterday {name} met {name2} in {place} to discuss the merger.",
        "The report was written by {name}, according to {place} officials.",
        "{name} announced a new partnership with {place} on Monday.",
        "After the keynote, {name} thanked the team at {place}.",
        "Analysts say {name} will join the board of {place} next year.",
        "The quarterly review in {place} was led by {name} and {name2}.",
    ],
    "es": [
        "Ayer {name} se reunió con {name2} en {place} para discutir el acuerdo.",
        "El informe fue presentado por {name} según fuentes de {place}.",
        "{name} anunció una nueva alianza con {place} el lunes.",
        "Durante la conferencia, {name} agradeció al equipo de {place}.",
        "La reunión en {place} fue dirigida por {name} y {name2}.",
    ],
    "de": [
        "Gestern traf {name} in {place} {name2}, um die Fusion zu besprechen.",
        "Der Bericht wurde laut {place} von {name} verfasst.",
        "{name} kündigte am Montag eine neue Partnerschaft mit {place} an.",
        "Nach der Konferenz dankte {name} dem Team von {place}.",
        "Die Sitzung in {place} wurde von {name} und {name2} geleitet.",
    ],
    "fr": [
        "Hier {name} a rencontré {name2} à {place} pour discuter de la fusion.",
        "Selon {place}, le rapport a été rédigé par {name}.",
        "{name} a annoncé lundi un nouveau partenariat avec {place}.",
        "Après la conférence, {name} a remercié l'équipe de {place}.",
        "La réunion à {place} a été dirigée par {name} et {name2}.",
    ],
    "zh": [
        "Zuotian {name} zai {place} huijian le {name2} tan hezuo.",
        "Genju {place} de baogao, {name} xuanbu le xin jihua.",
        "{name} jintian zai {place} fabiao le jianghua.",
        "{name} he {name2} zuotian zai {place} juxing le huiyi.",
    ],
}

# Name-composition quirks per language.
_PARTICLES = {"es": ["de", "de la", "del"], "de": ["von", "van"], "fr": ["de"], "en": [], "zh": []}


@dataclass(frozen=True)
class NameDocument:
    """One sentence with its ground-truth person names and language."""

    text: str
    names: tuple[str, ...]
    language: str


@dataclass
class NameExtractionDataset:
    """A multilingual corpus of name-bearing sentences."""

    documents: list[NameDocument] = field(default_factory=list)

    def by_language(self, language: str) -> list[NameDocument]:
        """Documents in one language."""
        return [d for d in self.documents if d.language == language]

    def summary(self) -> str:
        """Per-language document counts."""
        counts: dict[str, int] = {}
        for doc in self.documents:
            counts[doc.language] = counts.get(doc.language, 0) + 1
        parts = ", ".join(f"{lang}={count}" for lang, count in sorted(counts.items()))
        total_names = sum(len(d.names) for d in self.documents)
        return f"names corpus: {len(self.documents)} docs ({parts}), {total_names} names"


def _make_name(language: str, rng: random.Random) -> str:
    first = rng.choice(FIRST_NAMES[language])
    last = rng.choice(LAST_NAMES[language])
    particles = _PARTICLES[language]
    if particles and rng.random() < 0.25:
        return f"{first} {rng.choice(particles)} {last}"
    return f"{first} {last}"


def generate_name_dataset(
    seed: int = 3,
    n_documents: int = 240,
    language_mix: dict[str, float] | None = None,
) -> NameExtractionDataset:
    """Generate the multilingual corpus.

    ``language_mix`` maps language codes to sampling weights; the default
    mirrors a mostly-English corpus with a substantial multilingual tail
    (the regime in which a monolingual pipeline visibly degrades).
    """
    mix = language_mix or {"en": 0.4, "es": 0.18, "de": 0.16, "fr": 0.16, "zh": 0.10}
    unknown = set(mix) - set(_TEMPLATES)
    if unknown:
        raise ValueError(f"unsupported languages in mix: {sorted(unknown)}")
    rng = seeded_rng(f"names-{seed}")
    languages = sorted(mix)
    weights = [mix[lang] for lang in languages]
    documents: list[NameDocument] = []
    for _ in range(n_documents):
        language = rng.choices(languages, weights=weights, k=1)[0]
        template = rng.choice(_TEMPLATES[language])
        name = _make_name(language, rng)
        name2 = _make_name(language, rng)
        while name2 == name:
            name2 = _make_name(language, rng)
        place = rng.choice(NON_NAME_PROPER_NOUNS)
        text = template.format(name=name, name2=name2, place=place)
        names = [name] + ([name2] if "{name2}" in template else [])
        documents.append(NameDocument(text=text, names=tuple(names), language=language))
    return NameExtractionDataset(documents=documents)
