"""Index-addressable synthetic ER corpus for out-of-core streaming runs.

:func:`repro.datasets.entity_resolution.generate_er_dataset` materializes
every entity and pair up front, which is exactly what a memory-bounded
streaming benchmark must not do.  :class:`StreamingERCorpus` is the
out-of-core counterpart: a *seeded, index-addressable* pair generator —
``corpus.pair(i)`` derives pair ``i`` in O(1) memory from
``(seed, name, i)`` alone, so a million-pair corpus occupies a few dozen
bytes until iterated and re-yields byte-identical pairs on every pass.
That re-iterability is what lets a durable streaming resume rebuild shard
inputs by skipping the source forward instead of persisting them.

Every record carries an index-derived ``lot`` attribute, which makes each
pair's rendered prompt unique across the corpus.  That is deliberate: the
streaming executor's byte-identity guarantee under *worker kills* relies on
an abandoned shard attempt's cache inserts being removable without another
in-flight shard having already consumed them, which prompt-uniqueness makes
structural (see ``repro.core.runtime.workqueue``).  Process-crash resume
has no such requirement.

The domain mirrors the ``beer`` profile of the batch generator (style-name
rewrites, brewery suffix churn, ABV drift, typos) and reuses its corruption
helpers, so matcher prompts look the same in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro._util import seeded_rng, stable_hash
from repro.datasets.entity_resolution import (
    _BREWERY_SUFFIXES,
    _STYLE_REWRITES,
    _maybe,
    _typo,
    RecordPair,
)

__all__ = ["StreamingERCorpus"]

_ADJECTIVES = (
    "Old", "Double", "Dark", "Wild", "Lucky", "Iron", "Golden",
    "Rusty", "Smoky", "Velvet", "Arrogant", "Hazy", "Raging",
)
_NOUNS = (
    "Bastard", "Monk", "Ranger", "Trail", "Otter", "Moon", "Anvil",
    "Harvest", "Saint", "Heron", "Canyon", "Ember", "Compass",
)


@dataclass(frozen=True)
class StreamingERCorpus:
    """A seeded, O(1)-memory entity-resolution pair stream.

    Parameters
    ----------
    n_pairs:
        Corpus size; one labelled candidate pair per index in
        ``range(n_pairs)``.
    seed / name:
        Together the corpus identity: every pair is a pure function of
        ``(seed, name, index)``.  ``fingerprint`` folds them into a stable
        string for the shard ledger's run header.
    match_fraction:
        Probability that pair ``i`` is a true match (label 1).
    """

    n_pairs: int
    seed: int | str = 7
    match_fraction: float = 0.4
    name: str = "stream-beer"

    def __post_init__(self) -> None:
        if self.n_pairs < 0:
            raise ValueError("n_pairs must be non-negative")
        if not 0.0 <= self.match_fraction <= 1.0:
            raise ValueError("match_fraction must be in [0, 1]")

    def __len__(self) -> int:
        return self.n_pairs

    @property
    def fingerprint(self) -> str:
        """Stable identity string (recorded in streaming ledger headers)."""
        return (
            f"streaming-er:{self.name}:{self.seed}:"
            f"{self.n_pairs}:{self.match_fraction}"
        )

    # -- pair derivation ---------------------------------------------------------

    def _entity(self, rng, lot: str) -> dict:
        from repro.datasets.catalog import BEER_STYLES, BREWERY_WORDS

        style = rng.choice(BEER_STYLES)
        return {
            "name": f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} {style}",
            "brewery": f"{rng.choice(BREWERY_WORDS)} {_BREWERY_SUFFIXES[0]}",
            "style": style,
            "abv": f"{rng.uniform(4.0, 11.0):.1f}%",
            "lot": lot,
        }

    @staticmethod
    def _corrupt(entity: dict, rng) -> dict:
        """A dirty second view of ``entity`` (the matching right side)."""
        dirty = dict(entity)
        style = dirty["style"]
        if style in _STYLE_REWRITES and _maybe(rng, 0.6):
            rewritten = _STYLE_REWRITES[style]
            dirty["style"] = rewritten
            dirty["name"] = dirty["name"].replace(style, rewritten)
        if _maybe(rng, 0.5):
            base = dirty["brewery"].removesuffix(" " + _BREWERY_SUFFIXES[0])
            dirty["brewery"] = f"{base} {rng.choice(_BREWERY_SUFFIXES)}"
        if _maybe(rng, 0.4):
            dirty["abv"] = f"{float(dirty['abv'].rstrip('%')) + 0.1:.1f}%"
        if _maybe(rng, 0.5):
            dirty["name"] = _typo(dirty["name"], rng)
        return dirty

    def pair(self, index: int) -> RecordPair:
        """Derive pair ``index`` from scratch; O(1) memory, deterministic."""
        if not 0 <= index < self.n_pairs:
            raise IndexError(f"pair index {index} out of range [0, {self.n_pairs})")
        rng = seeded_rng(stable_hash(self.seed, self.name, "pair", index))
        label = 1 if rng.random() < self.match_fraction else 0
        lot = f"LOT-{index:08d}"
        left = self._entity(rng, lot)
        if label:
            right = self._corrupt(left, rng)
        else:
            # A blocking-style hard negative: same style, different entity
            # (and its own lot, so the rendered prompt stays corpus-unique).
            right = self._entity(rng, f"{lot}-B")
            right["style"] = left["style"]
        return RecordPair(
            left=left, right=right, label=label, pair_id=f"{self.name}-{index}"
        )

    # -- streaming views ---------------------------------------------------------

    def __iter__(self) -> Iterator[RecordPair]:
        for index in range(self.n_pairs):
            yield self.pair(index)

    def inputs(self) -> Iterator[dict]:
        """Lazy pipeline-input view: ``{"left", "right"}`` dicts, one per pair."""
        for pair in self:
            yield {"left": pair.left, "right": pair.right}

    def labels(self) -> Iterator[int]:
        """Lazy gold labels, aligned with :meth:`inputs`."""
        for index in range(self.n_pairs):
            yield self.pair(index).label

    def examples(self, k: int = 4, scan: int = 512) -> list[tuple[tuple, bool]]:
        """Balanced few-shot examples drawn from the first ``scan`` pairs.

        The streaming analogue of
        :func:`repro.tasks.entity_resolution.pick_examples`: alternating
        positive/negative examples, found by a bounded forward scan so no
        split ever needs materializing.
        """
        positives: list[RecordPair] = []
        negatives: list[RecordPair] = []
        need = (k + 1) // 2
        for index in range(min(scan, self.n_pairs)):
            pair = self.pair(index)
            bucket = positives if pair.label else negatives
            if len(bucket) < need:
                bucket.append(pair)
            if len(positives) >= need and len(negatives) >= need:
                break
        chosen: list[RecordPair] = []
        for index in range(k):
            source = positives if index % 2 == 0 else negatives
            if index // 2 < len(source):
                chosen.append(source[index // 2])
        return [((p.left, p.right), bool(p.label)) for p in chosen]
