"""Synthetic Buy-like data-imputation dataset (paper section 4.3).

Products have ``name``, ``description`` and a missing ``manufacturer``.  The
generator controls the *hardness mix*: an "easy" record mentions its brand
verbatim in the name or description (resolvable by cheap string rules), while
a "hard" record never does — its manufacturer is only deducible from product-
line world knowledge ("PlayStation 2 Memory Card 8MB" -> Sony).  The paper's
1/6-LLM-calls result comes precisely from this mix: the optimized LLMGC
module resolves easy records locally and escalates only the hard ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util import seeded_rng
from repro.datasets.catalog import BRANDS, Brand

__all__ = ["ImputationRecord", "ImputationDataset", "generate_buy_dataset"]

_PRODUCT_KINDS = {
    "electronics": ["Console", "Remote", "Adapter", "Dock", "Charger", "Cable Kit"],
    "cameras": ["Digital Camera", "Lens Kit", "Camera Bag", "Battery Pack", "Flash"],
    "computers": ["Notebook", "Desktop", "Docking Station", "Keyboard", "Memory Upgrade"],
    "accessories": ["Carrying Case", "Mount Kit", "Stylus Pack", "Screen Protector"],
    "storage": ["Memory Card 8MB", "Memory Card 1GB", "USB Flash Drive 2GB", "External Hard Drive 250GB"],
    "gps": ["GPS Navigator", "Dashboard Mount", "Traffic Receiver"],
    "phones": ["Bluetooth Headset", "Car Charger", "Belt Clip", "Extended Battery"],
    "audio": ["Headphones", "Speaker System", "Earbuds", "Audio Receiver", "Subwoofer"],
    "printers": ["Inkjet Printer", "Toner Cartridge", "Photo Paper Pack"],
    "networking": ["Wireless Router", "Network Switch 8-Port", "USB Wi-Fi Adapter"],
    "power": ["Surge Protector", "Battery Backup 650VA", "Replacement Battery"],
    "monitors": ["19-inch LCD Monitor", "22-inch Widescreen Monitor", "Monitor Stand"],
    "office": ["Paper Shredder", "Laminator", "Privacy Filter"],
    "appliances": ["Air Purifier", "Handheld Vacuum", "Tower Fan"],
}

_DESCRIPTION_TEMPLATES = [
    "{line} series {kind} with premium build quality.",
    "Genuine {kind} designed for the {line} product family.",
    "Compatible {kind} for {line} devices; includes quick start guide.",
    "High-performance {kind}. Works with all {line} models.",
]

_BRANDED_DESCRIPTION_TEMPLATES = [
    "Official {brand} {kind} with full warranty.",
    "{brand} original accessory. {line} series {kind}.",
    "Brand new {kind} by {brand}, sealed retail packaging.",
]


@dataclass(frozen=True)
class ImputationRecord:
    """One product with its hidden ground-truth manufacturer."""

    name: str
    description: str
    manufacturer: str  # ground truth (hidden from methods under test)
    hard: bool  # True when the brand is never mentioned verbatim

    def visible(self) -> dict:
        """The record as methods see it: manufacturer missing."""
        return {"name": self.name, "description": self.description, "manufacturer": None}


@dataclass
class ImputationDataset:
    """A Buy-like dataset split into train (for supervised baselines) and test."""

    train: list[ImputationRecord] = field(default_factory=list)
    test: list[ImputationRecord] = field(default_factory=list)

    def summary(self) -> str:
        """One-line description with the hardness mix."""
        hard = sum(1 for r in self.test if r.hard)
        return (
            f"buy: train={len(self.train)} test={len(self.test)} "
            f"(hard test records: {hard}, {hard / max(len(self.test), 1):.0%})"
        )


def _model_code(rng: random.Random) -> str:
    """A quasi-unique model number ("SL-2041") making product names distinct."""
    letters = "".join(rng.choice("ABCDEFGHJKLMNPRSTVWX") for _ in range(2))
    return f"{letters}-{rng.randrange(100, 9999)}"


def _make_record(brand: Brand, rng: random.Random, hard: bool) -> ImputationRecord:
    line = rng.choice(brand.lines)
    kind = rng.choice(_PRODUCT_KINDS[brand.category])
    code = _model_code(rng)
    if hard:
        # Brand never appears; only the product line gives it away.
        name = f"{line} {kind} {code}"
        description = rng.choice(_DESCRIPTION_TEMPLATES).format(line=line, kind=kind)
    else:
        mention_in_name = rng.random() < 0.6
        if mention_in_name:
            name = f"{brand.name} {line} {kind} {code}"
            if rng.random() < 0.12:
                # Realistic trap: the description advertises compatibility
                # with a *different* brand ("Works with Apple iPod...").
                other = rng.choice([b for b in BRANDS if b.name != brand.name])
                description = (
                    f"Compatible with {other.name} {rng.choice(other.lines)} "
                    f"devices. {kind} with warranty."
                )
            else:
                description = rng.choice(_DESCRIPTION_TEMPLATES).format(
                    line=line, kind=kind
                )
        else:
            name = f"{line} {kind} {code}"
            description = rng.choice(_BRANDED_DESCRIPTION_TEMPLATES).format(
                brand=brand.name, line=line, kind=kind
            )
    return ImputationRecord(
        name=name, description=description, manufacturer=brand.name, hard=hard
    )


def generate_buy_dataset(
    seed: int = 11,
    n_train: int = 2000,
    n_test: int = 650,
    hard_fraction: float = 1.0 / 6.0,
) -> ImputationDataset:
    """Generate the Buy-like dataset.

    ``hard_fraction`` controls how many records require world knowledge
    (default one sixth, matching the paper's observed LLM-call ratio).
    ``n_train`` defaults to thousands of labelled examples because that is
    what the IMP baseline trains on in the paper.
    """
    if not 0.0 <= hard_fraction <= 1.0:
        raise ValueError("hard_fraction must be in [0, 1]")
    rng = seeded_rng(f"buy-{seed}")

    def build(count: int) -> list[ImputationRecord]:
        records = []
        n_hard = int(round(count * hard_fraction))
        for i in range(count):
            brand = rng.choice(BRANDS)
            records.append(_make_record(brand, rng, hard=i < n_hard))
        rng.shuffle(records)
        return records

    return ImputationDataset(train=build(n_train), test=build(n_test))
