"""Seeded synthetic corpus for the curation workload family.

:class:`CurationCorpus` is the corpus-level sibling of
:class:`repro.datasets.streaming.StreamingERCorpus`: a seeded,
*index-addressable* document generator with known ground truth for all
three curation tasks —

- **duplicate clusters**: a fraction of documents are mutated copies of an
  earlier canonical document (variant-token rewrites the knowledge
  normaliser can undo, sentence drops/swaps, typos);
- **quality tiers**: each cluster carries a latent quality score rendered
  into the text as monotone features (junk pseudo-words, boilerplate,
  truncated sentences), plus *decoy* features (legitimate ALL-CAPS brand
  shouts, spec numbers) that fool surface heuristics but not a
  vocabulary-aware judge;
- **planted contamination**: a fraction of documents splice in a sentence
  from a held-out :class:`CurationEvalSet`, either verbatim (caught by a
  raw n-gram scan) or disguised through normalisation-invertible rewrites
  (only the LLM adjudicator recovers those).

Determinism contract (the ISSUE's generator fix): every random decision is
drawn from a ``stable_hash``-keyed stream scoped to the record (or cluster)
it concerns — there is **no** shared ``random.Random`` advanced in
iteration order — so ``corpus.doc(i)`` is a pure function of
``(seed, name, i)`` and streaming consumption equals materialised
iteration, in any access order.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import Iterator

from repro._util import seeded_rng, stable_hash, stable_unit

__all__ = [
    "CurationDoc",
    "CurationEvalSet",
    "CurationCorpus",
    "BOILERPLATE_PHRASES",
    "curation_vocabulary",
]


# ---------------------------------------------------------------------------
# Shared word material
# ---------------------------------------------------------------------------

_ADJECTIVES = (
    "Old", "Double", "Dark", "Wild", "Lucky", "Iron", "Golden",
    "Rusty", "Smoky", "Velvet", "Hazy", "Raging", "Quiet", "Copper",
)
_NOUNS = (
    "Bastard", "Monk", "Ranger", "Trail", "Otter", "Moon", "Anvil",
    "Harvest", "Saint", "Heron", "Canyon", "Ember", "Compass", "Lantern",
)
_STREETS = ("Oak", "Maple", "Cedar", "Harbor", "Mill", "Canyon", "Juniper")
_CITIES = ("Portland", "Austin", "Koln", "Köln", "Lyon", "Osaka", "Madrid")

#: Marketing boilerplate the generator plants in low-quality documents.  The
#: list is *world knowledge*: the simulated LLM's quality skill recognises
#: these phrases, the cheap surface heuristics do not.
BOILERPLATE_PHRASES = (
    "click here to subscribe now",
    "buy now limited time offer",
    "visit our website for more great deals",
    "follow us on social media today",
    "sign up free shipping on all orders",
)

#: Normalisation-invertible surface variants: each pair's two forms collapse
#: to the same text under :func:`repro.text.normalize.normalize_text` (the
#: knowledge canonicaliser) but differ under a knowledge-free one.  The
#: duplicate mutator and the contamination disguiser flip between forms.
_VARIANT_PAIRS = (
    ("St.", "Street"),
    ("Ave.", "Avenue"),
    ("Blvd.", "Boulevard"),
    ("&", "and"),
    ("IPA", "india pale ale"),
    ("ESB", "extra special bitter"),
    ("Co.", "company"),
    ("Ltd.", "limited"),
    ("feat.", "featuring"),
    ("Köln", "Koln"),
    ("café", "cafe"),
    ("12oz", "12 fl oz"),
    ("330ml", "330 milliliters"),
)

_VARIANT_LOOKUP: dict[str, str] = {}
for _a, _b in _VARIANT_PAIRS:
    _VARIANT_LOOKUP[_a] = _b
    _VARIANT_LOOKUP[_b] = _a

#: Canonical-document sentence templates.  Every sentence carries at least
#: two cluster-specific slots, so two different clusters almost never share
#: a whole sentence — candidate hard negatives stay below the verifier's
#: match threshold while the shared scaffolding still collides enough
#: shingles to exercise LSH.  Module-level so :func:`curation_vocabulary`
#: can enumerate the generator's full word material.
_SENTENCE_TEMPLATES = (
    "The {subject} {style} pours a deep {color} with a dense {head} head.",
    "{brewery} {suffix} first brewed the {subject} at {number} {street} St. in {city}.",
    "Bottles of the {subject} ship in {volume} format at {abv} percent abv.",
    "The {brewery} taproom on {street} Ave. pairs the {style} with {cuisine} plates.",
    "Critics rate the {subject} at {score} points {amp} praise its {finish} finish.",
    "A {season} cask of the {subject} appears at the {city} harvest fair.",
    "{brewery} ages part of the {subject} blend in {wood} casks for {number} days.",
    "Cafés {amp} bistros near {street} Blvd. pour the {subject} {style} on rotation.",
    "The {subject} recipe leans on {malt} barley {amp} {hop} hops.",
    "The {subject} label art changes with every {season} release in {city}.",
)

#: Slot values without their own word list above (see ``_canonical_content``).
_SLOT_WORDS = (
    "amber", "mahogany", "copper", "garnet", "chestnut",  # colours
    "cream", "ivory", "mocha", "tan",  # heads
    "autumn", "winter", "spring", "midsummer",  # seasons
    "oak", "cherrywood", "acacia",  # woods
    "floor-malted", "kilned", "peated", "biscuit",  # malts
    "whole-cone", "cryo", "noble", "wet-picked",  # hops
    "dry", "resinous", "silky", "bracing",  # finishes
    "official", "spec", "series", "catalogue", "ref",  # decoy / ref lines
)

#: Question frames of :class:`CurationEvalSet` (for the vocabulary).
_EVAL_FRAME_WORDS = (
    "according", "census", "released", "batch", "survey", "brewed", "lot",
    "won", "tasting", "score", "why", "where", "what", "who", "which",
    "brewery", "from",
)

#: Generic sentences shared across clusters (see ``_canonical_content``).
_GENERIC_SENTENCES = (
    "Tasting notes mention stone fruit, pine resin & soft carbonation.",
    "The bottling line runs small batches with hand-applied wax seals.",
    "Cellar staff recommend serving it a few degrees below room temperature.",
    "Distribution stays regional & allocations sell out within the week.",
    "The head brewer trained at a century-old brewhouse in Köln.",
    "Growler fills are offered on weekends & holidays only.",
    "Visitors can tour the cellars on the first weekend of each month.",
    "A portion of proceeds supports the local watershed restoration fund.",
)

_VOCAB_WORD_RE = re.compile(r"[^\W\d_]+", re.UNICODE)


@functools.lru_cache(maxsize=1)
def curation_vocabulary() -> frozenset[str]:
    """Every lower-cased word the generator can legitimately emit.

    This is the simulated LLM's "knows English" stand-in: the quality skill
    treats long words outside this vocabulary as gibberish.  The planted
    junk pseudo-words are by construction never in it, while every template
    word, slot value, catalogue entry, variant form, boilerplate phrase and
    eval-frame word is.
    """
    from repro.datasets.catalog import BEER_STYLES, BREWERY_WORDS, CUISINES

    words: set[str] = set()

    def add(text: str) -> None:
        for word in _VOCAB_WORD_RE.findall(text.lower()):
            words.add(word)

    for template in _SENTENCE_TEMPLATES:
        add(re.sub(r"\{\w+\}", " ", template))
    for source in (
        _GENERIC_SENTENCES,
        BOILERPLATE_PHRASES,
        _SLOT_WORDS,
        _EVAL_FRAME_WORDS,
        _ADJECTIVES,
        _NOUNS,
        _STREETS,
        _CITIES,
        BEER_STYLES,
        BREWERY_WORDS,
        CUISINES,
    ):
        for item in source:
            add(item)
    for a, b in _VARIANT_PAIRS:
        add(a)
        add(b)
    return frozenset(words)


_JUNK_SYLLABLES = (
    "brim", "flar", "gund", "plo", "snur", "trab", "quin", "dral",
    "vops", "zent", "mizz", "kelb", "phro", "wib",
)

_CONSONANTS = "bcdfgkmprstvz"
_VOWELS = "aeiou"


def _junk_word(rng) -> str:
    """A plausible-looking pseudo-word no vocabulary contains."""
    parts = [rng.choice(_JUNK_SYLLABLES) for _ in range(rng.randint(2, 3))]
    if rng.random() < 0.4:
        parts.append(rng.choice(_CONSONANTS) + rng.choice(_VOWELS))
    return "".join(parts)


def _typo_word(word: str, rng) -> str:
    """One character-level typo (swap/drop/double) in ``word``."""
    if len(word) < 4:
        return word
    i = rng.randrange(1, len(word) - 1)
    mode = rng.random()
    if mode < 0.34:
        return word[:i] + word[i + 1] + word[i] + word[i + 2 :]
    if mode < 0.67:
        return word[:i] + word[i + 1 :]
    return word[:i] + word[i] + word[i:]


# ---------------------------------------------------------------------------
# Held-out eval set (decontamination target)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CurationEvalSet:
    """A small held-out benchmark whose items must not leak into the corpus.

    Items are single question sentences over the same domain vocabulary as
    the corpus (so accidental n-gram collisions exist, which is what makes
    the decontamination scan's gray zone non-empty).  Every item embeds at
    least two variant tokens, so a disguised splice can break *all* of its
    raw 8-grams while remaining fully recoverable under the knowledge
    normaliser.
    """

    size: int
    seed: int | str = 7
    name: str = "curation-eval"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("eval set size must be positive")

    def __len__(self) -> int:
        return self.size

    @property
    def fingerprint(self) -> str:
        return f"curation-eval:{self.name}:{self.seed}:{self.size}"

    def item(self, index: int) -> str:
        """Derive eval question ``index``; pure function of the identity."""
        if not 0 <= index < self.size:
            raise IndexError(f"eval index {index} out of range [0, {self.size})")
        rng = seeded_rng(stable_hash(self.seed, self.name, "eval", index))
        year = rng.randint(1958, 2014)
        subject = f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}"
        style = rng.choice(("IPA", "ESB", "Porter", "Stout"))
        street = rng.choice(_STREETS)
        code = 1000 + (stable_hash(self.seed, self.name, "code", index) % 9000)
        frames = (
            f"according to the {year} {street} St. census which brewery "
            f"released the {subject} {style} batch {code} & why",
            f"in the {year} survey on {street} Ave. who brewed the "
            f"{subject} {style} lot {code} & where",
            f"which {subject} {style} from batch {code} won the {year} "
            f"{street} Blvd. tasting & what score",
        )
        return f"Q{index}: {rng.choice(frames)}?"

    def items(self) -> Iterator[str]:
        for index in range(self.size):
            yield self.item(index)


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CurationDoc:
    """One corpus document with its full ground truth."""

    index: int
    doc_id: str
    text: str
    #: index of the cluster's canonical document (== ``index`` if canonical)
    cluster: int
    #: True when this document is a mutated copy of an earlier canonical one
    is_duplicate: bool
    #: latent quality score in [0, 1] (shared by the whole cluster)
    quality: float
    #: gold keep/drop label for the quality filter (``quality >= 0.5``)
    keep: bool
    #: True when an eval-set sentence was spliced into the text
    contaminated: bool
    #: index of the spliced eval item (-1 when clean)
    eval_index: int

    def record(self) -> dict:
        """Pipeline-input view (``id``/``text`` only; no labels leak)."""
        return {"id": self.doc_id, "text": self.text}


@dataclass(frozen=True)
class CurationCorpus:
    """Seeded, index-addressable corpus with planted curation ground truth.

    Parameters
    ----------
    n_docs:
        Corpus size; document ``i`` is a pure function of
        ``(seed, name, i)``.
    dup_fraction:
        Probability that document ``i >= dup_floor`` is a mutated copy of
        an earlier canonical document.
    contamination_fraction:
        Probability that a document splices in an eval-set sentence.
    eval_size:
        Size of the paired held-out :class:`CurationEvalSet`.
    """

    n_docs: int
    seed: int | str = 7
    name: str = "curation"
    dup_fraction: float = 0.28
    contamination_fraction: float = 0.10
    eval_size: int = 32
    #: first index eligible to be a duplicate (guarantees canonical targets)
    dup_floor: int = 8

    def __post_init__(self) -> None:
        if self.n_docs < 0:
            raise ValueError("n_docs must be non-negative")
        if not 0.0 <= self.dup_fraction <= 1.0:
            raise ValueError("dup_fraction must be in [0, 1]")
        if not 0.0 <= self.contamination_fraction <= 1.0:
            raise ValueError("contamination_fraction must be in [0, 1]")

    def __len__(self) -> int:
        return self.n_docs

    @property
    def fingerprint(self) -> str:
        """Stable identity string (recorded in streaming ledger headers)."""
        return (
            f"curation:{self.name}:{self.seed}:{self.n_docs}:"
            f"{self.dup_fraction}:{self.contamination_fraction}:{self.eval_size}"
        )

    @property
    def eval_set(self) -> CurationEvalSet:
        return CurationEvalSet(size=self.eval_size, seed=self.seed, name=f"{self.name}-eval")

    # -- per-index structure (all pure functions of the identity) --------------

    def _is_duplicate_index(self, index: int) -> bool:
        if index < self.dup_floor:
            return False
        return stable_unit(self.seed, self.name, "dup", index) < self.dup_fraction

    def _cluster_of(self, index: int) -> int:
        """Canonical index of document ``index``'s cluster.

        Duplicates point backwards to a nearby canonical document; the
        search is a bounded, per-index seeded probe (no global state), so
        cluster structure is identical in any access order.
        """
        if not self._is_duplicate_index(index):
            return index
        rng = seeded_rng(stable_hash(self.seed, self.name, "pick", index))
        low = max(0, index - 64)
        for _ in range(24):
            j = rng.randrange(low, index)
            if not self._is_duplicate_index(j):
                return j
        for j in range(index - 1, -1, -1):
            if not self._is_duplicate_index(j):
                return j
        return 0  # unreachable: indices below dup_floor are canonical

    def _is_contaminated_index(self, index: int) -> bool:
        return (
            stable_unit(self.seed, self.name, "contam", index)
            < self.contamination_fraction
        )

    # -- canonical content ------------------------------------------------------

    def _canonical_content(self, cluster: int) -> tuple[list[str], float]:
        """``(sentences, quality)`` of a cluster's canonical document."""
        from repro.datasets.catalog import BEER_STYLES, BREWERY_WORDS, CUISINES

        rng = seeded_rng(stable_hash(self.seed, self.name, "content", cluster))
        quality = rng.random()
        subject = f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)}"
        style = rng.choice(("IPA", "ESB") + BEER_STYLES[2:])
        brewery = rng.choice(BREWERY_WORDS)
        cuisine = rng.choice(CUISINES).lower()
        street = rng.choice(_STREETS)
        city = rng.choice(_CITIES)
        number = rng.randint(4, 96)
        abv = f"{rng.uniform(4.0, 11.0):.1f}"
        volume = rng.choice(("12oz", "330ml"))
        suffix = rng.choice(("Co.", "Ltd."))
        amp = rng.choice(("&", "and"))
        color = rng.choice(("amber", "mahogany", "copper", "garnet", "chestnut"))
        head = rng.choice(("cream", "ivory", "mocha", "tan"))
        season = rng.choice(("autumn", "winter", "spring", "midsummer"))
        wood = rng.choice(("oak", "cherrywood", "acacia", "chestnut"))
        malt = rng.choice(("floor-malted", "kilned", "peated", "biscuit"))
        hop = rng.choice(("whole-cone", "cryo", "noble", "wet-picked"))
        finish = rng.choice(("dry", "resinous", "silky", "bracing"))
        score = rng.randint(81, 99)

        slots = {
            "subject": subject,
            "style": style,
            "brewery": brewery,
            "cuisine": cuisine,
            "street": street,
            "city": city,
            "number": number,
            "abv": abv,
            "volume": volume,
            "suffix": suffix,
            "amp": amp,
            "color": color,
            "head": head,
            "season": season,
            "wood": wood,
            "malt": malt,
            "hop": hop,
            "finish": finish,
            "score": score,
        }
        pool = [template.format(**slots) for template in _SENTENCE_TEMPLATES]
        n_sentences = rng.randint(6, min(9, len(pool)))
        sentences = rng.sample(pool, n_sentences)
        # Up to three *generic* sentences from a small shared pool: different
        # clusters can share these verbatim, which pushes negative-pair raw
        # Jaccard into the LSH candidate band — the hard negatives the LLM
        # verifier must reject.
        generic = rng.sample(_GENERIC_SENTENCES, rng.randint(1, 3))
        for sentence in generic:
            sentences.insert(rng.randrange(len(sentences) + 1), sentence)

        # Quality features: monotone in (1 - quality), plus decoys on the
        # high end so surface heuristics have genuine failure modes.
        junk_count = int(max(0.0, 0.55 - quality) * 16.0 * (0.7 + 0.6 * rng.random()))
        for _ in range(junk_count):
            target = rng.randrange(len(sentences))
            words = sentences[target].split()
            words.insert(rng.randrange(1, len(words)), _junk_word(rng))
            sentences[target] = " ".join(words)
        if quality < 0.55 and rng.random() < (0.85 - quality):
            sentences.insert(
                rng.randrange(len(sentences) + 1),
                rng.choice(BOILERPLATE_PHRASES).capitalize() + ".",
            )
        if quality < 0.5:
            # Spammy repetition: one sentence appears twice.
            if rng.random() < (0.6 - quality) * 1.4:
                victim = rng.choice(sentences)
                sentences.insert(rng.randrange(len(sentences) + 1), victim)
        if quality < 0.45:
            # Scrape damage: truncated fragments and dropped terminal
            # punctuation (run-on text is the classic surface tell).
            if rng.random() < 0.7:
                target = rng.randrange(len(sentences))
                words = sentences[target].split()
                sentences[target] = " ".join(words[: max(3, len(words) // 2)])
            for target in range(len(sentences)):
                if sentences[target].endswith(".") and rng.random() < (0.52 - quality):
                    sentences[target] = sentences[target][:-1]
        if quality >= 0.6 and rng.random() < 0.35:
            sentences.insert(
                rng.randrange(len(sentences) + 1),
                f"{brewery.upper()} OFFICIAL SPEC {rng.randint(10000, 99999)} "
                f"SERIES {number}.",
            )
        return sentences, quality

    # -- mutation and contamination ---------------------------------------------

    @staticmethod
    def _mutate(sentences: list[str], rng) -> list[str]:
        """A near-duplicate view: variant flips, drop/swap, a typo or two."""
        out = list(sentences)
        # A *disguised* duplicate is aggressively rewritten: it flips
        # essentially every variant token, drops more sentences and takes
        # more typos, dragging its knowledge-free shingle overlap down into
        # the band where hard negatives live — while the LLM's normaliser
        # still maps both copies to (nearly) the same canonical text.  A
        # raw-similarity threshold cannot separate these from negatives; the
        # knowledge path can.
        disguised = rng.random() < 0.4
        drops = 1 if (disguised or rng.random() < 0.35) else 0
        for _ in range(drops):
            if len(out) > 4:
                out.pop(rng.randrange(len(out)))
        if disguised:
            # A re-scraped page carries different boilerplate: swap one shared
            # generic sentence for another from the pool.
            present = [i for i, s in enumerate(out) if s in _GENERIC_SENTENCES]
            if present:
                slot = rng.choice(present)
                replacement = rng.choice(
                    [g for g in _GENERIC_SENTENCES if g != out[slot]]
                )
                out[slot] = replacement
        if len(out) > 2 and rng.random() < 0.4:
            i = rng.randrange(len(out) - 1)
            out[i], out[i + 1] = out[i + 1], out[i]
        flip_probability = 0.95 if disguised else 0.6
        mutated: list[str] = []
        for sentence in out:
            words = sentence.split()
            for w, word in enumerate(words):
                stripped = word.rstrip(".,?!")
                tail = word[len(stripped) :]
                if stripped in _VARIANT_LOOKUP and rng.random() < flip_probability:
                    words[w] = _VARIANT_LOOKUP[stripped] + tail
            mutated.append(" ".join(words))
        typos = rng.randint(0, 2) if disguised else (1 if rng.random() < 0.5 else 0)
        for _ in range(typos):
            target = rng.randrange(len(mutated))
            words = mutated[target].split()
            w = rng.randrange(len(words))
            words[w] = _typo_word(words[w], rng)
            mutated[target] = " ".join(words)
        return mutated

    def _disguise(self, sentence: str, rng) -> str:
        """Rewrite of an eval sentence that breaks every clean 8-gram.

        Variant flips plus a typo roughly every fifth word guarantee no
        8-token window survives verbatim, so the *hard* n-gram scan goes
        blind; enough 4-token windows survive that the *soft* scan still
        raises a borderline flag for the LLM to adjudicate.
        """
        words = sentence.split()
        for w, word in enumerate(words):
            stripped = word.rstrip(".,?!")
            tail = word[len(stripped) :]
            if stripped in _VARIANT_LOOKUP and rng.random() < 0.85:
                words[w] = _VARIANT_LOOKUP[stripped] + tail
            elif rng.random() < 0.18:
                words[w] = _typo_word(stripped, rng) + tail
        return " ".join(words)

    # -- the document ------------------------------------------------------------

    def doc(self, index: int) -> CurationDoc:
        """Derive document ``index`` from scratch; O(1) memory, deterministic."""
        if not 0 <= index < self.n_docs:
            raise IndexError(f"doc index {index} out of range [0, {self.n_docs})")
        cluster = self._cluster_of(index)
        sentences, quality = self._canonical_content(cluster)
        is_duplicate = cluster != index
        if is_duplicate:
            rng = seeded_rng(stable_hash(self.seed, self.name, "mutate", index))
            sentences = self._mutate(sentences, rng)
        contaminated = self._is_contaminated_index(index)
        eval_index = -1
        if contaminated:
            eval_index = stable_hash(self.seed, self.name, "evalpick", index) % self.eval_size
            splice = self.eval_set.item(eval_index)
            rng = seeded_rng(stable_hash(self.seed, self.name, "disguise", index))
            if rng.random() < 0.55:
                splice = self._disguise(splice, rng)
            position = stable_hash(self.seed, self.name, "slot", index) % (
                len(sentences) + 1
            )
            sentences = sentences[:position] + [splice] + sentences[position:]
        doc_id = f"D{index:07d}"
        # A per-document reference sentence keeps every rendered prompt
        # corpus-unique — the streaming executor's worker-kill cache
        # rollback relies on that (see repro.core.runtime.workqueue).
        text = " ".join(sentences + [f"Catalogue ref {doc_id}."])
        return CurationDoc(
            index=index,
            doc_id=doc_id,
            text=text,
            cluster=cluster,
            is_duplicate=is_duplicate,
            quality=quality,
            keep=quality >= 0.5,
            contaminated=contaminated,
            eval_index=eval_index,
        )

    # -- streaming views ---------------------------------------------------------

    def __iter__(self) -> Iterator[CurationDoc]:
        for index in range(self.n_docs):
            yield self.doc(index)

    def inputs(self) -> Iterator[dict]:
        """Lazy pipeline-input view: ``{"id", "text"}`` dicts."""
        for doc in self:
            yield doc.record()

    def materialize(self) -> list[CurationDoc]:
        """All documents as a list (tests and small batch runs)."""
        return list(self)

    # -- few-shot example pickers -------------------------------------------------

    def dedup_examples(self, k: int = 4, scan: int = 256) -> list[tuple[tuple, bool]]:
        """Balanced duplicate/non-duplicate record-pair examples.

        Positives pair a duplicate with its cluster canonical; negatives
        pair two nearby canonicals.  Found by a bounded forward scan (the
        :meth:`StreamingERCorpus.examples` idiom) so nothing materialises.
        """
        positives: list[tuple[dict, dict]] = []
        negatives: list[tuple[dict, dict]] = []
        need = (k + 1) // 2
        previous_canonical: CurationDoc | None = None
        for index in range(min(scan, self.n_docs)):
            doc = self.doc(index)
            if doc.is_duplicate and len(positives) < need:
                positives.append((self.doc(doc.cluster).record(), doc.record()))
            elif not doc.is_duplicate:
                if previous_canonical is not None and len(negatives) < need:
                    negatives.append((previous_canonical.record(), doc.record()))
                previous_canonical = doc
            if len(positives) >= need and len(negatives) >= need:
                break
        chosen: list[tuple[tuple, bool]] = []
        for index in range(k):
            source, label = (positives, True) if index % 2 == 0 else (negatives, False)
            if index // 2 < len(source):
                chosen.append((source[index // 2], label))
        return chosen

    def decontamination_examples(
        self, k: int = 4, scan: int = 256
    ) -> list[tuple[dict, str, bool]]:
        """Balanced ``(document, eval item, leaked?)`` adjudication examples.

        Positives pair a contaminated document with the eval item actually
        spliced into it; negatives pair a clean document with an arbitrary
        (deterministically chosen) eval item.
        """
        positives: list[tuple[dict, str, bool]] = []
        negatives: list[tuple[dict, str, bool]] = []
        need = (k + 1) // 2
        for index in range(min(scan, self.n_docs)):
            doc = self.doc(index)
            if doc.contaminated and len(positives) < need:
                positives.append(
                    (doc.record(), self.eval_set.item(doc.eval_index), True)
                )
            elif not doc.contaminated and len(negatives) < need:
                negatives.append(
                    (doc.record(), self.eval_set.item(index % self.eval_size), False)
                )
            if len(positives) >= need and len(negatives) >= need:
                break
        chosen: list[tuple[dict, str, bool]] = []
        for index in range(k):
            source = positives if index % 2 == 0 else negatives
            if index // 2 < len(source):
                chosen.append(source[index // 2])
        return chosen

    def quality_examples(self, k: int = 4, scan: int = 256) -> list[tuple[dict, bool]]:
        """Balanced keep/drop document examples for the quality teacher."""
        keeps: list[CurationDoc] = []
        drops: list[CurationDoc] = []
        need = (k + 1) // 2
        for index in range(min(scan, self.n_docs)):
            doc = self.doc(index)
            bucket = keeps if doc.keep else drops
            if len(bucket) < need:
                bucket.append(doc)
            if len(keeps) >= need and len(drops) >= need:
                break
        chosen: list[tuple[dict, bool]] = []
        for index in range(k):
            source, label = (keeps, True) if index % 2 == 0 else (drops, False)
            if index // 2 < len(source):
                chosen.append((source[index // 2].record(), label))
        return chosen
