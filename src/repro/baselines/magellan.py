"""Magellan-style baseline: similarity features + random forest.

Stands in for the Magellan matcher of paper Table 1 (see DESIGN.md's
substitution table).  Classical regime: train a feature-based classifier on
*raw* attribute similarities over hundreds/thousands of labelled pairs.  It
has no world knowledge — no abbreviation/unit normalisation — which is
exactly why it trails the LLM-based methods on dirty text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.entity_resolution import ERDataset, RecordPair
from repro.ml.features import PairFeatureExtractor
from repro.ml.forest import RandomForest
from repro.ml.metrics import f1_score

__all__ = ["MagellanMatcher", "evaluate_magellan"]


@dataclass
class MagellanMatcher:
    """Random forest over classic record-pair similarity features."""

    n_trees: int = 30
    max_depth: int = 10
    seed: int = 0
    columnar: bool | None = None  # None: follow the ambient columnar mode
    _extractor: PairFeatureExtractor | None = field(default=None, repr=False)
    _model: RandomForest | None = field(default=None, repr=False)

    def fit(self, attributes: list[str], pairs: list[RecordPair]) -> "MagellanMatcher":
        """Train on labelled pairs; returns self."""
        if not pairs:
            raise ValueError("cannot fit on an empty pair set")
        # normalize=False: the classical matcher sees raw strings; the
        # metric menu is the classical word/edit family (no typo-robust
        # qgram/monge-elkan, which model pretrained-LM robustness).
        self._extractor = PairFeatureExtractor(
            attributes,
            normalize=False,
            metrics=("jaccard", "jaro_winkler", "levenshtein", "overlap",
                     "numeric", "both_present"),
            columnar=self.columnar,
        )
        X = self._extractor.transform([(p.left, p.right) for p in pairs])
        y = [p.label for p in pairs]
        self._model = RandomForest(
            n_trees=self.n_trees, max_depth=self.max_depth, seed=self.seed
        ).fit(X, y)
        return self

    def predict(self, pairs: list[RecordPair]) -> list[int]:
        """0/1 match predictions."""
        if self._model is None or self._extractor is None:
            raise RuntimeError("matcher is not fitted; call fit() first")
        X = self._extractor.transform([(p.left, p.right) for p in pairs])
        return list(self._model.predict(X))


def evaluate_magellan(dataset: ERDataset, seed: int = 0) -> float:
    """Train on train+valid, report test F1 (the Table 1 protocol)."""
    matcher = MagellanMatcher(seed=seed)
    matcher.fit(dataset.attributes, dataset.train + dataset.valid)
    predictions = matcher.predict(dataset.test)
    return f1_score([p.label for p in dataset.test], predictions)
