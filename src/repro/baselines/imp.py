"""IMP-style baseline: supervised imputation trained on thousands of labels.

IMP (Mei et al., ICDE 2021) trains a Transformer over record text to impute
missing values, reaching 96.5% on Buy in the paper.  The proxy keeps the
regime — a text model trained on thousands of labelled records — using a
token-level multinomial naive Bayes, which captures the lexical
line-to-brand mapping the Transformer learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.imputation import ImputationRecord
from repro.ml.metrics import accuracy
from repro.ml.naive_bayes import MultinomialNaiveBayes

__all__ = ["IMPImputer", "evaluate_imp"]


def _record_text(record: dict) -> str:
    name = str(record.get("name") or "")
    description = str(record.get("description") or "")
    # The name is the strongest signal; repeat it to up-weight its tokens.
    return f"{name} {name} | {description}"


@dataclass
class IMPImputer:
    """Token language model (multinomial NB) over manufacturers.

    The discriminative signal on Buy is lexical — product-line tokens map
    almost deterministically to brands once thousands of examples are seen —
    which a token-level model captures the same way IMP's Transformer does.
    """

    alpha: float = 0.1
    _model: MultinomialNaiveBayes | None = field(default=None, repr=False)

    def fit(self, labelled: list[ImputationRecord]) -> "IMPImputer":
        """Train on labelled records; returns self."""
        if not labelled:
            raise ValueError("cannot fit on an empty training set")
        texts = [_record_text(record.visible()) for record in labelled]
        y = [record.manufacturer for record in labelled]
        self._model = MultinomialNaiveBayes(alpha=self.alpha).fit(texts, y)
        return self

    def predict_one(self, record: dict) -> str:
        """Impute one record's manufacturer."""
        if self._model is None:
            raise RuntimeError("imputer is not fitted; call fit() first")
        return str(self._model.predict_one(_record_text(record)))

    def predict(self, records: list[dict]) -> list[str]:
        """Impute a batch."""
        return [self.predict_one(record) for record in records]


def evaluate_imp(
    train: list[ImputationRecord], test: list[ImputationRecord]
) -> float:
    """Train on the labelled split, report test accuracy."""
    imputer = IMPImputer().fit(train)
    predictions = imputer.predict([record.visible() for record in test])
    return accuracy([record.manufacturer for record in test], predictions)
