"""Baselines the paper compares against (see DESIGN.md substitution table)."""

from repro.baselines.curation import (
    CurationBaselineResult,
    evaluate_hard_scan_decontamination,
    evaluate_rules_quality,
    evaluate_threshold_dedup,
    hard_scan_contamination_flags,
    rules_quality_flags,
    threshold_dedup_flags,
)
from repro.baselines.ditto import DittoMatcher, evaluate_ditto
from repro.baselines.fms import (
    evaluate_fms_imputation,
    evaluate_fms_matching,
    fms_impute_record,
    fms_match_pair,
)
from repro.baselines.holoclean import HoloCleanImputer, evaluate_holoclean
from repro.baselines.imp import IMPImputer, evaluate_imp
from repro.baselines.magellan import MagellanMatcher, evaluate_magellan

__all__ = [
    "CurationBaselineResult",
    "evaluate_hard_scan_decontamination",
    "evaluate_rules_quality",
    "evaluate_threshold_dedup",
    "hard_scan_contamination_flags",
    "rules_quality_flags",
    "threshold_dedup_flags",
    "DittoMatcher",
    "evaluate_ditto",
    "evaluate_fms_imputation",
    "evaluate_fms_matching",
    "fms_impute_record",
    "fms_match_pair",
    "HoloCleanImputer",
    "evaluate_holoclean",
    "IMPImputer",
    "evaluate_imp",
    "MagellanMatcher",
    "evaluate_magellan",
]
