"""Ditto-style baseline: pretrained-LM matcher proxy.

Ditto (Li et al., VLDB 2020) fine-tunes BERT on serialized record pairs and
is the supervised state of the art in paper Table 1.  The proxy keeps its
two essential properties: (a) it is trained on thousands of labelled pairs,
and (b) it "understands" surface variation the way a pretrained LM does —
modelled here by normalising text (abbreviations, units, case, accents)
before featurisation, plus rich similarity features and hashed n-grams of
the serialized pair fed to a logistic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.entity_resolution import ERDataset, RecordPair
from repro.ml.features import HashingVectorizer, PairFeatureExtractor
from repro.ml.forest import RandomForest
from repro.ml.metrics import f1_score
from repro.text.normalize import normalize_text

__all__ = ["DittoMatcher", "evaluate_ditto"]


def _serialize(pair: RecordPair) -> str:
    """Ditto's COL/VAL serialization, normalised."""
    def side(record: dict) -> str:
        return " ".join(
            f"COL {key} VAL {normalize_text(str(value))}"
            for key, value in sorted(record.items())
            if value is not None
        )

    return side(pair.left) + " [SEP] " + side(pair.right)


@dataclass
class DittoMatcher:
    """Normalised similarity features + hashed pair text -> logistic model."""

    n_features: int = 1024
    epochs: int = 400
    seed: int = 0
    columnar: bool | None = None  # None: follow the ambient columnar mode
    _extractor: PairFeatureExtractor | None = field(default=None, repr=False)
    _vectorizer: HashingVectorizer = field(
        default_factory=lambda: HashingVectorizer(n_features=512, word_ngrams=(1,)),
        repr=False,
    )
    _model: RandomForest | None = field(default=None, repr=False)
    _threshold: float = 0.5

    def _features(self, pairs: list[RecordPair], attributes: list[str]) -> np.ndarray:
        assert self._extractor is not None
        similarity = self._extractor.transform([(p.left, p.right) for p in pairs])
        text = self._vectorizer.transform([_serialize(p) for p in pairs])
        return np.hstack([similarity, text])

    def fit(self, attributes: list[str], pairs: list[RecordPair]) -> "DittoMatcher":
        """Train on labelled pairs (thousands, per the paper's protocol)."""
        if not pairs:
            raise ValueError("cannot fit on an empty pair set")
        self._extractor = PairFeatureExtractor(
            attributes, normalize=True, columnar=self.columnar
        )
        X = self._features(pairs, attributes)
        y = [p.label for p in pairs]
        self._model = RandomForest(
            n_trees=40, max_depth=12, max_features=0.7, seed=self.seed
        ).fit(X, y)
        # Calibrate the decision threshold on the training data for max F1 —
        # the fine-tuning analogue of Ditto's validation-split selection.
        probs = self._model.predict_proba(X)
        best_threshold, best_f1 = 0.5, -1.0
        for threshold in np.arange(0.2, 0.8, 0.02):
            f1 = f1_score(y, (probs >= threshold).astype(int))
            if f1 > best_f1:
                best_threshold, best_f1 = float(threshold), f1
        self._threshold = best_threshold
        return self

    def predict(self, pairs: list[RecordPair]) -> list[int]:
        """0/1 match predictions."""
        if self._model is None:
            raise RuntimeError("matcher is not fitted; call fit() first")
        X = self._features(pairs, [])
        return list(
            (self._model.predict_proba(X) >= self._threshold).astype(int)
        )


def evaluate_ditto(dataset: ERDataset, seed: int = 0) -> float:
    """Train on train+valid, report test F1 (the Table 1 protocol)."""
    matcher = DittoMatcher(seed=seed)
    matcher.fit(dataset.attributes, dataset.train + dataset.valid)
    predictions = matcher.predict(dataset.test)
    return f1_score([p.label for p in dataset.test], predictions)
