"""Non-LLM curation baselines: what a classical pipeline gets without the model.

Each baseline is the knowledge-free counterpart of one curation template:

- **threshold dedup** — the classic MinHash pipeline: candidates from the
  *simple* (knowledge-free) canonical form only, verified by a fixed raw
  Jaccard threshold.  No variant table, no adjudication of the gray zone.
- **rules-only quality** — :func:`repro.text.quality.rule_quality_score`
  against a fixed cut; inherits every blind spot of the surface features
  (pseudo-word junk it cannot read, ALL-CAPS decoys it wrongly punishes).
- **hard-scan decontamination** — flag only verbatim 8-gram hits; disguised
  splices (variant rewrites + typos) pass straight through.

These are honest fixed-configuration baselines: thresholds are constants
chosen once (documented below), not tuned per corpus against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.compiler.curation import (
    DEDUP_SHINGLE_N,
    dedup_candidate_pairs,
)
from repro.datasets.curation import CurationCorpus
from repro.ml.metrics import f1_score
from repro.text.overlap import build_ngram_index, overlap_profile
from repro.text.quality import rule_quality_score
from repro.text.shingle import exact_jaccard, shingle_ids, simple_canonical

__all__ = [
    "CurationBaselineResult",
    "DEDUP_JACCARD_THRESHOLD",
    "QUALITY_RULE_THRESHOLD",
    "threshold_dedup_flags",
    "rules_quality_flags",
    "hard_scan_contamination_flags",
    "evaluate_threshold_dedup",
    "evaluate_rules_quality",
    "evaluate_hard_scan_decontamination",
]

#: Fixed verification threshold of the classic MinHash dedup pipeline
#: (raw Jaccard over knowledge-free shingles; the conventional 0.5 cut).
DEDUP_JACCARD_THRESHOLD = 0.5

#: Fixed keep cut for the rules-only quality filter.  The rule score is
#: "1.0 minus penalties", so nominally clean documents sit high; 0.85 is
#: the midpoint of the score mass on reference corpora.
QUALITY_RULE_THRESHOLD = 0.85


@dataclass(frozen=True)
class CurationBaselineResult:
    """Per-document 0/1 flags of a baseline plus its F1 against ground truth."""

    baseline: str
    f1: float
    predictions: list[int]


def threshold_dedup_flags(
    records: Sequence[dict],
    *,
    threshold: float = DEDUP_JACCARD_THRESHOLD,
    shingle_n: int = DEDUP_SHINGLE_N,
    **kernel: Any,
) -> list[int]:
    """Duplicate flags from simple-canonical candidates + fixed Jaccard cut."""
    pairs = dedup_candidate_pairs(records, dual=False, shingle_n=shingle_n, **kernel)
    shingles = {
        record["id"]: shingle_ids(simple_canonical(str(record["text"])), shingle_n)
        for record in records
    }
    duplicates = {
        max(a, b)
        for a, b in pairs
        if exact_jaccard(shingles[a], shingles[b]) >= threshold
    }
    return [int(record["id"] in duplicates) for record in records]


def rules_quality_flags(
    records: Sequence[dict], *, threshold: float = QUALITY_RULE_THRESHOLD
) -> list[int]:
    """Keep flags from the surface heuristic against a fixed cut."""
    return [
        int(rule_quality_score(str(record["text"])) >= threshold)
        for record in records
    ]


def hard_scan_contamination_flags(
    records: Sequence[dict], eval_items: Sequence[str], *, hard_n: int = 8
) -> list[int]:
    """Contamination flags from verbatim hard n-gram hits only."""
    hard_index = build_ngram_index(list(eval_items), hard_n)
    empty: dict = {}
    flags = []
    for record in records:
        profile = overlap_profile(
            str(record["text"]), hard_index, empty, hard_n=hard_n, soft_n=hard_n
        )
        flags.append(int(profile.hard_hits > 0))
    return flags


def _evaluate(
    corpus: CurationCorpus, name: str, predictions: list[int], labels: list[int]
) -> CurationBaselineResult:
    return CurationBaselineResult(
        baseline=name, f1=f1_score(labels, predictions), predictions=predictions
    )


def evaluate_threshold_dedup(
    corpus: CurationCorpus, threshold: float = DEDUP_JACCARD_THRESHOLD
) -> CurationBaselineResult:
    docs = corpus.materialize()
    return _evaluate(
        corpus,
        "threshold_dedup",
        threshold_dedup_flags([d.record() for d in docs], threshold=threshold),
        [int(d.is_duplicate) for d in docs],
    )


def evaluate_rules_quality(
    corpus: CurationCorpus, threshold: float = QUALITY_RULE_THRESHOLD
) -> CurationBaselineResult:
    docs = corpus.materialize()
    return _evaluate(
        corpus,
        "rules_quality",
        rules_quality_flags([d.record() for d in docs], threshold=threshold),
        [int(d.keep) for d in docs],
    )


def evaluate_hard_scan_decontamination(corpus: CurationCorpus) -> CurationBaselineResult:
    docs = corpus.materialize()
    return _evaluate(
        corpus,
        "hard_scan_decontamination",
        hard_scan_contamination_flags(
            [d.record() for d in docs], list(corpus.eval_set.items())
        ),
        [int(d.contaminated) for d in docs],
    )
