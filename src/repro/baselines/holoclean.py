"""HoloClean-style baseline: probabilistic repair from co-occurrence signals.

HoloClean (Rekatsinas et al., VLDB 2017) repairs cells with probabilistic
inference over functional dependencies and value co-occurrence statistics.
It treats attribute values as *categorical domain values* — it has no text
semantics and no world knowledge.  On the Buy task (infer a manufacturer
from a free-text product name) that signal model is fundamentally starved,
which is why the paper reports 16.2% accuracy.  The proxy mirrors the signal
model faithfully:

- exact-value FD: identical names observed with a manufacturer vote for it;
- categorical co-occurrence: only *frequent* tokens (the ones that behave
  like categorical domain values, e.g. "Headphones") carry votes;
- otherwise the global majority prior.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.imputation import ImputationRecord
from repro.ml.metrics import accuracy
from repro.storage.columnar import resolve_columnar

__all__ = ["HoloCleanImputer", "evaluate_holoclean"]


def _top_vote(votes: Counter) -> str:
    """Highest-count value, ties broken alphabetically.

    ``Counter.most_common`` breaks ties by insertion order, which here
    flows from ``set`` iteration — randomised per process by string
    hashing.  An explicit tie-break keeps the baseline reproducible.
    """
    return min(votes, key=lambda value: (-votes[value], value))


@dataclass
class HoloCleanImputer:
    """Co-occurrence voting over frequent categorical tokens."""

    min_token_frequency: int = 25
    columnar: bool | None = None  # None: follow the ambient columnar mode
    _exact: dict[str, Counter] = field(default_factory=dict, repr=False)
    _token_votes: dict[str, Counter] = field(default_factory=dict, repr=False)
    _prior: Counter = field(default_factory=Counter, repr=False)
    _vote_matrix: "np.ndarray | None" = field(default=None, repr=False)
    _vote_token_ids: dict[str, int] = field(default_factory=dict, repr=False)
    _labels: tuple[str, ...] = field(default=(), repr=False)

    def fit(self, observed: list[ImputationRecord]) -> "HoloCleanImputer":
        """Learn statistics from records whose manufacturer is observed."""
        if not observed:
            raise ValueError("cannot fit on an empty observed set")
        token_frequency: Counter = Counter()
        raw_votes: dict[str, Counter] = defaultdict(Counter)
        self._exact = defaultdict(Counter)
        self._prior = Counter()
        for record in observed:
            self._prior[record.manufacturer] += 1
            self._exact[record.name.lower()][record.manufacturer] += 1
            for token in set(record.name.lower().split()):
                token_frequency[token] += 1
                raw_votes[token][record.manufacturer] += 1
        # Only high-frequency tokens act as categorical domain values.
        self._token_votes = {
            token: votes
            for token, votes in raw_votes.items()
            if token_frequency[token] >= self.min_token_frequency
        }
        # Columnar side tables: labels in sorted order (so argmax's
        # first-maximum tie-break IS the alphabetical tie-break of
        # ``_top_vote``) and one int row of votes per frequent token.
        self._labels = tuple(sorted(self._prior))
        label_ids = {label: k for k, label in enumerate(self._labels)}
        self._vote_token_ids = {
            token: t for t, token in enumerate(sorted(self._token_votes))
        }
        self._vote_matrix = np.zeros(
            (len(self._vote_token_ids), len(self._labels)), dtype=np.int64
        )
        for token, t in self._vote_token_ids.items():
            for label, count in self._token_votes[token].items():
                self._vote_matrix[t, label_ids[label]] = count
        return self

    def predict_one(self, record: dict) -> str:
        """Repair one record's manufacturer."""
        if not self._prior:
            raise RuntimeError("imputer is not fitted; call fit() first")
        name = str(record.get("name", "")).lower()
        if name in self._exact:
            return _top_vote(self._exact[name])
        votes: Counter = Counter()
        for token in set(name.split()):
            if token in self._token_votes:
                votes.update(self._token_votes[token])
        if votes:
            return _top_vote(votes)
        return _top_vote(self._prior)

    def predict(self, records: list[dict]) -> list[str]:
        """Repair a batch of records.

        The columnar path accumulates every record's token votes in one
        integer matrix pass; votes are exact counts, so it agrees with
        :meth:`predict_one` on every record.
        """
        if resolve_columnar(self.columnar):
            return self._predict_columnar(records)
        return [self.predict_one(record) for record in records]

    def _predict_columnar(self, records: list[dict]) -> list[str]:
        if not self._prior:
            raise RuntimeError("imputer is not fitted; call fit() first")
        if not records:
            return []
        assert self._vote_matrix is not None
        names = [str(record.get("name", "")).lower() for record in records]
        out: list[str | None] = [None] * len(records)
        exact_cache: dict[str, str] = {}
        open_rows: list[int] = []
        entry_rows: list[int] = []
        entry_tokens: list[int] = []
        for i, name in enumerate(names):
            if name in self._exact:
                if name not in exact_cache:
                    exact_cache[name] = _top_vote(self._exact[name])
                out[i] = exact_cache[name]
                continue
            open_rows.append(i)
            row = len(open_rows) - 1
            for token in set(name.split()):
                t = self._vote_token_ids.get(token)
                if t is not None:
                    entry_rows.append(row)
                    entry_tokens.append(t)
        prior_top = _top_vote(self._prior)
        if open_rows:
            votes = np.zeros((len(open_rows), len(self._labels)), dtype=np.int64)
            if entry_rows:
                np.add.at(
                    votes,
                    np.asarray(entry_rows, dtype=np.int64),
                    self._vote_matrix[np.asarray(entry_tokens, dtype=np.int64)],
                )
            winners = np.argmax(votes, axis=1)
            voted = votes.sum(axis=1) > 0
            for row, i in enumerate(open_rows):
                out[i] = self._labels[winners[row]] if voted[row] else prior_top
        # Every index was filled by the exact path or the open-rows path.
        return [value for value in out if value is not None]


def evaluate_holoclean(
    train: list[ImputationRecord], test: list[ImputationRecord]
) -> float:
    """Fit on observed training records, report test accuracy."""
    imputer = HoloCleanImputer().fit(train)
    predictions = imputer.predict([record.visible() for record in test])
    return accuracy([record.manufacturer for record in test], predictions)
