"""HoloClean-style baseline: probabilistic repair from co-occurrence signals.

HoloClean (Rekatsinas et al., VLDB 2017) repairs cells with probabilistic
inference over functional dependencies and value co-occurrence statistics.
It treats attribute values as *categorical domain values* — it has no text
semantics and no world knowledge.  On the Buy task (infer a manufacturer
from a free-text product name) that signal model is fundamentally starved,
which is why the paper reports 16.2% accuracy.  The proxy mirrors the signal
model faithfully:

- exact-value FD: identical names observed with a manufacturer vote for it;
- categorical co-occurrence: only *frequent* tokens (the ones that behave
  like categorical domain values, e.g. "Headphones") carry votes;
- otherwise the global majority prior.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.datasets.imputation import ImputationRecord
from repro.ml.metrics import accuracy

__all__ = ["HoloCleanImputer", "evaluate_holoclean"]


def _top_vote(votes: Counter) -> str:
    """Highest-count value, ties broken alphabetically.

    ``Counter.most_common`` breaks ties by insertion order, which here
    flows from ``set`` iteration — randomised per process by string
    hashing.  An explicit tie-break keeps the baseline reproducible.
    """
    return min(votes, key=lambda value: (-votes[value], value))


@dataclass
class HoloCleanImputer:
    """Co-occurrence voting over frequent categorical tokens."""

    min_token_frequency: int = 25
    _exact: dict[str, Counter] = field(default_factory=dict, repr=False)
    _token_votes: dict[str, Counter] = field(default_factory=dict, repr=False)
    _prior: Counter = field(default_factory=Counter, repr=False)

    def fit(self, observed: list[ImputationRecord]) -> "HoloCleanImputer":
        """Learn statistics from records whose manufacturer is observed."""
        if not observed:
            raise ValueError("cannot fit on an empty observed set")
        token_frequency: Counter = Counter()
        raw_votes: dict[str, Counter] = defaultdict(Counter)
        self._exact = defaultdict(Counter)
        self._prior = Counter()
        for record in observed:
            self._prior[record.manufacturer] += 1
            self._exact[record.name.lower()][record.manufacturer] += 1
            for token in set(record.name.lower().split()):
                token_frequency[token] += 1
                raw_votes[token][record.manufacturer] += 1
        # Only high-frequency tokens act as categorical domain values.
        self._token_votes = {
            token: votes
            for token, votes in raw_votes.items()
            if token_frequency[token] >= self.min_token_frequency
        }
        return self

    def predict_one(self, record: dict) -> str:
        """Repair one record's manufacturer."""
        if not self._prior:
            raise RuntimeError("imputer is not fitted; call fit() first")
        name = str(record.get("name", "")).lower()
        if name in self._exact:
            return _top_vote(self._exact[name])
        votes: Counter = Counter()
        for token in set(name.split()):
            if token in self._token_votes:
                votes.update(self._token_votes[token])
        if votes:
            return _top_vote(votes)
        return _top_vote(self._prior)

    def predict(self, records: list[dict]) -> list[str]:
        """Repair a batch of records."""
        return [self.predict_one(record) for record in records]


def evaluate_holoclean(
    train: list[ImputationRecord], test: list[ImputationRecord]
) -> float:
    """Fit on observed training records, report test accuracy."""
    imputer = HoloCleanImputer().fit(train)
    predictions = imputer.predict([record.visible() for record in test])
    return accuracy([record.manufacturer for record in test], predictions)
