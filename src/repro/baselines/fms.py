"""FMs baseline: raw foundation-model prompting (Narayan et al., VLDB 2022).

"Can Foundation Models Wrangle Your Data?" showed zero/few-shot prompting of
a vanilla LLM handles data tasks but trails tuned systems.  In paper Table 1
and section 4.3 it is the "LLM without system support" baseline: one terse
prompt per record pair / record, no task template, no examples, no
validators, no optimizer.  That is exactly what this module issues.
"""

from __future__ import annotations

import json

from repro.datasets.entity_resolution import ERDataset, RecordPair
from repro.datasets.imputation import ImputationRecord
from repro.llm.service import LLMService
from repro.ml.metrics import accuracy, f1_score

__all__ = [
    "fms_match_pair",
    "evaluate_fms_matching",
    "fms_impute_record",
    "evaluate_fms_imputation",
]


def fms_match_pair(service: LLMService, pair: RecordPair) -> bool:
    """One bare match prompt, parsed leniently (no validation layer)."""
    prompt = (
        "Are these records the same entity?\n"
        "Record A: " + json.dumps(pair.left, sort_keys=True, default=str) + "\n"
        "Record B: " + json.dumps(pair.right, sort_keys=True, default=str)
    )
    response = service.complete(prompt, purpose="fms-match")
    return response.strip().lower().startswith("yes")


def evaluate_fms_matching(service: LLMService, dataset: ERDataset) -> float:
    """Test-split F1 of bare prompting."""
    y_true = [pair.label for pair in dataset.test]
    y_pred = [int(fms_match_pair(service, pair)) for pair in dataset.test]
    return f1_score(y_true, y_pred)


def fms_impute_record(service: LLMService, record: dict) -> str:
    """One bare imputation prompt; returns the predicted manufacturer."""
    visible = {k: v for k, v in record.items() if v is not None}
    prompt = (
        "manufacturer?\n"
        "Product: " + json.dumps(visible, sort_keys=True, default=str)
    )
    response = service.complete(prompt, purpose="fms-impute")
    return response.strip().split(".")[0].strip()


def evaluate_fms_imputation(
    service: LLMService, records: list[ImputationRecord]
) -> float:
    """Test accuracy of bare imputation prompting.

    The bare prompt has no validation and no retry: "Unknown" and
    hallucinated answers count as errors, as in the FMs protocol.
    """
    y_true = [record.manufacturer for record in records]
    y_pred = [fms_impute_record(service, record.visible()) for record in records]
    return accuracy(y_true, y_pred)
