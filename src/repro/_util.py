"""Shared utilities: deterministic hashing and seeded randomness.

Everything in this reproduction must be deterministic given a seed.  Python's
built-in :func:`hash` is salted per process, so code that needs a stable
string hash (for instance the simulated LLM deciding whether it "knows" a
fact) must use :func:`stable_hash` instead.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

__all__ = [
    "stable_hash",
    "stable_unit",
    "stable_choice",
    "seeded_rng",
    "chunked",
]


def stable_hash(*parts: object, bits: int = 64) -> int:
    """Return a deterministic non-negative integer hash of ``parts``.

    The hash is stable across processes and Python versions (unlike the
    built-in :func:`hash`).  Parts are joined with an unlikely separator so
    that ``stable_hash("ab", "c") != stable_hash("a", "bc")``.
    """
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=bits // 8)
    return int.from_bytes(digest.digest(), "big")


def stable_unit(*parts: object) -> float:
    """Return a deterministic pseudo-uniform float in ``[0, 1)`` for ``parts``.

    Used to make per-item stochastic decisions (e.g. "does the simulated LLM
    err on this record?") that are reproducible and independent of call order.
    """
    return stable_hash(*parts) / float(1 << 64)


def stable_choice(options: Sequence[T], *parts: object) -> T:
    """Deterministically pick one of ``options`` keyed by ``parts``."""
    if not options:
        raise ValueError("stable_choice requires at least one option")
    return options[stable_hash(*parts) % len(options)]


def seeded_rng(seed: int | str) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    String seeds are hashed with :func:`stable_hash` first so that the same
    string always yields the same stream regardless of interpreter hash
    randomisation.
    """
    if isinstance(seed, str):
        seed = stable_hash(seed)
    return random.Random(seed)


def chunked(items: Iterable[T], size: int) -> Iterable[list[T]]:
    """Yield successive lists of at most ``size`` items from ``items``."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    batch: list[T] = []
    for item in items:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch
