"""Progress events: a flat, deterministic job feed derived from trace spans.

The serving layer (:mod:`repro.serve`) reports job progress through
``GET /jobs/<id>``, and what it reports is *derived*, never collected: a
run's :class:`~repro.obs.trace.Tracer` span tree is folded into a flat
list of per-phase events after the fact.  That inherits every determinism
rule the golden-trace suite already pins — logical timestamps from the
virtual clock, canonical call attribution, chunk spans without racy
latency — so the progress feed for a job is byte-identical at any worker
count and across resumes, which is what lets the API golden tests pin it.

Events are plain dicts with monotonically increasing ``seq`` numbers and
**no wall-clock timestamps**: ``at``/``elapsed`` are virtual-clock values.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.trace import Span

__all__ = ["progress_events", "progress_json"]

_AT_DIGITS = 9  # matches trace export rounding (platform-stable goldens)


def _round(value: float) -> float:
    return round(float(value), _AT_DIGITS)


def _phase_event(phase: Span) -> dict[str, Any]:
    llm_calls = 0
    cached = 0
    cost = 0.0
    chunks = 0
    quarantined = 0
    degraded = 0
    module_types: list[str] = []
    stack = list(phase.children)
    while stack:
        span = stack.pop()
        stack.extend(span.children)
        if span.kind == "llm_call":
            llm_calls += 1
            if span.attributes.get("cached"):
                cached += 1
            cost += float(span.attributes.get("cost", 0.0))
        elif span.kind in ("chunk", "shard"):
            chunks += 1
            quarantined += int(span.attributes.get("quarantined", 0))
            degraded += int(span.attributes.get("degraded", 0))
        elif span.kind == "module":
            module_types.append(str(span.attributes.get("module_type", "")))
            quarantined += int(span.attributes.get("quarantined", 0))
            degraded += int(span.attributes.get("degraded", 0))
    return {
        "event": "phase",
        "name": phase.name,
        "kind": str(phase.attributes.get("operator_kind", "")),
        "module": module_types[0] if module_types else "",
        "at": _round(phase.end),
        "elapsed": _round(phase.duration),
        "llm_calls": llm_calls,
        "cached_calls": cached,
        "cost": round(cost, 10),
        "chunks": chunks,
        "quarantined": quarantined,
        "degraded": degraded,
    }


def progress_events(roots: "list[Span] | Span") -> list[dict[str, Any]]:
    """Fold span trees into a flat progress feed.

    One ``run:start`` / ``run:end`` pair per ``run`` root, one ``phase``
    event per operator (chunk/module/llm_call details aggregated into
    counts), and one ``event`` entry per point-in-time span (torn tails,
    resume boundaries).  ``seq`` is a plain 0-based counter over the
    emitted list — the only ordering a polling client needs.
    """
    if isinstance(roots, Span):
        roots = [roots]
    events: list[dict[str, Any]] = []

    def emit(payload: dict[str, Any]) -> None:
        payload["seq"] = len(events)
        events.append(payload)

    for root in roots:
        if root.kind != "run":
            continue
        emit(
            {
                "event": "run:start",
                "name": root.name,
                "at": _round(root.start),
            }
        )
        phases = 0
        for child in root.children:
            if child.kind == "phase":
                phases += 1
                emit(_phase_event(child))
            elif child.kind == "event":
                emit(
                    {
                        "event": f"note:{child.name}",
                        "at": _round(child.start),
                        **{
                            key: value
                            for key, value in sorted(child.attributes.items())
                        },
                    }
                )
        emit(
            {
                "event": "run:end",
                "name": root.name,
                "at": _round(root.end),
                "elapsed": _round(root.duration),
                "phases": phases,
            }
        )
    return events


def progress_json(roots: "list[Span] | Span") -> str:
    """The progress feed as canonical JSON (sorted keys, no whitespace)."""
    return json.dumps(
        progress_events(roots),
        ensure_ascii=False,
        sort_keys=True,
        separators=(",", ":"),
    )
