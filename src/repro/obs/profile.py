"""The run profiler: per-module cost/provenance accounting for a run.

A :class:`RunProfile` is attached to every
:class:`~repro.core.compiler.plan.RunReport` (``report.profile``): one
:class:`ProfileRow` per operator, derived from that operator's
canonicalized ledger slice, breaking down how its answers were produced
(provider / exact cache / near-duplicate / distilled), what they cost,
and what the resilience layer absorbed (retries, fallbacks, failures,
quarantined records).

The profile is an exact decomposition of the run's
:class:`~repro.core.optimizer.cost.CostSnapshot`: summing the rows
reproduces the snapshot's totals field for field
(:meth:`RunProfile.reconciles_with`), which the golden suite asserts on
every demo app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.llm.cache import (
    PROVENANCE_CACHE_EXACT,
    PROVENANCE_CACHE_NEAR,
    PROVENANCE_DISTILLED,
)
from repro.resilience.policy import OUTCOME_FALLBACK

__all__ = ["ProfileRow", "RunProfile", "profile_records"]

_COLUMNS = (
    ("module", 24),
    ("calls", 6),
    ("provider", 9),
    ("exact", 6),
    ("near", 5),
    ("distilled", 9),
    ("cost", 10),
    ("retries", 8),
    ("failed", 7),
    ("quarantined", 12),
)


@dataclass(frozen=True)
class ProfileRow:
    """What one module spent and absorbed during a run."""

    module: str
    calls: int = 0  # every ledger record the operator produced
    provider_calls: int = 0  # paid, successful provider answers
    cache_exact: int = 0
    cache_near: int = 0
    distilled: int = 0
    cost: float = 0.0
    latency_seconds: float = 0.0
    #: virtual latency attributable to *provider-path* records only (not
    #: cached, any outcome).  ``latency_seconds`` is the all-provenance
    #: total; the split keeps distilled local-model time out of the
    #: provider time the autotune cost models fit per-call rates from.
    provider_seconds: float = 0.0
    #: virtual latency of distilled local-model answers (provenance
    #: ``distilled``), surfaced under its own key rather than folded into
    #: provider time.
    distilled_seconds: float = 0.0
    retries: int = 0
    fallbacks: int = 0
    failures: int = 0
    quarantined: int = 0

    @property
    def cached_calls(self) -> int:
        """All zero-cost answers (exact + near + distilled)."""
        return self.cache_exact + self.cache_near + self.distilled

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict with cost fields normalized (rounded)."""
        return {
            "module": self.module,
            "calls": self.calls,
            "provider_calls": self.provider_calls,
            "cache_exact": self.cache_exact,
            "cache_near": self.cache_near,
            "distilled": self.distilled,
            "cost": round(self.cost, 10),
            "latency_seconds": round(self.latency_seconds, 9),
            "provider_seconds": round(self.provider_seconds, 9),
            "distilled_seconds": round(self.distilled_seconds, 9),
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "failures": self.failures,
            "quarantined": self.quarantined,
        }


def profile_records(
    module: str, records: Iterable[Any], quarantined: int = 0
) -> ProfileRow:
    """Aggregate one operator's ledger slice into a :class:`ProfileRow`.

    ``records`` are :class:`~repro.llm.service.CallRecord` objects (any
    object with the same fields works).  The slice must already be
    canonicalized — the executor profiles after the scheduler's merge.
    """
    calls = provider = exact = near = distilled = 0
    retries = fallbacks = failures = 0
    cost = latency = provider_seconds = distilled_seconds = 0.0
    for record in records:
        calls += 1
        cost += record.cost
        latency += record.latency_seconds
        retries += record.retries
        if record.outcome == OUTCOME_FALLBACK:
            fallbacks += 1
        if not record.cached:
            provider_seconds += record.latency_seconds
        elif record.provenance == PROVENANCE_DISTILLED:
            distilled_seconds += record.latency_seconds
        if not record.succeeded:
            failures += 1
        elif record.cached:
            if record.provenance == PROVENANCE_CACHE_NEAR:
                near += 1
            elif record.provenance == PROVENANCE_DISTILLED:
                distilled += 1
            else:
                exact += 1
        else:
            provider += 1
    return ProfileRow(
        module=module,
        calls=calls,
        provider_calls=provider,
        cache_exact=exact,
        cache_near=near,
        distilled=distilled,
        cost=cost,
        latency_seconds=latency,
        provider_seconds=provider_seconds,
        distilled_seconds=distilled_seconds,
        retries=retries,
        fallbacks=fallbacks,
        failures=failures,
        quarantined=quarantined,
    )


@dataclass
class RunProfile:
    """Per-module profile of one plan execution."""

    rows: list[ProfileRow] = field(default_factory=list)

    def row(self, module: str) -> ProfileRow | None:
        """The row for ``module``, if present."""
        for row in self.rows:
            if row.module == module:
                return row
        return None

    def totals(self) -> ProfileRow:
        """Column sums across every row."""
        return ProfileRow(
            module="TOTAL",
            calls=sum(r.calls for r in self.rows),
            provider_calls=sum(r.provider_calls for r in self.rows),
            cache_exact=sum(r.cache_exact for r in self.rows),
            cache_near=sum(r.cache_near for r in self.rows),
            distilled=sum(r.distilled for r in self.rows),
            # float(): summing zero rows yields int 0, which would render
            # differently from 0.0 in canonical report JSON.
            cost=float(sum(r.cost for r in self.rows)),
            latency_seconds=float(sum(r.latency_seconds for r in self.rows)),
            provider_seconds=float(sum(r.provider_seconds for r in self.rows)),
            distilled_seconds=float(sum(r.distilled_seconds for r in self.rows)),
            retries=sum(r.retries for r in self.rows),
            fallbacks=sum(r.fallbacks for r in self.rows),
            failures=sum(r.failures for r in self.rows),
            quarantined=sum(r.quarantined for r in self.rows),
        )

    def reconciles_with(self, cost: Any) -> bool:
        """Whether the rows decompose ``cost`` (a ``CostSnapshot``) exactly.

        Served/cached/near/distilled/retry/fallback/failure counts must
        match integer-exactly; dollar cost and virtual latency to within
        float-sum tolerance.
        """
        totals = self.totals()
        return (
            totals.provider_calls == cost.served_calls
            and totals.cached_calls == cost.cached_calls
            and totals.cache_near == cost.near_hits
            and totals.distilled == cost.distilled_calls
            and totals.retries == cost.retries
            and totals.fallbacks == cost.fallback_calls
            and totals.failures == cost.failed_calls
            and abs(totals.cost - cost.cost) < 1e-9
            and abs(totals.latency_seconds - cost.latency_seconds) < 1e-6
            and abs(totals.provider_seconds - cost.provider_seconds) < 1e-6
            and abs(totals.distilled_seconds - cost.distilled_seconds) < 1e-6
        )

    def to_dict(self) -> list[dict[str, Any]]:
        """Canonical row dicts (cost fields normalized)."""
        return [row.to_dict() for row in self.rows]

    def to_table(self, include_totals: bool = True) -> str:
        """Fixed-width per-module table (the UI's profile panel body)."""
        header = " ".join(title.rjust(width) for title, width in _COLUMNS)
        lines = [header, "-" * len(header)]
        rows = list(self.rows)
        if include_totals and len(rows) > 1:
            rows.append(self.totals())
        for row in rows:
            values = (
                row.module[: _COLUMNS[0][1]],
                row.calls,
                row.provider_calls,
                row.cache_exact,
                row.cache_near,
                row.distilled,
                f"${row.cost:.4f}",
                row.retries,
                row.failures,
                row.quarantined,
            )
            lines.append(
                " ".join(
                    str(value).rjust(width)
                    for value, (_, width) in zip(values, _COLUMNS)
                )
            )
        return "\n".join(lines)
