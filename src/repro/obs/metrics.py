"""The metrics registry: counters, gauges and fixed-bucket histograms.

Every subsystem with something to report — the LLM service, the prompt
cache, the distillation router, the circuit breakers, the scheduler, the
modules — publishes into one :class:`MetricsRegistry` owned by the
:class:`~repro.obs.Observability` hub.  Design constraints:

- **thread safe** — workers publish concurrently; one registry lock guards
  every mutation;
- **merge is order-independent** — counters and histogram buckets are sums
  (commutative), gauges merge by maximum, so folding per-worker registries
  together yields the same result in any order (property-tested);
- **fixed bucket boundaries** — histograms declare their boundaries at
  first use and reject conflicting redeclarations, so bucket counts are
  comparable across runs and mergeable across workers.

Metric values that count racy events (e.g. ``llm.coalesced``) are real
observations about a particular execution and are *not* covered by the
determinism contract; everything derived from the canonical ledger is.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TOKEN_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Seconds buckets for virtual-latency distributions.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)
#: Token-count buckets for prompt/completion size distributions.
DEFAULT_TOKEN_BUCKETS = (8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)
#: Record-count buckets for chunk/batch size distributions.
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing sum (ints or floats)."""

    kind = "counter"

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value; merges by maximum (order-independent)."""

    kind = "gauge"

    def __init__(self, name: str, lock: threading.RLock):
        self.name = name
        self._lock = lock
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = value

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Observation distribution over fixed, sorted bucket boundaries.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    counts overflow observations greater than every boundary.  Bucket
    counts always sum to the observation count (property-tested).
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable[float], lock: threading.RLock):
        self.name = name
        self._lock = lock
        self.bounds = tuple(float(bound) for bound in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {self.name!r} bounds must be strictly increasing"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += value

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class _NullMetric:
    """Shared sink handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Named metrics with get-or-create accessors and commutative merging."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.RLock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is not None and metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, requested as {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        with self._lock:
            metric = self._get(name, "counter")
            if metric is None:
                metric = self._metrics[name] = Counter(name, self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        with self._lock:
            metric = self._get(name, "gauge")
            if metric is None:
                metric = self._metrics[name] = Gauge(name, self._lock)
            return metric

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        """Get or create a histogram; redeclaring with new bounds raises."""
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        bounds = tuple(float(bound) for bound in bounds)
        with self._lock:
            metric = self._get(name, "histogram")
            if metric is None:
                metric = self._metrics[name] = Histogram(name, bounds, self._lock)
            elif metric.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} already declared with bounds "
                    f"{metric.bounds}, got {bounds}"
                )
            return metric

    def value(self, name: str, default: float = 0) -> float:
        """Convenience: a counter/gauge's current value (0 when absent)."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def as_dict(self) -> dict[str, dict]:
        """Every metric, sorted by name, as plain dicts."""
        with self._lock:
            return {
                name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (commutative per metric).

        Counters and histogram buckets add; gauges take the maximum.
        Conflicting metric kinds or histogram bounds raise.
        """
        with other._lock:
            snapshot = dict(other._metrics)
        for name, metric in snapshot.items():
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name)
                with self._lock:
                    mine.value = max(mine.value, metric.value)
            else:
                mine = self.histogram(name, metric.bounds)
                with self._lock:
                    for index, count in enumerate(metric.counts):
                        mine.counts[index] += count
                    mine.total += metric.total
                    mine.sum += metric.sum

    def to_text(self) -> str:
        """Readable dump, one metric per line."""
        lines = []
        for name, payload in self.as_dict().items():
            if payload["kind"] == "histogram":
                lines.append(
                    f"{name}: histogram total={payload['total']} "
                    f"sum={payload['sum']:.6g} counts={payload['counts']}"
                )
            else:
                lines.append(f"{name}: {payload['kind']} value={payload['value']:g}")
        return "\n".join(lines)
