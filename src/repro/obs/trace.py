"""Deterministic structured tracing: hierarchical spans over the virtual clock.

A trace is a tree of :class:`Span` objects describing what one run did:

    run > phase > module > {chunk, llm_call}

- ``run`` — one plan execution (:meth:`PhysicalPlan.execute`);
- ``phase`` — one operator evaluation, in plan order;
- ``module`` — the bound module's work inside its phase;
- ``chunk`` — one record chunk under the parallel scheduler;
- ``llm_call`` — one ledger record, derived from the **canonicalized**
  ledger slice of the operator.

Determinism rules (the golden-trace suite pins these):

1. **Logical timestamps only.**  Span ``start``/``end`` come from the
   resilience layer's :class:`~repro.resilience.clock.VirtualClock`, never
   from wall time, so two runs of the same plan produce identical times.
2. **Canonical call attribution.**  ``llm_call`` spans are not recorded as
   calls happen — request coalescing makes the winning thread racy — but
   derived from the canonicalized ledger slice after the operator merges,
   and attached to the *module* span.  Their order and provenance are then
   deterministic by the scheduler's existing ledger contract.
3. **Chunk spans carry structure, not latency.**  Which chunk pays a
   coalesced provider call's latency is racy, so chunk spans record the
   operator-entry timestamp and deterministic counts (records, outputs,
   quarantined, degraded) rather than per-chunk durations.

With these rules a trace exported at ``workers=1`` is byte-identical to
one exported at ``workers=8``.  Traces round-trip through JSONL (one span
per line, parent-linked by deterministic path ids).
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "SPAN_KINDS",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "walk_spans",
    "span_tree_problems",
    "provenance_counts",
]

#: The span kinds, outermost first.  ``shard`` is the streaming executor's
#: analogue of ``chunk`` (one durable work-queue shard, pinned to the
#: operator-entry timestamp); ``event`` marks point-in-time occurrences
#: such as a journal torn-tail truncation.
SPAN_KINDS = ("run", "phase", "module", "chunk", "shard", "llm_call", "event")

#: Float attribute names normalized on export (they are deterministic, but
#: rounding keeps golden fixtures readable and platform-stable).
_ROUNDED_FIELDS = {"cost": 10, "latency_seconds": 9, "start": 9, "end": 9}


@dataclass
class Span:
    """One node of a trace tree."""

    name: str
    kind: str
    start: float = 0.0
    end: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    @property
    def duration(self) -> float:
        """Logical duration in virtual seconds."""
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """This span alone (no children) as a plain dict."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, _ROUNDED_FIELDS["start"]),
            "end": round(self.end, _ROUNDED_FIELDS["end"]),
            "attributes": {
                key: (
                    round(value, _ROUNDED_FIELDS[key])
                    if key in _ROUNDED_FIELDS and isinstance(value, float)
                    else value
                )
                for key, value in sorted(self.attributes.items())
            },
        }


class _NullSpan:
    """The no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    @property
    def attributes(self) -> dict[str, Any]:
        return {}


NULL_SPAN = _NullSpan()


def walk_spans(roots: "list[Span] | Span") -> Iterator[tuple[Span, Span | None]]:
    """Yield ``(span, parent)`` pairs depth-first over one or more trees."""
    stack: list[tuple[Span, Span | None]]
    if isinstance(roots, Span):
        stack = [(roots, None)]
    else:
        stack = [(root, None) for root in reversed(roots)]
    while stack:
        span, parent = stack.pop()
        yield span, parent
        for child in reversed(span.children):
            stack.append((child, span))


def span_tree_problems(root: Span) -> list[str]:
    """Well-formedness violations of one span tree (empty list = valid).

    Checks the invariants the property suite pins: every interval is
    ordered (``end >= start``), every child's interval nests inside its
    parent's, and every kind is known.
    """
    problems: list[str] = []
    for span, parent in walk_spans(root):
        if span.kind not in SPAN_KINDS:
            problems.append(f"{span.name}: unknown kind {span.kind!r}")
        if span.end < span.start:
            problems.append(
                f"{span.name}: end {span.end} precedes start {span.start}"
            )
        if parent is not None and (
            span.start < parent.start or span.end > parent.end
        ):
            problems.append(
                f"{span.name}: interval [{span.start}, {span.end}] escapes "
                f"parent {parent.name} [{parent.start}, {parent.end}]"
            )
    return problems


def provenance_counts(roots: "list[Span] | Span") -> dict[str, int]:
    """Count ``llm_call`` spans per provenance attribute (golden assertions)."""
    counts: dict[str, int] = {}
    for span, _ in walk_spans(roots):
        if span.kind == "llm_call":
            provenance = str(span.attributes.get("provenance", "unknown"))
            counts[provenance] = counts.get(provenance, 0) + 1
    return dict(sorted(counts.items()))


class Tracer:
    """Thread-safe span collector with a coordinator-thread span stack.

    The plan executor (always a single coordinating thread) opens
    ``run``/``phase``/``module`` spans via :meth:`span`; the scheduler and
    the executor append leaf spans under the innermost open span via
    :meth:`add_span`.  Worker threads never push onto the stack — their
    work is attributed deterministically after the chunk-order merge, which
    is what keeps traces byte-identical at any worker count.

    Disabled tracers (``enabled=False``) hand out a shared null span and
    allocate nothing, so the observability path is zero-cost when off.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._lock = threading.RLock()

    # -- recording ---------------------------------------------------------------

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        with self._lock:
            return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self, name: str, kind: str, clock: Any = None, **attributes: Any
    ) -> Iterator[Span | _NullSpan]:
        """Open a span; ``start``/``end`` are read from ``clock.now``.

        ``clock`` is any object with a ``now`` attribute (a
        :class:`~repro.resilience.clock.VirtualClock`); without one the
        span keeps logical time zero.
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        now = float(clock.now) if clock is not None else 0.0
        span = Span(name=name, kind=kind, start=now, end=now, attributes=attributes)
        with self._lock:
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
            self._stack.append(span)
        try:
            yield span
        finally:
            span.end = float(clock.now) if clock is not None else span.start
            with self._lock:
                if self._stack and self._stack[-1] is span:
                    self._stack.pop()

    def add_span(
        self,
        name: str,
        kind: str,
        start: float = 0.0,
        end: float | None = None,
        **attributes: Any,
    ) -> Span | _NullSpan:
        """Append a closed leaf span under the innermost open span."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            name=name,
            kind=kind,
            start=start,
            end=start if end is None else end,
            attributes=attributes,
        )
        with self._lock:
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        return span

    def clear(self) -> None:
        """Drop all finished spans (open spans stay on the stack)."""
        with self._lock:
            self.roots = [span for span in self._stack[:1]]
            if not self._stack:
                self.roots = []

    def merge(self, other: "Tracer") -> None:
        """Fold another collector's root spans into this one.

        Order-independent: merged roots are kept sorted by a deterministic
        key, so ``a.merge(b)`` and ``b.merge(a)`` produce identical
        collectors — the property the per-worker merge tests pin.
        """
        with self._lock, other._lock:
            self.roots.extend(other.roots)
            self.roots.sort(key=_merge_key)

    # -- export / import ----------------------------------------------------------

    def to_records(self) -> list[dict[str, Any]]:
        """Flatten all root spans to parent-linked dict records.

        Span ids are deterministic tree paths (``"0"``, ``"0.2"``,
        ``"0.2.1"``), so two identical trees export identical records.
        """
        with self._lock:
            roots = list(self.roots)
        records: list[dict[str, Any]] = []

        def visit(span: Span, span_id: str, parent_id: str | None) -> None:
            record = span.to_dict()
            record["span_id"] = span_id
            record["parent_id"] = parent_id
            records.append(record)
            for index, child in enumerate(span.children):
                visit(child, f"{span_id}.{index}", span_id)

        for index, root in enumerate(roots):
            visit(root, str(index), None)
        return records

    def export_jsonl(self, path: str | Path) -> int:
        """Write one span per line; returns the number of spans written."""
        records = self.to_records()
        text = "".join(
            json.dumps(record, sort_keys=True, ensure_ascii=False) + "\n"
            for record in records
        )
        Path(path).write_text(text, encoding="utf-8")
        return len(records)

    @staticmethod
    def from_records(records: list[dict[str, Any]]) -> list[Span]:
        """Rebuild span trees from :meth:`to_records` output."""
        by_id: dict[str, Span] = {}
        roots: list[Span] = []
        for record in records:
            span = Span(
                name=str(record["name"]),
                kind=str(record["kind"]),
                start=float(record["start"]),
                end=float(record["end"]),
                attributes=dict(record.get("attributes", {})),
            )
            by_id[str(record["span_id"])] = span
            parent_id = record.get("parent_id")
            if parent_id is None:
                roots.append(span)
            else:
                parent = by_id.get(str(parent_id))
                if parent is None:
                    raise ValueError(
                        f"span {record['span_id']} arrives before its parent "
                        f"{parent_id}"
                    )
                parent.children.append(span)
        return roots

    @staticmethod
    def load_jsonl(path: str | Path) -> list[Span]:
        """Read span trees back from a JSONL export."""
        records = [
            json.loads(line)
            for line in Path(path).read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        return Tracer.from_records(records)


def _merge_key(span: Span) -> tuple:
    return (
        span.start,
        span.end,
        span.kind,
        span.name,
        json.dumps(span.attributes, sort_keys=True, default=repr),
    )
