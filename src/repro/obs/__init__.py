"""Observability for Lingua Manga runs: tracing, metrics and profiling.

The paper's optimizer and cost claims hinge on *seeing* what a pipeline
did — which module called the LLM, how often, at what cost, from which
cache tier.  This package is that substrate:

- :mod:`repro.obs.trace` — deterministic hierarchical spans
  (``run > phase > module > chunk > llm_call``) on the virtual clock,
  exportable to JSONL and byte-identical at any worker count;
- :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms that every subsystem publishes into;
- :mod:`repro.obs.profile` — the per-module run profiler attached to
  ``RunReport.profile``, reconciling exactly with ``CostSnapshot``.

Everything hangs off one :class:`Observability` hub::

    obs = Observability()
    system = LinguaManga(obs=obs)
    report = run_lingua_manga_er(system, dataset)
    print(report.profile.to_table())
    obs.tracer.export_jsonl("trace.jsonl")
    print(obs.metrics.to_text())

Observability is **off by default**: a system without an ``obs=`` makes
the exact same provider calls, writes the exact same ledger, and pays no
tracing overhead (null spans/metrics, nothing allocated).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TOKEN_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import ProfileRow, RunProfile, profile_records
from repro.obs.progress import progress_events, progress_json
from repro.obs.trace import (
    NULL_SPAN,
    SPAN_KINDS,
    Span,
    Tracer,
    provenance_counts,
    span_tree_problems,
    walk_spans,
)

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "SPAN_KINDS",
    "NULL_SPAN",
    "walk_spans",
    "span_tree_problems",
    "provenance_counts",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TOKEN_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "RunProfile",
    "ProfileRow",
    "profile_records",
    "progress_events",
    "progress_json",
]


class Observability:
    """One tracer + one metrics registry, shared by a whole system.

    Pass to :class:`~repro.core.runtime.system.LinguaManga` (or
    :meth:`LLMService.attach_obs`) to instrument every layer at once.
    ``trace=False`` / ``metrics=False`` disable a half independently —
    disabled halves hand out shared null objects and record nothing.
    """

    def __init__(self, trace: bool = True, metrics: bool = True):
        self.tracer = Tracer(enabled=trace)
        self.metrics = MetricsRegistry(enabled=metrics)

    @property
    def enabled(self) -> bool:
        """Whether any half is collecting."""
        return self.tracer.enabled or self.metrics.enabled

    def clear(self) -> None:
        """Drop collected spans (metrics registries are append-only)."""
        self.tracer.clear()
