"""Scalar MinHash / LSH kernels (the oracles the columnar kernels must match).

MinHash estimates Jaccard resemblance between shingle sets: for ``k``
random permutations of the shingle space, the probability that two sets
share a minimum is exactly their Jaccard similarity, so the fraction of
agreeing signature positions is an unbiased estimate with standard error
``sqrt(J * (1 - J) / k)`` (the bound the property suite checks against).

Permutations are the classic universal-hash family ``h(x) = (a*x + b) mod p``
with ``p = 2**31 - 1`` (Mersenne prime).  Because shingle ids and ``a`` are
both below ``2**31``, the product fits in 62 bits — numpy ``uint64``
arithmetic computes the identical residue, which is what makes the columnar
kernel in :mod:`repro.storage.columnar` *bitwise* equal to this scalar one
rather than merely approximately so.

LSH banding splits a ``k``-position signature into ``bands`` bands of
``rows`` rows; documents sharing any full band become candidate pairs.  The
no-false-negative guarantee the test suite locks is the pigeonhole form:
**a pair whose signatures disagree in fewer than ``bands`` positions always
shares at least one complete band** (fewer mismatches than bands means some
band holds none of them).  Band keys are blake2b digests over the band's
values packed little-endian ``uint32`` — a byte layout both the scalar and
columnar paths can produce identically.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro._util import stable_hash
from repro.text.shingle import SHINGLE_SPACE

__all__ = [
    "MINHASH_PRIME",
    "EMPTY_SLOT",
    "MinHashParams",
    "minhash_params",
    "minhash_signature",
    "estimate_jaccard",
    "band_key",
    "band_keys",
    "minhash_error_bound",
    "LSHIndex",
]

#: Modulus of the permutation family; equals :data:`~repro.text.shingle.SHINGLE_SPACE`.
MINHASH_PRIME = (1 << 31) - 1

#: Signature slot value for an *empty* shingle set.  Permutation outputs lie
#: in ``[0, MINHASH_PRIME)``, so the prime itself is an impossible minimum —
#: two empty documents agree everywhere (J = 1) and an empty vs non-empty
#: document agrees nowhere (J = 0), matching exact Jaccard's conventions.
EMPTY_SLOT = MINHASH_PRIME

assert SHINGLE_SPACE == MINHASH_PRIME


@dataclass(frozen=True)
class MinHashParams:
    """One seeded permutation family: ``h_i(x) = (a_i * x + b_i) mod p``."""

    a: tuple[int, ...]
    b: tuple[int, ...]
    seed: str

    @property
    def num_perm(self) -> int:
        return len(self.a)


def minhash_params(num_perm: int = 128, seed: str = "minhash-v1") -> MinHashParams:
    """Derive a deterministic permutation family from ``seed``.

    ``a_i`` is drawn from ``[1, p)`` (zero would collapse the permutation)
    and ``b_i`` from ``[0, p)``, both via :func:`repro._util.stable_hash`
    so the family is identical across processes and worker counts.
    """
    if num_perm <= 0:
        raise ValueError("num_perm must be positive")
    a = tuple(
        1 + stable_hash(seed, "a", i) % (MINHASH_PRIME - 1) for i in range(num_perm)
    )
    b = tuple(stable_hash(seed, "b", i) % MINHASH_PRIME for i in range(num_perm))
    return MinHashParams(a=a, b=b, seed=seed)


def minhash_signature(ids: tuple[int, ...], params: MinHashParams) -> tuple[int, ...]:
    """MinHash signature of one shingle-id set (scalar oracle).

    Empty sets get the all-:data:`EMPTY_SLOT` signature.
    """
    if not ids:
        return (EMPTY_SLOT,) * params.num_perm
    return tuple(
        min((a * x + b) % MINHASH_PRIME for x in ids)
        for a, b in zip(params.a, params.b)
    )


def estimate_jaccard(sig_a: tuple[int, ...], sig_b: tuple[int, ...]) -> float:
    """Fraction of agreeing signature positions — the MinHash estimate."""
    if len(sig_a) != len(sig_b):
        raise ValueError("signatures must have equal length")
    if not sig_a:
        return 0.0
    agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
    return agree / len(sig_a)


def minhash_error_bound(jaccard: float, num_perm: int, sigmas: float = 5.0) -> float:
    """Analytic deviation bound for the MinHash estimate at ``num_perm``.

    The estimate is a mean of ``num_perm`` Bernoulli(J) indicators, so its
    standard error is ``sqrt(J(1-J)/k)``; the property suite allows
    ``sigmas`` standard errors plus one quantisation step ``1/k``.
    """
    variance = max(jaccard * (1.0 - jaccard), 1e-12)
    return sigmas * (variance / num_perm) ** 0.5 + 1.0 / num_perm


def band_key(signature: tuple[int, ...], band_index: int, rows: int) -> str:
    """Bucket key of one LSH band: blake2b over the packed band values.

    The byte layout — 4-byte little-endian band index, then each band value
    as little-endian ``uint32`` — is chosen so a numpy ``.tobytes()`` over a
    ``<u4`` signature slice produces the identical digest input.
    """
    start = band_index * rows
    values = signature[start : start + rows]
    if len(values) != rows:
        raise ValueError(
            f"band {band_index} needs {rows} values, signature has {len(signature)}"
        )
    payload = struct.pack("<I", band_index) + struct.pack(f"<{rows}I", *values)
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def band_keys(signature: tuple[int, ...], bands: int, rows: int) -> list[str]:
    """All ``bands`` bucket keys of a signature (requires ``bands*rows == k``)."""
    if bands * rows != len(signature):
        raise ValueError(
            f"bands*rows must equal signature length ({bands}*{rows} != {len(signature)})"
        )
    return [band_key(signature, i, rows) for i in range(bands)]


class LSHIndex:
    """In-memory LSH candidate index: band key -> sorted doc keys.

    Candidate generation is order-insensitive by construction — buckets are
    sets and emitted pairs are globally sorted — which is what makes the
    dedup pipeline's output independent of corpus iteration order.
    """

    def __init__(self, bands: int, rows: int):
        if bands <= 0 or rows <= 0:
            raise ValueError("bands and rows must be positive")
        self.bands = bands
        self.rows = rows
        self._buckets: dict[str, set] = {}

    def add(self, doc_key, signature: tuple[int, ...]) -> None:
        """Index one document's signature under all its band keys."""
        for key in band_keys(signature, self.bands, self.rows):
            self._buckets.setdefault(key, set()).add(doc_key)

    def candidate_pairs(self) -> list[tuple]:
        """All distinct same-bucket pairs, globally sorted."""
        pairs: set[tuple] = set()
        for bucket in self._buckets.values():
            if len(bucket) < 2:
                continue
            members = sorted(bucket)
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    pairs.add((left, right))
        return sorted(pairs)
