"""Surface-statistic document quality heuristics (the cascade's cheap rung).

These rules are deliberately *knowledge-free*: they see casing, punctuation,
token shapes and repetition, but no vocabulary.  That gives them genuine
failure modes the corpus generator plants on purpose:

- pseudo-words (``brimflar``, ``gundkelb``) look perfectly word-shaped, so
  junk-stuffed documents sail past surface rules;
- marketing boilerplate is grammatical and well-punctuated;
- the ``OFFICIAL SPEC`` catalogue decoy is ALL-CAPS and digit-heavy, so the
  caps/digit penalties *wrongly* punish high-quality documents that carry it.

The LLM rung of the cascade (``QualityJudgmentSkill``) has the vocabulary
and the world knowledge to fix all three.  The cascade escalates documents
whose rule score falls inside the uncertain band; see
:mod:`repro.core.modules.cascade`.

All statistics are pure functions of the text, so the rule rung is
deterministic, chunk-safe and free.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "QualityStats",
    "quality_stats",
    "rule_quality_score",
]

_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+")
_WORD_RE = re.compile(r"[^\W\d_]+", re.UNICODE)
_CONSONANT_CLUSTER_RE = re.compile(r"[bcdfghjklmnpqrstvwxz]{4,}")


@dataclass(frozen=True)
class QualityStats:
    """Surface statistics of one document."""

    n_tokens: int
    n_sentences: int
    tokens_per_sentence: float  # run-on detector: missing periods merge sentences
    allcaps_ratio: float  # tokens (len > 2) that are fully upper-case
    digit_token_ratio: float  # tokens containing a digit
    distinct_sentence_ratio: float  # repeated sentences read as spam
    distinct_word_ratio: float  # distinct word forms / total word forms
    cluster_word_ratio: float  # words with 4+ consonant runs (gibberish tell)


def quality_stats(text: str) -> QualityStats:
    """Compute the surface statistics :func:`rule_quality_score` scores."""
    tokens = text.split()
    sentences = [s.strip() for s in _SENTENCE_SPLIT_RE.split(text.strip()) if s.strip()]
    words = [w.lower() for w in _WORD_RE.findall(text)]
    n_tokens = len(tokens)
    n_sentences = len(sentences)
    caps = sum(1 for t in tokens if len(t) > 2 and t.isupper())
    digits = sum(1 for t in tokens if any(c.isdigit() for c in t))
    clustered = sum(1 for w in words if _CONSONANT_CLUSTER_RE.search(w))
    return QualityStats(
        n_tokens=n_tokens,
        n_sentences=n_sentences,
        tokens_per_sentence=n_tokens / n_sentences if n_sentences else 0.0,
        allcaps_ratio=caps / n_tokens if n_tokens else 0.0,
        digit_token_ratio=digits / n_tokens if n_tokens else 0.0,
        distinct_sentence_ratio=(
            len(set(sentences)) / n_sentences if n_sentences else 0.0
        ),
        distinct_word_ratio=len(set(words)) / len(words) if words else 0.0,
        cluster_word_ratio=clustered / len(words) if words else 0.0,
    )


def rule_quality_score(text: str) -> float:
    """Knowledge-free quality score in ``[0, 1]`` (higher is better).

    Starts from 1.0 and subtracts penalties for surface defects.  The
    penalty weights are calibrated against the synthetic curation corpus
    but express generic judgements (run-on scrape damage, shouting, digit
    soup, repetition, consonant-cluster gibberish) any web-scale filter
    would apply.  Two planted blind spots matter for the cascade:

    - pseudo-words without heavy consonant runs pass every rule, and
      marketing boilerplate is surface-clean, so some low-quality
      documents score high (rule false *keeps*);
    - the ALL-CAPS catalogue decoy triggers the shouting penalty on
      genuinely high-quality documents (rule false *drops*).

    The LLM rung of the cascade corrects both.
    """
    stats = quality_stats(text)
    if stats.n_tokens == 0:
        return 0.0
    score = 1.0
    # Run-on text: dropped terminal punctuation merges sentences.
    score -= max(0.0, stats.tokens_per_sentence - 12.0) * 0.035
    # Shouting: the decoy trap — high-quality docs with an OFFICIAL SPEC
    # line get wrongly penalised here, which is the point.
    score -= 2.2 * stats.allcaps_ratio
    # Digit soup.
    score -= max(0.0, stats.digit_token_ratio - 0.18) * 1.2
    # Repeated sentences read as spam.
    score -= 1.6 * (1.0 - stats.distinct_sentence_ratio)
    # Heavy word-level repetition.
    score -= max(0.0, 0.45 - stats.distinct_word_ratio) * 1.5
    # Gibberish tell: long consonant runs.
    score -= 6.0 * stats.cluster_word_ratio
    return max(0.0, min(1.0, score))
