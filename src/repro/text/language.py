"""Language identification substrate.

Section 4.2 of the paper adds an "LLM language detection module" to fix
multilingual name extraction.  The simulated LLM's language-detection skill
is backed by this classical identifier: per-language stopword cues plus
character-class evidence.  It supports the five languages of the synthetic
corpus (English, Spanish, German, French and romanised Chinese).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.tokenize import word_tokenize

__all__ = ["LanguageGuess", "detect_language", "SUPPORTED_LANGUAGES"]

SUPPORTED_LANGUAGES = ("en", "es", "de", "fr", "zh")

_STOPWORDS: dict[str, set[str]] = {
    "en": {
        "the", "and", "of", "to", "in", "a", "is", "was", "that", "with",
        "for", "on", "said", "at", "by", "from", "yesterday", "today",
        "announced", "met", "will", "new", "report", "according",
    },
    "es": {
        "el", "la", "los", "las", "de", "del", "y", "en", "que", "un", "una",
        "con", "por", "para", "se", "su", "ayer", "hoy", "según", "dijo",
        "anunció", "reunión", "durante", "nueva", "informe",
    },
    "de": {
        "der", "die", "das", "und", "in", "den", "von", "zu", "mit", "ein",
        "eine", "im", "am", "für", "auf", "nach", "gestern", "heute", "laut",
        "sagte", "traf", "neue", "bericht", "wurde",
    },
    "fr": {
        "le", "la", "les", "de", "des", "et", "en", "un", "une", "du", "que",
        "avec", "pour", "dans", "au", "aux", "hier", "selon", "a", "déclaré",
        "rencontré", "nouvelle", "rapport", "été",
    },
    "zh": {
        "de", "le", "zai", "shi", "he", "yu", "zuotian", "jintian", "biaoshi",
        "xuanbu", "huijian", "genju", "baogao", "jinxing", "fabiao",
        "canjia", "juxing", "tan",
    },
}

_ACCENT_CUES: dict[str, set[str]] = {
    "es": set("ñáéíóúü¿¡"),
    "de": set("äöüß"),
    "fr": set("àâçèéêëîïôùûœ"),
}


@dataclass(frozen=True)
class LanguageGuess:
    """A detected language with a confidence in ``[0, 1]``."""

    language: str
    confidence: float
    scores: dict[str, float]


def detect_language(text: str) -> LanguageGuess:
    """Identify the dominant language of ``text``.

    Scores each supported language by stopword hits (weight 1.0 each) plus
    accented-character cues (weight 0.5 each), then normalises.  Ties and
    empty evidence default to English, matching the monolingual assumption
    the paper's first-draft pipeline makes.
    """
    tokens = [t.lower() for t in word_tokenize(text)]
    token_set = set(tokens)
    scores: dict[str, float] = {}
    for lang in SUPPORTED_LANGUAGES:
        hits = sum(1 for t in tokens if t in _STOPWORDS[lang])
        score = float(hits)
        for ch in text.lower():
            if ch in _ACCENT_CUES.get(lang, ()):
                score += 0.5
        scores[lang] = score
    # zh (pinyin) shares "de"/"he" with Romance stopword lists; require a
    # distinctive pinyin cue before awarding the shared tokens.
    distinctive_zh = {"zuotian", "jintian", "biaoshi", "xuanbu", "huijian",
                      "genju", "baogao", "jinxing", "fabiao", "canjia",
                      "juxing"}
    if not (token_set & distinctive_zh):
        scores["zh"] = 0.0
    total = sum(scores.values())
    if total == 0:
        return LanguageGuess("en", 0.0, scores)
    best = max(SUPPORTED_LANGUAGES, key=lambda lang: scores[lang])
    return LanguageGuess(best, scores[best] / total, scores)
