"""N-gram overlap scanning for downstream-task decontamination.

Decontamination asks: does a training document leak text from a held-out
evaluation set?  The standard mechanical scan (GPT-3 / Dolma style) indexes
every word ``n``-gram of the eval set and flags documents whose n-grams
collide.  Two scan granularities are used here:

- **hard** n-grams (default ``n=8``): a collision is near-certain leakage —
  an 8-gram shared by accident is vanishingly unlikely in this corpus.
- **soft** n-grams (default ``n=4``): short enough that *disguised* splices
  (variant rewrites of an eval item — ``St.`` vs ``Street``) still collide
  on the unmodified stretches, but also short enough to produce innocent
  collisions.  Soft hits are *evidence*, not verdicts.

The curation template turns this into a cascade: hard hit → contaminated
(no LLM call), no soft hits → clean (no LLM call), soft hits only →
borderline, adjudicated by the LLM, which can renormalise the disguise away
(see ``ContaminationJudgmentSkill``).

Scans run over :func:`repro.text.shingle.simple_canonical` text, so the
mechanical rungs stay knowledge-free; the knowledge lives in the LLM rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.text.shingle import simple_canonical

__all__ = [
    "OverlapProfile",
    "build_ngram_index",
    "ngram_set",
    "overlap_profile",
]


def ngram_set(text: str, n: int) -> set[tuple[str, ...]]:
    """All word ``n``-grams of ``text`` (already canonicalised by caller)."""
    tokens = text.split()
    if len(tokens) < n:
        return {tuple(tokens)} if tokens else set()
    return {tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)}


def build_ngram_index(
    items: Iterable[str], n: int
) -> dict[tuple[str, ...], int]:
    """Map each eval-set ``n``-gram to the index of the item containing it.

    Items are simple-canonicalised before shingling.  When two items share
    an n-gram the lowest item index wins — deterministic regardless of
    iteration order because items are processed in sequence and only
    missing keys are inserted.
    """
    index: dict[tuple[str, ...], int] = {}
    for item_index, item in enumerate(items):
        for gram in ngram_set(simple_canonical(item), n):
            index.setdefault(gram, item_index)
    return index


@dataclass(frozen=True)
class OverlapProfile:
    """Result of scanning one document against an eval-set n-gram index."""

    hard_hits: int  # hard n-grams of the doc found in the eval index
    soft_hits: int  # soft n-grams of the doc found in the eval index
    doc_ngrams: int  # total hard n-grams in the doc
    best_item: int  # eval item with the most soft collisions (-1: none)

    @property
    def hard_fraction(self) -> float:
        return self.hard_hits / self.doc_ngrams if self.doc_ngrams else 0.0


def overlap_profile(
    text: str,
    hard_index: Mapping[tuple[str, ...], int],
    soft_index: Mapping[tuple[str, ...], int],
    *,
    hard_n: int = 8,
    soft_n: int = 4,
) -> OverlapProfile:
    """Scan one document against pre-built hard and soft eval indexes."""
    canonical = simple_canonical(text)
    hard_grams = ngram_set(canonical, hard_n)
    soft_grams = ngram_set(canonical, soft_n)
    hard_hits = sum(1 for g in hard_grams if g in hard_index)
    votes: dict[int, int] = {}
    soft_hits = 0
    for gram in soft_grams:
        item = soft_index.get(gram)
        if item is not None:
            soft_hits += 1
            votes[item] = votes.get(item, 0) + 1
    best_item = -1
    if votes:
        # Highest vote count; ties broken by lowest item index so the
        # profile is independent of dict iteration order.
        best_item = min(votes, key=lambda item: (-votes[item], item))
    return OverlapProfile(
        hard_hits=hard_hits,
        soft_hits=soft_hits,
        doc_ngrams=len(hard_grams),
        best_item=best_item,
    )
