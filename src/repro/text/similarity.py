"""String similarity metrics, scalar and vectorized.

These metrics are the backbone of the classical entity-resolution baselines
(Magellan-style feature vectors, paper Table 1) and of the blocking stage of
the built-in entity-resolution template.  All functions return a similarity
in ``[0, 1]`` where ``1`` means identical.

Every metric exists in two forms: the original **scalar** implementation
(one pair per call, plain Python) and a **batch** ``*_many`` variant that
evaluates many pairs at once over the columnar encodings of
:mod:`repro.storage.columnar` (padded codepoint matrices for edit metrics,
token-id sets over a shared vocabulary for set metrics).  The scalar forms
are the semantic oracle: the batch forms are property-tested against them
(`tests/text/test_columnar_equivalence.py`) — bit-exact for the integer-
derived metrics (Levenshtein, the set family, Jaro/Jaro-Winkler,
Monge-Elkan) and within ``1e-12`` for the accumulation-order-sensitive ones
(cosine, TF-IDF cosine).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.storage.columnar import Vocabulary, pack_codepoints
from repro.text.tokenize import char_ngrams, word_tokenize

__all__ = [
    "levenshtein_distance",
    "levenshtein_within",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "overlap_coefficient",
    "dice_similarity",
    "cosine_similarity",
    "tfidf_cosine",
    "monge_elkan_similarity",
    "numeric_similarity",
    "TfIdfModel",
    "levenshtein_distance_many",
    "levenshtein_similarity_many",
    "jaro_similarity_many",
    "jaro_winkler_similarity_many",
    "jaccard_similarity_many",
    "overlap_coefficient_many",
    "dice_similarity_many",
    "cosine_similarity_many",
    "monge_elkan_similarity_many",
    "numeric_similarity_many",
]


def levenshtein_distance(a: str, b: str, max_distance: int | None = None) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1).

    With ``max_distance`` the computation runs *banded*: only the diagonal
    band of width ``2·max_distance + 1`` is filled, which is O(n·d) instead
    of O(n·m), and the scan exits early the moment every cell in a row
    exceeds the bound.  When the true distance is larger than
    ``max_distance`` the return value is ``max_distance + 1`` (a sentinel,
    not the exact distance) — callers asking "are these within d edits?"
    get their answer without paying for the full matrix.
    """
    if a == b:
        return 0
    if not a:
        return len(b) if max_distance is None else min(len(b), max_distance + 1)
    if not b:
        return len(a) if max_distance is None else min(len(a), max_distance + 1)
    if len(a) < len(b):
        a, b = b, a
    if max_distance is not None:
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        cutoff = max_distance + 1
        # Lengths differing by more than the bound cannot be within it.
        if len(a) - len(b) > max_distance:
            return cutoff
        infinity = cutoff + 1
        previous = [j if j <= max_distance else infinity for j in range(len(b) + 1)]
        for i, ca in enumerate(a, start=1):
            lo = max(1, i - max_distance)
            hi = min(len(b), i + max_distance)
            current = [infinity] * (len(b) + 1)
            if lo == 1:
                current[0] = i if i <= max_distance else infinity
            best = current[0] if lo == 1 else infinity
            for j in range(lo, hi + 1):
                cost = 0 if ca == b[j - 1] else 1
                value = min(
                    previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
                )
                current[j] = value
                if value < best:
                    best = value
            if best > max_distance:
                return cutoff  # early exit: the whole band exceeded the bound
            previous = current
        return previous[-1] if previous[-1] <= max_distance else cutoff
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_within(a: str, b: str, max_distance: int) -> bool:
    """Whether ``a`` and ``b`` are within ``max_distance`` edits (banded)."""
    return levenshtein_distance(a, b, max_distance=max_distance) <= max_distance


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a ``[0, 1]`` similarity."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / max(len(a), len(b))


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: order-tolerant character matching."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by a shared prefix of up to 4 chars."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _as_set(items: Iterable[str] | str) -> set[str]:
    if isinstance(items, str):
        return set(word_tokenize(items.lower()))
    return set(items)


def jaccard_similarity(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Jaccard over token sets (strings are word-tokenised, lowercased)."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def overlap_coefficient(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Szymkiewicz–Simpson overlap: intersection over the smaller set."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa or not sb:
        return 1.0 if sa == sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def dice_similarity(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Sørensen–Dice coefficient over token sets."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    return 2.0 * len(sa & sb) / (len(sa) + len(sb))


def cosine_similarity(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Cosine over token multiset counts."""
    ca = Counter(word_tokenize(a.lower()) if isinstance(a, str) else a)
    cb = Counter(word_tokenize(b.lower()) if isinstance(b, str) else b)
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    na = math.sqrt(sum(v * v for v in ca.values()))
    nb = math.sqrt(sum(v * v for v in cb.values()))
    return min(1.0, dot / (na * nb))


class TfIdfModel:
    """A TF-IDF weighting model fit on a corpus of strings.

    Used by the blocking stage of entity resolution: rare tokens (model
    numbers, distinctive words) should weigh more than ubiquitous ones.
    """

    def __init__(self, corpus: Sequence[str]):
        self._doc_count = len(corpus)
        df: Counter[str] = Counter()
        for doc in corpus:
            df.update(set(word_tokenize(doc.lower())))
        # Sorted insertion pins the vocabulary order: document-frequency ties
        # (and therefore idf ties) would otherwise surface in corpus/hash
        # iteration order, which differs across platforms and processes.
        self._idf = {
            token: math.log((1 + self._doc_count) / (1 + df[token])) + 1.0
            for token in sorted(df)
        }
        self._default_idf = math.log(1 + self._doc_count) + 1.0
        self._vector_cache: dict[str, dict[str, float]] = {}

    def vocabulary(self) -> tuple[str, ...]:
        """Fitted tokens in their pinned (sorted) order."""
        return tuple(self._idf)

    def idf(self, token: str) -> float:
        """Inverse document frequency of ``token`` (unseen tokens weigh most)."""
        return self._idf.get(token, self._default_idf)

    def _vector(self, text: str) -> dict[str, float]:
        """Memoized sparse vector (tokenize + weigh each text only once)."""
        cached = self._vector_cache.get(text)
        if cached is None:
            counts = Counter(word_tokenize(text.lower()))
            cached = {token: count * self.idf(token) for token, count in counts.items()}
            self._vector_cache[text] = cached
        return cached

    def vector(self, text: str) -> dict[str, float]:
        """Sparse TF-IDF vector of ``text`` (a fresh copy; safe to mutate)."""
        return dict(self._vector(text))

    def similarity(self, a: str, b: str) -> float:
        """TF-IDF-weighted cosine between two strings."""
        va, vb = self._vector(a), self._vector(b)
        if not va and not vb:
            return 1.0
        if not va or not vb:
            return 0.0
        dot = sum(va[t] * vb[t] for t in va.keys() & vb.keys())
        na = math.sqrt(sum(v * v for v in va.values()))
        nb = math.sqrt(sum(v * v for v in vb.values()))
        return min(1.0, dot / (na * nb))

    def similarity_many(
        self, a: Sequence[str], b: Sequence[str]
    ) -> np.ndarray:
        """Batched TF-IDF cosine over aligned pairs, as sparse array ops.

        Equivalent to ``[self.similarity(x, y) for x, y in zip(a, b)]``
        within ``1e-12`` (summation order differs from the scalar path).
        """
        if len(a) != len(b):
            raise ValueError("batch sides must have equal length")
        n = len(a)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        counts: dict[str, Counter] = {}
        for text in a:
            if text not in counts:
                counts[text] = Counter(word_tokenize(text.lower()))
        for text in b:
            if text not in counts:
                counts[text] = Counter(word_tokenize(text.lower()))
        vocab = Vocabulary(
            token for counter in counts.values() for token in counter
        )
        idf = np.fromiter(
            (self.idf(token) for token in vocab.tokens),
            dtype=np.float64,
            count=len(vocab),
        )
        keys_a, weights_a, rows_a = _weighted_rows(a, counts, vocab, idf)
        keys_b, weights_b, rows_b = _weighted_rows(b, counts, vocab, idf)
        _, ia, ib = np.intersect1d(
            keys_a, keys_b, assume_unique=True, return_indices=True
        )
        stride = max(len(vocab), 1)
        dot = np.bincount(
            (keys_a[ia] // stride).astype(np.int64),
            weights=weights_a[ia] * weights_b[ib],
            minlength=n,
        )
        norm_a = np.sqrt(np.bincount(rows_a, weights=weights_a**2, minlength=n))
        norm_b = np.sqrt(np.bincount(rows_b, weights=weights_b**2, minlength=n))
        empty_a = norm_a == 0.0
        empty_b = norm_b == 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.minimum(1.0, dot / (norm_a * norm_b))
        result = np.where(empty_a & empty_b, 1.0, result)
        result = np.where(empty_a ^ empty_b, 0.0, result)
        return result


def tfidf_cosine(a: str, b: str, corpus: Sequence[str]) -> float:
    """One-shot TF-IDF cosine for small corpora (fits a model each call)."""
    return TfIdfModel(corpus).similarity(a, b)


def monge_elkan_similarity(a: str, b: str) -> float:
    """Monge-Elkan: mean of best Jaro-Winkler match per token of ``a``.

    Note this measure is asymmetric by definition; the symmetric average of
    both directions is returned to keep the metric well behaved for features.
    """

    def directed(x: str, y: str) -> float:
        tx = word_tokenize(x.lower())
        ty = word_tokenize(y.lower())
        if not tx:
            return 1.0 if not ty else 0.0
        if not ty:
            return 0.0
        return sum(max(jaro_winkler_similarity(t, u) for u in ty) for t in tx) / len(tx)

    return (directed(a, b) + directed(b, a)) / 2.0


def numeric_similarity(a: float | None, b: float | None) -> float:
    """Relative closeness of two numbers in ``[0, 1]`` (``None`` -> 0 unless both)."""
    if a is None and b is None:
        return 1.0
    if a is None or b is None:
        return 0.0
    if a == b:
        return 1.0
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / denom)


def qgram_similarity(a: str, b: str, q: int = 3) -> float:
    """Jaccard over padded character q-grams (robust to small typos)."""
    ga, gb = set(char_ngrams(a.lower(), q)), set(char_ngrams(b.lower(), q))
    if not ga and not gb:
        return 1.0
    union = ga | gb
    if not union:
        return 1.0
    return len(ga & gb) / len(union)


__all__.append("qgram_similarity")
__all__.append("qgram_similarity_many")


# ---------------------------------------------------------------------------
# Vectorized batch variants
# ---------------------------------------------------------------------------
#
# Each ``*_many`` function evaluates one metric over aligned pair batches
# ``(a[i], b[i])`` and returns a float64 (or int64) array.  They exist for
# throughput only — semantics are defined by the scalar functions above.

_INF = np.int64(1) << 40


def _normalize_band(
    max_distance: "int | Sequence[int] | np.ndarray | None", n: int
) -> np.ndarray | None:
    if max_distance is None:
        return None
    band = np.broadcast_to(np.asarray(max_distance, dtype=np.int64), (n,)).copy()
    if (band < 0).any():
        raise ValueError("max_distance must be non-negative")
    return band


def _levenshtein_codes(
    codes_a: np.ndarray,
    len_a: np.ndarray,
    codes_b: np.ndarray,
    len_b: np.ndarray,
    band: np.ndarray | None,
) -> np.ndarray:
    """Vectorized edit-distance DP across a pair batch.

    One Python iteration per character row of the left side; the column
    recurrence (which is sequential in j) is closed in one vectorized pass
    with the running-minimum identity
    ``cur[j] = j + min_{k<=j}(t[k] - k)`` where ``t`` is the column-wise
    minimum of the deletion/substitution candidates.  With ``band`` the
    cells outside each pair's diagonal band stay at infinity and a pair
    whose whole row exceeds its budget is frozen (its final clamp to
    ``band + 1`` is already decided) — the batched analogue of the scalar
    banded early exit.
    """
    n, width_a = codes_a.shape
    width_b = codes_b.shape[1]
    # int32 state halves memory traffic; DP values are bounded by the
    # string widths except for the _INF32 band sentinel, which stays well
    # inside int32 range (and bands beyond it simply never mask a cell).
    inf32 = np.int32(1) << 30
    j = np.arange(width_b + 1, dtype=np.int32)
    prev = np.broadcast_to(j, (n, width_b + 1)).copy()
    if band is not None:
        band = np.minimum(band, np.int64(inf32)).astype(np.int32)
        prev[j[None, :] > band[:, None]] = inf32
    result = np.empty(n, dtype=np.int64)
    rows = np.arange(n, dtype=np.int64)  # original index of each live row
    alive = np.ones(n, dtype=bool)  # live = final value not yet emitted
    for i in range(1, width_a + 1):
        exhausted = alive & (len_a < i)
        if exhausted.any():
            result[rows[exhausted]] = prev[exhausted, len_b[exhausted]]
            alive &= ~exhausted
        if not alive.any():
            return result
        if len(alive) >= 2 * int(alive.sum()):
            # Over half the batch is settled (band exceeded or left string
            # exhausted): compact to the live rows — the batched analogue
            # of the scalar banded early exit.
            rows, codes_a, len_a, codes_b, len_b, prev = (
                rows[alive],
                codes_a[alive],
                len_a[alive],
                codes_b[alive],
                len_b[alive],
                prev[alive],
            )
            if band is not None:
                band = band[alive]
            alive = np.ones(len(rows), dtype=bool)
        cost = (codes_b != codes_a[:, i - 1][:, None]).astype(np.int32)
        tmp = np.minimum(prev[:, :-1] + cost, prev[:, 1:] + 1)
        head = np.full((len(rows), 1), i, dtype=np.int32)
        if band is not None:
            head[i > band, 0] = inf32
        t = np.concatenate([head, tmp], axis=1)
        cur = np.minimum.accumulate(t - j, axis=1) + j
        if band is not None:
            cur[np.abs(j[None, :] - np.int32(i)) > band[:, None]] = inf32
        # Rows no longer alive already emitted their result; their state
        # may churn harmlessly until the next compaction drops them.
        prev = cur
        if band is not None:
            frozen = alive & (cur.min(axis=1) > band)
            if frozen.any():
                # The freeze-iteration values are final, exactly as the
                # scalar band abandons with the current row's state.
                result[rows[frozen]] = cur[frozen, len_b[frozen]]
                alive &= ~frozen
            if not alive.any():
                return result
    result[rows[alive]] = prev[alive, len_b[alive]]
    return result


def levenshtein_distance_many(
    a: Sequence[str],
    b: Sequence[str],
    max_distance: "int | Sequence[int] | np.ndarray | None" = None,
) -> np.ndarray:
    """Batched :func:`levenshtein_distance` (``max_distance`` may be per-pair).

    Returns exact distances, clamped to ``max_distance + 1`` per pair when a
    band is given — identical to the scalar banded sentinel contract.
    """
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    band = _normalize_band(max_distance, len(a))
    if not len(a):
        return np.empty(0, dtype=np.int64)
    codes_a, len_a = pack_codepoints(a, fill=-1)
    codes_b, len_b = pack_codepoints(b, fill=-2)
    distance = _levenshtein_codes(codes_a, len_a, codes_b, len_b, band)
    if band is not None:
        distance = np.minimum(distance, band + 1)
    return distance


def levenshtein_similarity_many(a: Sequence[str], b: Sequence[str]) -> np.ndarray:
    """Batched :func:`levenshtein_similarity`."""
    distance = levenshtein_distance_many(a, b)
    len_a = np.fromiter((len(t) for t in a), dtype=np.int64, count=len(a))
    len_b = np.fromiter((len(t) for t in b), dtype=np.int64, count=len(b))
    longest = np.maximum(len_a, len_b)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = 1.0 - distance / longest
    return np.where(longest == 0, 1.0, result)


def _jaro_codes(
    codes_a: np.ndarray,
    len_a: np.ndarray,
    codes_b: np.ndarray,
    len_b: np.ndarray,
) -> np.ndarray:
    """Vectorized Jaro kernel (greedy window matching, then transpositions)."""
    n, width_a = codes_a.shape
    width_b = codes_b.shape[1]
    if width_a == 0 or width_b == 0:
        # A whole side of the batch is empty strings: no matches anywhere.
        return np.zeros(n, dtype=np.float64)
    window = np.maximum(np.maximum(len_a, len_b) // 2 - 1, 0)
    a_flags = np.zeros((n, width_a), dtype=bool)
    b_flags = np.zeros((n, width_b), dtype=bool)
    j = np.arange(width_b)
    for i in range(width_a):
        active = i < len_a
        if not active.any():
            break
        eligible = (
            active[:, None]
            & (j[None, :] >= (i - window)[:, None])
            & (j[None, :] < np.minimum(len_b, i + window + 1)[:, None])
            & ~b_flags
            & (codes_b == codes_a[:, i][:, None])
        )
        hit = eligible.any(axis=1)
        rows = np.nonzero(hit)[0]
        b_flags[rows, eligible.argmax(axis=1)[rows]] = True
        a_flags[rows, i] = True
    matches = a_flags.sum(axis=1)
    row_a, pos_a = np.nonzero(a_flags)
    row_b, pos_b = np.nonzero(b_flags)
    # nonzero() is row-major: both extractions list each pair's matched
    # characters in ascending position — exactly the scalar pairing order.
    mismatch = codes_a[row_a, pos_a] != codes_b[row_b, pos_b]
    transpositions = np.bincount(row_a[mismatch], minlength=n) // 2
    m = matches.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        jaro = (m / len_a + m / len_b + (m - transpositions) / m) / 3.0
    return np.where(matches == 0, 0.0, jaro)


def jaro_similarity_many(a: Sequence[str], b: Sequence[str]) -> np.ndarray:
    """Batched :func:`jaro_similarity`."""
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    if not len(a):
        return np.empty(0, dtype=np.float64)
    codes_a, len_a = pack_codepoints(a, fill=-1)
    codes_b, len_b = pack_codepoints(b, fill=-2)
    jaro = _jaro_codes(codes_a, len_a, codes_b, len_b)
    equal = np.fromiter((x == y for x, y in zip(a, b)), dtype=bool, count=len(a))
    return np.where(equal, 1.0, jaro)


def jaro_winkler_similarity_many(
    a: Sequence[str], b: Sequence[str], prefix_scale: float = 0.1
) -> np.ndarray:
    """Batched :func:`jaro_winkler_similarity`."""
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    if not len(a):
        return np.empty(0, dtype=np.float64)
    codes_a, len_a = pack_codepoints(a, fill=-1)
    codes_b, len_b = pack_codepoints(b, fill=-2)
    jaro = _jaro_codes(codes_a, len_a, codes_b, len_b)
    equal = np.fromiter((x == y for x, y in zip(a, b)), dtype=bool, count=len(a))
    jaro = np.where(equal, 1.0, jaro)
    depth = min(4, codes_a.shape[1], codes_b.shape[1])
    if depth:
        cols = np.arange(depth)
        leading = (
            (codes_a[:, :depth] == codes_b[:, :depth])
            & (cols[None, :] < len_a[:, None])
            & (cols[None, :] < len_b[:, None])
        )
        prefix = np.cumprod(leading, axis=1).sum(axis=1)
    else:
        prefix = np.zeros(len(len_a), dtype=np.int64)
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _cached_word_sets(
    items: Sequence["Iterable[str] | str"], cache: dict[str, frozenset]
) -> list[frozenset]:
    rows: list[frozenset] = []
    for item in items:
        if isinstance(item, str):
            row = cache.get(item)
            if row is None:
                row = frozenset(word_tokenize(item.lower()))
                cache[item] = row
            rows.append(row)
        else:
            rows.append(frozenset(item))
    return rows


def _set_rows_keys(
    rows: list[frozenset], vocab: Vocabulary, stride: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row token-id keys ``row * stride + id`` plus row sizes.

    Key order within a row is arbitrary (frozenset iteration):
    ``np.intersect1d`` sorts internally and every consumer derives only
    order-free quantities (sizes, intersection counts), so no per-row sort
    is spent here.
    """
    sizes = np.fromiter((len(row) for row in rows), dtype=np.int64, count=len(rows))
    row_ids = np.repeat(np.arange(len(rows), dtype=np.int64), sizes)
    lookup = vocab._ids
    ids = np.fromiter(
        (lookup[token] for row in rows for token in row),
        dtype=np.int64,
        count=int(sizes.sum()),
    )
    return row_ids * stride + ids, sizes, row_ids


def _set_pair_stats(
    a_rows: list[frozenset], b_rows: list[frozenset]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(|A|, |B|, |A ∩ B|)`` arrays for aligned set-row batches."""
    n = len(a_rows)
    vocab = Vocabulary(token for row in a_rows + b_rows for token in row)
    stride = max(len(vocab), 1)
    keys_a, sizes_a, _ = _set_rows_keys(a_rows, vocab, stride)
    keys_b, sizes_b, _ = _set_rows_keys(b_rows, vocab, stride)
    common = np.intersect1d(keys_a, keys_b, assume_unique=True)
    inter = np.bincount((common // stride).astype(np.int64), minlength=n)
    return sizes_a, sizes_b, inter


def word_set_stats(
    a: Sequence["Iterable[str] | str"], b: Sequence["Iterable[str] | str"]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared ``(|A|, |B|, |A ∩ B|)`` arrays for the word-set metrics.

    Jaccard, overlap, and Dice all reduce to these three arrays; compute
    them once per batch and pass ``stats=`` to each metric to avoid
    tokenizing and intersecting the same rows three times.
    """
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    if not len(a):
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    cache: dict[str, frozenset] = {}
    return _set_pair_stats(_cached_word_sets(a, cache), _cached_word_sets(b, cache))


def jaccard_similarity_many(
    a: Sequence["Iterable[str] | str"],
    b: Sequence["Iterable[str] | str"],
    stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Batched :func:`jaccard_similarity` (bit-exact)."""
    sa, sb, inter = word_set_stats(a, b) if stats is None else stats
    union = sa + sb - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        result = inter / union
    return np.where(union == 0, 1.0, result)


def overlap_coefficient_many(
    a: Sequence["Iterable[str] | str"],
    b: Sequence["Iterable[str] | str"],
    stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Batched :func:`overlap_coefficient` (bit-exact)."""
    sa, sb, inter = word_set_stats(a, b) if stats is None else stats
    smaller = np.minimum(sa, sb)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = inter / smaller
    result = np.where(smaller == 0, np.where(sa == sb, 1.0, 0.0), result)
    return result


def dice_similarity_many(
    a: Sequence["Iterable[str] | str"],
    b: Sequence["Iterable[str] | str"],
    stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Batched :func:`dice_similarity` (bit-exact)."""
    sa, sb, inter = word_set_stats(a, b) if stats is None else stats
    total = sa + sb
    with np.errstate(divide="ignore", invalid="ignore"):
        result = 2.0 * inter / total
    return np.where(total == 0, 1.0, result)


def qgram_similarity_many(a: Sequence[str], b: Sequence[str], q: int = 3) -> np.ndarray:
    """Batched :func:`qgram_similarity` (bit-exact)."""
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    if not len(a):
        return np.empty(0, dtype=np.float64)
    cache: dict[str, frozenset] = {}

    def grams(text: str) -> frozenset:
        row = cache.get(text)
        if row is None:
            row = frozenset(char_ngrams(text.lower(), q))
            cache[text] = row
        return row

    sa, sb, inter = _set_pair_stats([grams(t) for t in a], [grams(t) for t in b])
    union = sa + sb - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        result = inter / union
    return np.where(union == 0, 1.0, result)


def _weighted_rows(
    texts: Sequence[str],
    counts: dict[str, Counter],
    vocab: Vocabulary,
    idf: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sorted per-row ``row * |V| + id`` keys with TF-IDF weights."""
    stride = max(len(vocab), 1)
    keys: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    for i, text in enumerate(texts):
        counter = counts[text]
        if not counter:
            continue
        ids = np.sort(vocab.encode(list(counter)))
        tokens_sorted = [vocab.tokens[tid] for tid in ids]
        tf = np.fromiter(
            (counter[token] for token in tokens_sorted), dtype=np.float64, count=len(ids)
        )
        keys.append(i * stride + ids.astype(np.int64))
        weights.append(tf * idf[ids])
        rows.append(np.full(len(ids), i, dtype=np.int64))
    if not keys:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64), empty
    return np.concatenate(keys), np.concatenate(weights), np.concatenate(rows)


def cosine_similarity_many(
    a: Sequence["Iterable[str] | str"], b: Sequence["Iterable[str] | str"]
) -> np.ndarray:
    """Batched :func:`cosine_similarity` (within ``1e-12`` of scalar)."""
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    n = len(a)
    if not n:
        return np.empty(0, dtype=np.float64)
    cache: dict[str, Counter] = {}

    def multiset(item: "Iterable[str] | str") -> Counter:
        if isinstance(item, str):
            counter = cache.get(item)
            if counter is None:
                counter = Counter(word_tokenize(item.lower()))
                cache[item] = counter
            return counter
        return Counter(item)

    rows_a = [multiset(item) for item in a]
    rows_b = [multiset(item) for item in b]
    vocab = Vocabulary(token for row in rows_a + rows_b for token in row)
    stride = max(len(vocab), 1)

    def flatten(rows: list[Counter]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        keys: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        row_ids: list[np.ndarray] = []
        for i, counter in enumerate(rows):
            if not counter:
                continue
            ids = np.sort(vocab.encode(list(counter)))
            tf = np.fromiter(
                (counter[vocab.tokens[tid]] for tid in ids),
                dtype=np.float64,
                count=len(ids),
            )
            keys.append(i * stride + ids.astype(np.int64))
            weights.append(tf)
            row_ids.append(np.full(len(ids), i, dtype=np.int64))
        if not keys:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64), empty
        return np.concatenate(keys), np.concatenate(weights), np.concatenate(row_ids)

    keys_a, tf_a, rid_a = flatten(rows_a)
    keys_b, tf_b, rid_b = flatten(rows_b)
    _, ia, ib = np.intersect1d(keys_a, keys_b, assume_unique=True, return_indices=True)
    dot = np.bincount(
        (keys_a[ia] // stride).astype(np.int64), weights=tf_a[ia] * tf_b[ib], minlength=n
    )
    norm_a = np.sqrt(np.bincount(rid_a, weights=tf_a**2, minlength=n))
    norm_b = np.sqrt(np.bincount(rid_b, weights=tf_b**2, minlength=n))
    empty_a = norm_a == 0.0
    empty_b = norm_b == 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.minimum(1.0, dot / (norm_a * norm_b))
    result = np.where(empty_a & empty_b, 1.0, result)
    return np.where(empty_a ^ empty_b, 0.0, result)


def monge_elkan_similarity_many(a: Sequence[str], b: Sequence[str]) -> np.ndarray:
    """Batched :func:`monge_elkan_similarity` (bit-exact).

    Token pairs are deduplicated across the whole batch before the
    Jaro-Winkler kernel runs, so repeated attribute values cost nothing
    extra; per-token maxima and the directed means are folded with
    order-preserving segment reductions to match the scalar accumulation.
    """
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    n = len(a)
    if not n:
        return np.empty(0, dtype=np.float64)
    cache: dict[str, list[str]] = {}

    def tokens(text: str) -> list[str]:
        row = cache.get(text)
        if row is None:
            row = word_tokenize(text.lower())
            cache[text] = row
        return row

    rows_a = [tokens(t) for t in a]
    rows_b = [tokens(t) for t in b]
    vocab = Vocabulary(tok for row in rows_a + rows_b for tok in row)
    enc_a = [vocab.encode(row) for row in rows_a]
    enc_b = [vocab.encode(row) for row in rows_b]
    forward, table = _directed_monge_elkan(enc_a, enc_b, vocab, return_table=True)
    backward = _directed_monge_elkan(enc_b, enc_a, vocab, table=table)
    return (forward + backward) / 2.0


_EMPTY_JW_TABLE = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))


def _directed_monge_elkan(
    enc_x: list[np.ndarray],
    enc_y: list[np.ndarray],
    vocab: Vocabulary,
    *,
    table: tuple[np.ndarray, np.ndarray] | None = None,
    return_table: bool = False,
) -> np.ndarray | tuple[np.ndarray, tuple[np.ndarray, np.ndarray]]:
    n = len(enc_x)
    nx = np.fromiter((len(row) for row in enc_x), dtype=np.int64, count=n)
    ny = np.fromiter((len(row) for row in enc_y), dtype=np.int64, count=n)
    result = np.zeros(n, dtype=np.float64)
    result[(nx == 0) & (ny == 0)] = 1.0
    valid = np.nonzero((nx > 0) & (ny > 0))[0]
    if not len(valid):
        return (result, _EMPTY_JW_TABLE) if return_table else result
    flat_x = np.concatenate([enc_x[i] for i in valid])
    flat_y = np.concatenate([enc_y[i] for i in valid])
    vx, vy = nx[valid], ny[valid]
    starts_x = np.concatenate([[0], np.cumsum(vx)[:-1]])
    starts_y = np.concatenate([[0], np.cumsum(vy)[:-1]])
    combos = vx * vy
    total = int(combos.sum())
    combo_start = np.concatenate([[0], np.cumsum(combos)[:-1]])
    local = np.arange(total, dtype=np.int64) - np.repeat(combo_start, combos)
    ny_rep = np.repeat(vy, combos)
    x_pos = np.repeat(starts_x, combos) + local // ny_rep
    y_pos = np.repeat(starts_y, combos) + local % ny_rep
    tid = flat_x[x_pos].astype(np.int64)
    uid = flat_y[y_pos].astype(np.int64)
    stride = max(len(vocab), 1)
    keys = tid * stride + uid
    if table is None:
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        unique_scores = jaro_winkler_similarity_many(
            [vocab.tokens[k // stride] for k in unique_keys],
            [vocab.tokens[k % stride] for k in unique_keys],
        )
        scores = unique_scores[inverse]
    else:
        # Jaro-Winkler is symmetric (matches, transpositions, and the
        # common prefix are direction-free, and the m/|a| + m/|b| sum
        # commutes in IEEE arithmetic), so the reverse direction reuses
        # the forward direction's table through transposed keys — every
        # (y, x) combo here appeared as (x, y) in the forward pass.
        unique_keys, unique_scores = table
        transposed = (keys % stride) * stride + keys // stride
        scores = unique_scores[np.searchsorted(unique_keys, transposed)]
    # Per (pair, x-token) maxima: combos are emitted grouped by global x
    # position, so segment boundaries are exactly the x_pos transitions.
    seg_starts = np.nonzero(np.diff(x_pos, prepend=-1))[0]
    maxima = np.maximum.reduceat(scores, seg_starts)
    pair_of_combo = np.repeat(np.arange(len(valid), dtype=np.int64), combos)
    sums = np.bincount(pair_of_combo[seg_starts], weights=maxima, minlength=len(valid))
    result[valid] = sums / vx
    return (result, (unique_keys, unique_scores)) if return_table else result


def numeric_similarity_many(
    a: Sequence[float | None], b: Sequence[float | None]
) -> np.ndarray:
    """Batched :func:`numeric_similarity` (bit-exact)."""
    if len(a) != len(b):
        raise ValueError("batch sides must have equal length")
    if not len(a):
        return np.empty(0, dtype=np.float64)
    va = np.array([np.nan if v is None else float(v) for v in a], dtype=np.float64)
    vb = np.array([np.nan if v is None else float(v) for v in b], dtype=np.float64)
    missing_a = np.isnan(va)
    missing_b = np.isnan(vb)
    denom = np.maximum(np.abs(va), np.abs(vb))
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.maximum(0.0, 1.0 - np.abs(va - vb) / denom)
    result = np.where(va == vb, 1.0, result)
    result = np.where(denom == 0.0, 1.0, result)
    result = np.where(missing_a | missing_b, 0.0, result)
    return np.where(missing_a & missing_b, 1.0, result)
