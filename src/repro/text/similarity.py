"""String similarity metrics.

These metrics are the backbone of the classical entity-resolution baselines
(Magellan-style feature vectors, paper Table 1) and of the blocking stage of
the built-in entity-resolution template.  All functions return a similarity
in ``[0, 1]`` where ``1`` means identical.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.text.tokenize import char_ngrams, word_tokenize

__all__ = [
    "levenshtein_distance",
    "levenshtein_within",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "overlap_coefficient",
    "dice_similarity",
    "cosine_similarity",
    "tfidf_cosine",
    "monge_elkan_similarity",
    "numeric_similarity",
    "TfIdfModel",
]


def levenshtein_distance(a: str, b: str, max_distance: int | None = None) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1).

    With ``max_distance`` the computation runs *banded*: only the diagonal
    band of width ``2·max_distance + 1`` is filled, which is O(n·d) instead
    of O(n·m), and the scan exits early the moment every cell in a row
    exceeds the bound.  When the true distance is larger than
    ``max_distance`` the return value is ``max_distance + 1`` (a sentinel,
    not the exact distance) — callers asking "are these within d edits?"
    get their answer without paying for the full matrix.
    """
    if a == b:
        return 0
    if not a:
        return len(b) if max_distance is None else min(len(b), max_distance + 1)
    if not b:
        return len(a) if max_distance is None else min(len(a), max_distance + 1)
    if len(a) < len(b):
        a, b = b, a
    if max_distance is not None:
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        cutoff = max_distance + 1
        # Lengths differing by more than the bound cannot be within it.
        if len(a) - len(b) > max_distance:
            return cutoff
        infinity = cutoff + 1
        previous = [j if j <= max_distance else infinity for j in range(len(b) + 1)]
        for i, ca in enumerate(a, start=1):
            lo = max(1, i - max_distance)
            hi = min(len(b), i + max_distance)
            current = [infinity] * (len(b) + 1)
            if lo == 1:
                current[0] = i if i <= max_distance else infinity
            best = current[0] if lo == 1 else infinity
            for j in range(lo, hi + 1):
                cost = 0 if ca == b[j - 1] else 1
                value = min(
                    previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
                )
                current[j] = value
                if value < best:
                    best = value
            if best > max_distance:
                return cutoff  # early exit: the whole band exceeded the bound
            previous = current
        return previous[-1] if previous[-1] <= max_distance else cutoff
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_within(a: str, b: str, max_distance: int) -> bool:
    """Whether ``a`` and ``b`` are within ``max_distance`` edits (banded)."""
    return levenshtein_distance(a, b, max_distance=max_distance) <= max_distance


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a ``[0, 1]`` similarity."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / max(len(a), len(b))


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: order-tolerant character matching."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by a shared prefix of up to 4 chars."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def _as_set(items: Iterable[str] | str) -> set[str]:
    if isinstance(items, str):
        return set(word_tokenize(items.lower()))
    return set(items)


def jaccard_similarity(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Jaccard over token sets (strings are word-tokenised, lowercased)."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def overlap_coefficient(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Szymkiewicz–Simpson overlap: intersection over the smaller set."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa or not sb:
        return 1.0 if sa == sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def dice_similarity(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Sørensen–Dice coefficient over token sets."""
    sa, sb = _as_set(a), _as_set(b)
    if not sa and not sb:
        return 1.0
    return 2.0 * len(sa & sb) / (len(sa) + len(sb))


def cosine_similarity(a: Iterable[str] | str, b: Iterable[str] | str) -> float:
    """Cosine over token multiset counts."""
    ca = Counter(word_tokenize(a.lower()) if isinstance(a, str) else a)
    cb = Counter(word_tokenize(b.lower()) if isinstance(b, str) else b)
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    na = math.sqrt(sum(v * v for v in ca.values()))
    nb = math.sqrt(sum(v * v for v in cb.values()))
    return min(1.0, dot / (na * nb))


class TfIdfModel:
    """A TF-IDF weighting model fit on a corpus of strings.

    Used by the blocking stage of entity resolution: rare tokens (model
    numbers, distinctive words) should weigh more than ubiquitous ones.
    """

    def __init__(self, corpus: Sequence[str]):
        self._doc_count = len(corpus)
        df: Counter[str] = Counter()
        for doc in corpus:
            df.update(set(word_tokenize(doc.lower())))
        self._idf = {
            token: math.log((1 + self._doc_count) / (1 + count)) + 1.0
            for token, count in df.items()
        }
        self._default_idf = math.log(1 + self._doc_count) + 1.0

    def idf(self, token: str) -> float:
        """Inverse document frequency of ``token`` (unseen tokens weigh most)."""
        return self._idf.get(token, self._default_idf)

    def vector(self, text: str) -> dict[str, float]:
        """Sparse TF-IDF vector of ``text``."""
        counts = Counter(word_tokenize(text.lower()))
        return {token: count * self.idf(token) for token, count in counts.items()}

    def similarity(self, a: str, b: str) -> float:
        """TF-IDF-weighted cosine between two strings."""
        va, vb = self.vector(a), self.vector(b)
        if not va and not vb:
            return 1.0
        if not va or not vb:
            return 0.0
        dot = sum(va[t] * vb[t] for t in va.keys() & vb.keys())
        na = math.sqrt(sum(v * v for v in va.values()))
        nb = math.sqrt(sum(v * v for v in vb.values()))
        return min(1.0, dot / (na * nb))


def tfidf_cosine(a: str, b: str, corpus: Sequence[str]) -> float:
    """One-shot TF-IDF cosine for small corpora (fits a model each call)."""
    return TfIdfModel(corpus).similarity(a, b)


def monge_elkan_similarity(a: str, b: str) -> float:
    """Monge-Elkan: mean of best Jaro-Winkler match per token of ``a``.

    Note this measure is asymmetric by definition; the symmetric average of
    both directions is returned to keep the metric well behaved for features.
    """

    def directed(x: str, y: str) -> float:
        tx = word_tokenize(x.lower())
        ty = word_tokenize(y.lower())
        if not tx:
            return 1.0 if not ty else 0.0
        if not ty:
            return 0.0
        return sum(max(jaro_winkler_similarity(t, u) for u in ty) for t in tx) / len(tx)

    return (directed(a, b) + directed(b, a)) / 2.0


def numeric_similarity(a: float | None, b: float | None) -> float:
    """Relative closeness of two numbers in ``[0, 1]`` (``None`` -> 0 unless both)."""
    if a is None and b is None:
        return 1.0
    if a is None or b is None:
        return 0.0
    if a == b:
        return 1.0
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / denom)


def qgram_similarity(a: str, b: str, q: int = 3) -> float:
    """Jaccard over padded character q-grams (robust to small typos)."""
    ga, gb = set(char_ngrams(a.lower(), q)), set(char_ngrams(b.lower(), q))
    if not ga and not gb:
        return 1.0
    union = ga | gb
    if not union:
        return 1.0
    return len(ga & gb) / len(union)


__all__.append("qgram_similarity")
