"""Text normalisation helpers.

Entity-resolution datasets are dirty on purpose: abbreviations, unit
variations, stray punctuation and accents.  These helpers implement the
normalisations the classical baselines and the built-in templates rely on.
"""

from __future__ import annotations

import re
import unicodedata

__all__ = [
    "strip_accents",
    "normalize_whitespace",
    "normalize_text",
    "expand_abbreviations",
    "extract_numbers",
    "normalize_units",
]

# Common abbreviations seen in the synthetic restaurant/beer/music data.
_ABBREVIATIONS = {
    "st.": "street",
    "st": "street",
    "ave.": "avenue",
    "ave": "avenue",
    "blvd.": "boulevard",
    "blvd": "boulevard",
    "rd.": "road",
    "rd": "road",
    "dr.": "drive",
    "co.": "company",
    "co": "company",
    "inc.": "incorporated",
    "inc": "incorporated",
    "ltd.": "limited",
    "ltd": "limited",
    "brewing": "brewery",
    "brew": "brewery",
    "ft.": "featuring",
    "feat.": "featuring",
    "feat": "featuring",
    "vol.": "volume",
    "&": "and",
    # Domain synonym dictionary: beer style shorthands (standard in
    # matching normalisers; what a pretrained LM knows implicitly).
    "ipa": "india pale ale",
    "esb": "extra special bitter",
}

def _mmss_to_seconds(match: "re.Match[str]") -> str:
    return f"{int(match.group(1)) * 60 + int(match.group(2))}s"


_UNIT_PATTERNS = [
    # Durations: "3:45" and "225 sec" both canonicalise to "225s".
    (re.compile(r"\b(\d+):([0-5]\d)\b"), _mmss_to_seconds),
    (re.compile(r"(\d+)\s*(?:sec|second)s?\b", re.I), r"\1s"),
    (re.compile(r"(\d+(?:\.\d+)?)\s*(?:fl\.?\s*oz|oz|ounce)s?\b", re.I), r"\1oz"),
    (re.compile(r"(\d+(?:\.\d+)?)\s*(?:ml|milliliter)s?\b", re.I), r"\1ml"),
    (re.compile(r"(\d+(?:\.\d+)?)\s*(?:gb|gigabyte)s?\b", re.I), r"\1gb"),
    (re.compile(r"(\d+(?:\.\d+)?)\s*(?:mb|megabyte)s?\b", re.I), r"\1mb"),
    (re.compile(r"(\d+(?:\.\d+)?)\s*(?:in|inch|\")\b", re.I), r"\1in"),
    (re.compile(r"(\d+(?:\.\d+)?)\s*%", re.I), r"\1pct"),
]

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCT_RE = re.compile(r"[^\w\s.%'-]", re.UNICODE)
_NUMBER_RE = re.compile(r"\d+(?:\.\d+)?")


def strip_accents(text: str) -> str:
    """Remove diacritics: ``'Köln' -> 'Koln'``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def expand_abbreviations(text: str) -> str:
    """Expand common street/company/music abbreviations token by token."""
    out: list[str] = []
    for token in text.split():
        out.append(_ABBREVIATIONS.get(token.lower(), token))
    return " ".join(out)


def normalize_units(text: str) -> str:
    """Canonicalise measurement expressions (``12 fl oz`` -> ``12oz``)."""
    for pattern, replacement in _UNIT_PATTERNS:
        text = pattern.sub(replacement, text)
    return text


def _normalize_pass(text: str) -> str:
    """One sweep of the full normalisation pipeline.

    Punctuation is dropped *before* abbreviation expansion — stripping
    ``':co'`` down to ``'co'`` must not expose an abbreviation a later
    normalisation round would then expand differently.  ``&`` is rewritten
    explicitly because the punctuation pattern would otherwise delete it.
    """
    text = strip_accents(text).lower()
    text = normalize_units(text)
    text = text.replace("&", " and ")
    text = _PUNCT_RE.sub(" ", text)
    text = expand_abbreviations(text)
    return normalize_whitespace(text)


def normalize_text(text: str) -> str:
    """Full normalisation pipeline used by matchers before comparison.

    Lowercases, strips accents, canonicalises units, expands abbreviations,
    drops stray punctuation and collapses whitespace.  The pipeline is
    applied until a fixpoint, which makes it idempotent: stripping
    punctuation can expose tokens (abbreviations, unit expressions) that an
    earlier step already passed over, so a single sweep is not stable.
    """
    for _ in range(10):
        normalized = _normalize_pass(text)
        if normalized == text:
            return normalized
        text = normalized
    return text


def extract_numbers(text: str) -> list[float]:
    """All decimal numbers appearing in ``text``, in order."""
    return [float(m) for m in _NUMBER_RE.findall(text)]
