"""Noun-phrase extraction.

The second operator of the name-extraction pipeline (paper Figure 3).  The
chunker finds maximal spans of capitalised words — the candidate set that the
tagging operator later labels as person names or not.  Two quality levels are
provided because the paper's LLMGC story needs a *naive* first-draft chunker
(what the LLM generates initially) and a *refined* one (after the validator's
repair loop adds honorific and particle handling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.tokenize import Token, tokens_with_spans

__all__ = ["PhraseSpan", "naive_noun_phrases", "noun_phrases"]

# Sentence-initial words that are capitalised only because of position.
_FUNCTION_WORDS = {
    "the", "a", "an", "in", "on", "at", "of", "for", "to", "and", "or", "but",
    "with", "by", "from", "as", "is", "was", "are", "were", "he", "she", "it",
    "they", "we", "i", "you", "this", "that", "these", "those", "after",
    "before", "when", "while", "today", "yesterday", "tomorrow", "meanwhile",
    "however", "then", "there", "here", "later", "earlier", "during",
    # Spanish / French / German function words that start sentences.
    "el", "la", "los", "las", "un", "una", "en", "de", "del", "le", "les",
    "des", "au", "aux", "der", "die", "das", "ein", "eine", "im", "am",
    "según", "selon", "nach", "laut", "ayer", "hier", "hoy", "demain",
    "gestern", "heute", "morgen",
}

# Lowercase particles that may appear *inside* a multi-word name.
_NAME_PARTICLES = {"de", "del", "della", "di", "da", "van", "von", "der", "den", "la", "le", "bin", "al"}

_HONORIFICS = {
    "mr", "mr.", "mrs", "mrs.", "ms", "ms.", "dr", "dr.", "prof", "prof.",
    "sir", "dame", "lord", "lady", "sr.", "sra.", "don", "doña", "herr",
    "frau", "monsieur", "madame", "mme", "m.",
}


@dataclass(frozen=True)
class PhraseSpan:
    """A candidate phrase with its source-character span."""

    text: str
    start: int
    end: int
    tokens: tuple[str, ...]


def _is_capitalised(token: str) -> bool:
    return bool(token) and token[0].isalpha() and token[0].isupper()


def _spans_from_groups(groups: list[list[Token]]) -> list[PhraseSpan]:
    spans = []
    for group in groups:
        if not group:
            continue
        spans.append(
            PhraseSpan(
                text=" ".join(t.text for t in group),
                start=group[0].start,
                end=group[-1].end,
                tokens=tuple(t.text for t in group),
            )
        )
    return spans


def naive_noun_phrases(text: str) -> list[PhraseSpan]:
    """First-draft chunker: every maximal run of capitalised tokens.

    This is the quality level the simulated LLM emits on its first code
    generation attempt.  It over-triggers on sentence-initial function words
    and breaks names containing lowercase particles ("Maria de la Cruz").
    """
    groups: list[list[Token]] = []
    current: list[Token] = []
    for token in tokens_with_spans(text):
        if _is_capitalised(token.text):
            current.append(token)
        else:
            if current:
                groups.append(current)
            current = []
    if current:
        groups.append(current)
    return _spans_from_groups(groups)


def noun_phrases(text: str) -> list[PhraseSpan]:
    """Refined chunker (post validator repair).

    Improvements over :func:`naive_noun_phrases`:

    - drops sentence-initial capitalised function words ("The", "Ayer"),
    - bridges lowercase name particles so "Maria de la Cruz" stays one span,
    - attaches honorifics ("Dr. Chen") to the following phrase.
    """
    tokens = tokens_with_spans(text)
    groups: list[list[Token]] = []
    current: list[Token] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        word = token.text
        if _is_capitalised(word):
            sentence_initial = token.start == 0 or (
                i > 0 and tokens[i - 1].text in ".!?。"
            )
            if sentence_initial and word.lower() in _FUNCTION_WORDS and not current:
                i += 1
                continue
            current.append(token)
        elif current and word.lower() in _NAME_PARTICLES and i + 1 < len(tokens):
            # Bridge the particle: "Maria" + "de" + "la"? look ahead through
            # consecutive particles to a capitalised continuation.
            j = i
            bridge: list[Token] = []
            while j < len(tokens) and tokens[j].text.lower() in _NAME_PARTICLES:
                bridge.append(tokens[j])
                j += 1
            if j < len(tokens) and _is_capitalised(tokens[j].text):
                current.extend(bridge)
                i = j
                continue
            groups.append(current)
            current = []
        else:
            if current:
                groups.append(current)
            current = []
        i += 1
    if current:
        groups.append(current)

    spans = _spans_from_groups(groups)

    # Drop bare honorifics and strip leading honorific tokens from spans.
    cleaned: list[PhraseSpan] = []
    for span in spans:
        tokens_list = list(span.tokens)
        while tokens_list and tokens_list[0].lower() in _HONORIFICS:
            tokens_list = tokens_list[1:]
        if not tokens_list:
            continue
        if tokens_list == list(span.tokens):
            cleaned.append(span)
        else:
            offset = span.text.find(tokens_list[0])
            cleaned.append(
                PhraseSpan(
                    text=" ".join(tokens_list),
                    start=span.start + max(offset, 0),
                    end=span.end,
                    tokens=tuple(tokens_list),
                )
            )
    return cleaned
