"""Text and NLP substrate: tokenisation, similarity, phrases, language ID."""

from repro.text.language import LanguageGuess, detect_language
from repro.text.normalize import (
    expand_abbreviations,
    extract_numbers,
    normalize_text,
    normalize_units,
    normalize_whitespace,
    strip_accents,
)
from repro.text.phrases import PhraseSpan, naive_noun_phrases, noun_phrases
from repro.text.similarity import (
    TfIdfModel,
    cosine_similarity,
    dice_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
    qgram_similarity,
    tfidf_cosine,
)
from repro.text.tokenize import (
    Token,
    char_ngrams,
    ngrams,
    sentence_split,
    tokens_with_spans,
    word_tokenize,
)

__all__ = [
    "LanguageGuess",
    "detect_language",
    "expand_abbreviations",
    "extract_numbers",
    "normalize_text",
    "normalize_units",
    "normalize_whitespace",
    "strip_accents",
    "PhraseSpan",
    "naive_noun_phrases",
    "noun_phrases",
    "TfIdfModel",
    "cosine_similarity",
    "dice_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan_similarity",
    "numeric_similarity",
    "overlap_coefficient",
    "qgram_similarity",
    "tfidf_cosine",
    "Token",
    "char_ngrams",
    "ngrams",
    "sentence_split",
    "tokens_with_spans",
    "word_tokenize",
]
