"""Document shingling kernels for corpus-level curation operators.

Fuzzy deduplication (NeMo-Curator style) works over *shingle sets*: a
document is canonicalised, split into word n-grams, and each n-gram is
hashed into a fixed integer space.  Jaccard similarity between shingle
sets is then the resemblance measure MinHash estimates.

Two canonicalisers are deliberately provided:

- :func:`simple_canonical` — lowercase, strip punctuation, collapse
  whitespace.  This is what a *non-LLM* baseline can do: no world
  knowledge, so abbreviation/unit/accent rewrites between two copies of a
  document survive canonicalisation and break their shared shingles.
- :func:`knowledge_canonical` — the full :func:`repro.text.normalize.normalize_text`
  pipeline (abbreviation expansion, unit canonicalisation, accent
  stripping).  This is the normalisation an LLM applies implicitly; the
  simulated curation skills use it, which is where their edge over the
  baselines comes from.

Both are idempotent (re-application is a no-op), which the property suite
locks: ``canonical(canonical(x)) == canonical(x)`` and the shingle set of a
canonical text is stable under re-canonicalisation.

Shingle identifiers live in the 31-bit space ``[0, 2**31 - 1)`` so the
MinHash permutation ``(a * x + b) mod (2**31 - 1)`` stays exact in both
plain Python integers and numpy ``uint64`` arithmetic (``a, x < 2**31``
implies ``a * x + b < 2**62``) — the columnar kernels in
:mod:`repro.storage.columnar` are bitwise-identical to these oracles.
"""

from __future__ import annotations

import hashlib
import re

from repro._util import stable_hash
from repro.text.normalize import normalize_text, normalize_whitespace

__all__ = [
    "SHINGLE_SPACE",
    "simple_canonical",
    "knowledge_canonical",
    "word_shingles",
    "shingle_id",
    "shingle_ids",
    "exact_jaccard",
    "document_digest",
]

#: Shingle identifiers are drawn from ``[0, SHINGLE_SPACE)`` — one below the
#: Mersenne prime ``2**31 - 1`` used by the MinHash permutations, so every
#: id is a valid residue and products with ``a < 2**31`` fit in 62 bits.
SHINGLE_SPACE = (1 << 31) - 1

_SIMPLE_PUNCT_RE = re.compile(r"[^\w\s]", re.UNICODE)


def simple_canonical(text: str) -> str:
    """Knowledge-free canonical form: lowercase, no punctuation, one-space.

    Idempotent by construction — every step is a projection.  This is the
    canonicaliser the non-LLM baselines use: it cannot undo abbreviation,
    unit, or accent rewrites, so disguised duplicates keep distinct
    shingles under it.
    """
    text = _SIMPLE_PUNCT_RE.sub(" ", text.lower())
    return normalize_whitespace(text)


def knowledge_canonical(text: str) -> str:
    """World-knowledge canonical form (the full normaliser, to fixpoint)."""
    return normalize_text(text)


def word_shingles(text: str, n: int = 3) -> list[str]:
    """Contiguous word ``n``-grams of ``text``, space-joined.

    The text is *not* canonicalised here — callers pick a canonicaliser
    first so the baseline and the knowledge path can differ only in that
    choice.  Texts shorter than ``n`` words yield a single shingle of the
    whole text (so no non-empty document has an empty shingle set).
    """
    if n <= 0:
        raise ValueError("shingle width must be positive")
    tokens = text.split()
    if not tokens:
        return []
    if len(tokens) < n:
        return [" ".join(tokens)]
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def shingle_id(shingle: str) -> int:
    """Stable 31-bit identifier of one shingle string."""
    return stable_hash("shingle", shingle) % SHINGLE_SPACE


def shingle_ids(text: str, n: int = 3) -> tuple[int, ...]:
    """Sorted, de-duplicated shingle identifiers of ``text``.

    The sorted-tuple form is the canonical set representation shared by the
    scalar and columnar MinHash kernels.
    """
    return tuple(sorted({shingle_id(s) for s in word_shingles(text, n)}))


def exact_jaccard(ids_a: tuple[int, ...], ids_b: tuple[int, ...]) -> float:
    """Exact Jaccard resemblance of two shingle-id sets."""
    a, b = set(ids_a), set(ids_b)
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def document_digest(text: str) -> str:
    """Exact-duplicate key: blake2b over the simple-canonical text."""
    canonical = simple_canonical(text)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
