"""Word and sentence tokenisers.

These are the first stage of the name-extraction pipeline (paper section 4.2,
Figure 3) and are also used by the similarity metrics and the ML feature
extractors.  The tokenisers are intentionally simple, rule based and fully
deterministic; no external models are involved.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "Token",
    "word_tokenize",
    "sentence_split",
    "tokens_with_spans",
    "ngrams",
    "char_ngrams",
]

# A word is a run of letters (with internal apostrophes/hyphens), a run of
# digits (with internal separators), or a single punctuation mark.
_TOKEN_RE = re.compile(
    r"[^\W\d_]+(?:['’-][^\W\d_]+)*"  # words incl. O'Brien, Jean-Luc
    r"|\d+(?:[.,:]\d+)*"  # numbers incl. 8.5, 1,000
    r"|\S",  # any other single non-space char
    re.UNICODE,
)

_SENTENCE_END_RE = re.compile(r"(?<=[.!?。])\s+")


@dataclass(frozen=True)
class Token:
    """A token with its character span in the source text."""

    text: str
    start: int
    end: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def word_tokenize(text: str) -> list[str]:
    """Split ``text`` into word/number/punctuation tokens."""
    return _TOKEN_RE.findall(text)


def tokens_with_spans(text: str) -> list[Token]:
    """Like :func:`word_tokenize` but retains character offsets."""
    return [Token(m.group(), m.start(), m.end()) for m in _TOKEN_RE.finditer(text)]


def sentence_split(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation.

    The splitter is deliberately conservative: it only breaks after
    ``. ! ?`` (or the CJK full stop) followed by whitespace, which is adequate
    for the synthetic corpora used in this reproduction.
    """
    parts = [part.strip() for part in _SENTENCE_END_RE.split(text)]
    return [part for part in parts if part]


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of ``n``-grams over ``tokens`` (empty if too short)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def char_ngrams(text: str, n: int, pad: bool = True) -> list[str]:
    """Return character ``n``-grams of ``text``.

    With ``pad=True`` the text is wrapped in ``#`` sentinels, so that prefixes
    and suffixes form distinct grams — useful for language identification and
    fuzzy matching features.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if pad:
        text = "#" + text + "#"
    if len(text) < n:
        return [text]
    return [text[i : i + n] for i in range(len(text) - n + 1)]
