"""Built-in pipeline templates (paper section 3).

"Rather than creating a pipeline from scratch, Lingua Manga allows users to
start with a pre-defined, well-optimized pipeline that the target application
can directly use."  Templates are searchable by natural-language description
— the first thing the novice user of section 4.1 does.
"""

from repro.core.templates.library import (
    Template,
    available_templates,
    get_template,
    search_templates,
)

__all__ = ["Template", "available_templates", "get_template", "search_templates"]
