"""The template library: pre-built, optimizer-tuned pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.operators import OperatorKind
from repro.core.dsl.pipeline import Pipeline
from repro.core.optimizer.validator import TestCase
from repro.text.tokenize import word_tokenize

__all__ = ["Template", "available_templates", "get_template", "search_templates"]


@dataclass(frozen=True)
class Template:
    """A named, searchable pipeline factory."""

    name: str
    description: str
    keywords: tuple[str, ...]
    build: Callable[..., Pipeline] = field(compare=False)

    def instantiate(self, **overrides: Any) -> Pipeline:
        """Build the pipeline, forwarding any overrides to the factory."""
        return self.build(**overrides)


# ---------------------------------------------------------------------------
# Template factories
# ---------------------------------------------------------------------------


def _pair_similarity_vectorize() -> Callable[[Any], Any]:
    """Feature map for the ER distillation student.

    Turns a ``{"left": record, "right": record}`` pipeline input into a
    Magellan-style per-attribute similarity vector.  Extractors are cached
    per attribute schema so mixed-schema inputs stay well formed.
    """
    from repro.ml.features import PairFeatureExtractor

    extractors: dict[tuple[str, ...], PairFeatureExtractor] = {}

    def vectorize(value: Any) -> Any:
        left = value.get("left", {}) if isinstance(value, dict) else {}
        right = value.get("right", {}) if isinstance(value, dict) else {}
        attributes = tuple(sorted(set(left) | set(right)))
        extractor = extractors.get(attributes)
        if extractor is None:
            extractor = PairFeatureExtractor(attributes)
            extractors[attributes] = extractor
        return extractor.transform_pair(left, right)

    return vectorize


def _entity_resolution_template(
    examples: list[tuple[Any, bool]] | None = None,
    task: str | None = None,
    instructions: str = "",
    error_policy: str | None = None,
    distill: bool = False,
    distill_config: dict[str, Any] | None = None,
) -> Pipeline:
    """Figure 2b: the built-in, well-optimized ER pipeline.

    The matcher is an LLM module with a curated task description; few-shot
    ``examples`` (record-pair, label) sharpen it further — the paper's
    "label efficient" story: a handful of examples, not thousands.
    ``error_policy="skip_record"`` makes the matcher quarantine poisoned
    pairs instead of aborting the run (chaos/production mode).
    ``distill=True`` attaches the optimizer's cost-minimizing distillation
    router to the matcher: a local classifier shadow-trains on the LLM's
    verdicts and takes over high-confidence pairs once its held-out
    accuracy clears the bar.
    """
    builder = PipelineBuilder(
        "entity_resolution_template",
        description="built-in entity resolution: load -> LLM match -> save",
    )
    params: dict[str, Any] = {"impl": "llm"}
    if examples:
        params["examples"] = examples
    if task:
        params["task"] = task
    if instructions:
        params["instructions"] = instructions
    if error_policy:
        params["error_policy"] = error_policy
    if distill:
        params["distill"] = True
        config = dict(distill_config or {})
        # The student that actually distils an LLM matcher is the Magellan
        # shape: a forest over per-attribute similarity features, not a
        # bag-of-hashed-tokens text model.
        config.setdefault("student", "forest")
        config.setdefault("vectorize", _pair_similarity_vectorize())
        config.setdefault("min_samples", 40)
        config.setdefault("accuracy_bar", 0.85)
        config.setdefault("confidence_threshold", 0.9)
        config.setdefault("refit_every", 20)
        params["distill_config"] = config
    return (
        builder.load(source="pairs")
        .match_entities(**params)
        .save(key="verdicts")
        .build()
    )


def _name_extraction_template(
    multilingual: bool = True,
    simulate_tagging: bool = False,
    noun_phrase_cases: list[TestCase] | None = None,
) -> Pipeline:
    """Figure 3: tokenize -> noun phrases (LLMGC) -> tag (LLM + validator).

    ``multilingual=True`` inserts the language-detection module the paper's
    section 4.2 adds to fix multilingual degradation; ``simulate_tagging``
    attaches the optimizer's simulator to the expensive tagging module.
    """
    if noun_phrase_cases is None:
        noun_phrase_cases = default_noun_phrase_cases()
    builder = PipelineBuilder(
        "name_extraction_template",
        description="name extraction with LLMGC chunking and LLM tagging",
    )
    builder.load(source="documents")
    builder.tokenize(impl="llmgc", validator_cases=default_tokenize_cases())
    if multilingual:
        builder.detect_language(impl="custom")
    builder.noun_phrases(impl="llmgc", validator_cases=noun_phrase_cases)
    tag_params: dict[str, Any] = {"use_language": multilingual}
    if simulate_tagging:
        tag_params["simulate"] = True
        tag_params["simulate_config"] = {
            "min_samples": 60,
            "agreement_threshold": 0.8,
            "confidence_threshold": 0.65,
            "refit_every": 30,
        }
    builder.tag_names(**tag_params)
    builder.save(key="documents")
    return builder.build()


def _data_imputation_template(
    guidelines: str = "",
    validator_cases: list[TestCase] | None = None,
) -> Pipeline:
    """Figure 4: the expert imputation pipeline (LLMGC hybrid + validator)."""
    if validator_cases is None:
        validator_cases = default_imputation_cases()
    return (
        PipelineBuilder(
            "data_imputation_template",
            description="imputation: cheap rules locally, LLM escalation for hard cases",
        )
        .load(source="records")
        .impute(
            impl="llmgc",
            guidelines=guidelines
            or (
                "Resolve products that mention their brand verbatim with "
                "local string rules; escalate only brand-less products to "
                "the LLM tool."
            ),
            validator_cases=validator_cases,
        )
        .save(key="imputed")
        .build()
    )


def _schema_matching_template() -> Pipeline:
    """Column matching between two schemas via the LLM."""
    return (
        PipelineBuilder(
            "schema_matching_template",
            description="schema matching: LLM column alignment",
        )
        .load(source="schemas")
        .add(OperatorKind.SCHEMA_MATCH, impl="llm", map=False)
        .save(key="matches")
        .build()
    )


def _data_cleaning_template() -> Pipeline:
    """Normalise text values then drop exact duplicates."""
    return (
        PipelineBuilder(
            "data_cleaning_template",
            description="cleaning: normalise values, dedupe records",
        )
        .load(source="values")
        .clean_text(impl="custom")
        .dedupe(impl="custom")
        .save(key="cleaned")
        .build()
    )


# ---------------------------------------------------------------------------
# Default validator cases (the "few example test cases" of section 3.2)
# ---------------------------------------------------------------------------


def default_tokenize_cases() -> list[TestCase]:
    """Test cases that force the tokenizer past the whitespace-split draft."""
    return [
        TestCase(
            "John met Mary.",
            ["John", "met", "Mary", "."],
            name="punctuation separated",
        ),
        TestCase("He said hi", ["He", "said", "hi"], name="plain words"),
    ]


def default_noun_phrase_cases() -> list[TestCase]:
    """Cases that force the chunker through both repair rounds."""
    return [
        TestCase(
            "Yesterday John Smith arrived.",
            ["John Smith"],
            name="sentence-initial function word",
        ),
        TestCase(
            "Maria de la Cruz spoke in Madrid.",
            ["Maria de la Cruz", "Madrid"],
            name="particles bridged",
        ),
        TestCase(
            "The report was fine.",
            [],
            name="no phrases in plain sentence",
        ),
    ]


def default_imputation_cases() -> list[TestCase]:
    """Cases that force the imputer to read descriptions and escalate."""
    return [
        TestCase(
            {"name": "Sony Walkman Headphones", "description": "portable audio"},
            "Sony",
            name="brand in name",
        ),
        TestCase(
            {
                "name": "Inspiron Notebook",
                "description": "Official Dell Notebook with full warranty.",
            },
            "Dell",
            name="brand in description",
        ),
        TestCase(
            {"name": "PlayStation Console", "description": "game console"},
            "Sony",
            name="world knowledge (escalation)",
        ),
    ]


# ---------------------------------------------------------------------------
# Registry and search
# ---------------------------------------------------------------------------

_TEMPLATES: dict[str, Template] = {
    template.name: template
    for template in (
        Template(
            name="entity_resolution",
            description=(
                "Decide which record pairs refer to the same real-world "
                "entity (deduplication, record linkage, matching)."
            ),
            keywords=(
                "entity", "resolution", "match", "matching", "duplicate",
                "dedupe", "linkage", "same", "records", "merge",
            ),
            build=_entity_resolution_template,
        ),
        Template(
            name="name_extraction",
            description=(
                "Find all person names in text passages (tokenize, extract "
                "noun phrases, tag names; multilingual aware)."
            ),
            keywords=(
                "name", "names", "person", "extraction", "extract", "ner",
                "text", "multilingual", "tag",
            ),
            build=_name_extraction_template,
        ),
        Template(
            name="data_imputation",
            description=(
                "Fill in missing attribute values such as a product's "
                "manufacturer (imputation, missing data, repair)."
            ),
            keywords=(
                "impute", "imputation", "missing", "fill", "manufacturer",
                "value", "repair", "complete",
            ),
            build=_data_imputation_template,
        ),
        Template(
            name="schema_matching",
            description="Align columns between two table schemas by meaning.",
            keywords=("schema", "column", "matching", "align", "integration"),
            build=_schema_matching_template,
        ),
        Template(
            name="data_cleaning",
            description="Normalise messy text values and drop duplicates.",
            keywords=("clean", "cleaning", "normalise", "normalize", "dedupe", "messy"),
            build=_data_cleaning_template,
        ),
    )
}


def available_templates() -> list[Template]:
    """All built-in templates, sorted by name."""
    return [_TEMPLATES[name] for name in sorted(_TEMPLATES)]


def get_template(name: str) -> Template:
    """Fetch a template by exact name."""
    if name not in _TEMPLATES:
        raise KeyError(f"no template named {name!r}; have {sorted(_TEMPLATES)}")
    return _TEMPLATES[name]


def search_templates(query: str, limit: int = 3) -> list[tuple[Template, float]]:
    """Rank templates against an NL ``query`` by keyword/description overlap.

    This is the no-code entry point: "users can easily search for existing
    templates within the system" (section 4.1).
    """
    tokens = {t.lower() for t in word_tokenize(query)}
    scored: list[tuple[Template, float]] = []
    for template in available_templates():
        keyword_hits = len(tokens & set(template.keywords))
        description_hits = len(
            tokens & {t.lower() for t in word_tokenize(template.description)}
        )
        score = keyword_hits * 2.0 + description_hits * 0.5
        if score > 0:
            scored.append((template, score))
    scored.sort(key=lambda pair: (-pair[1], pair[0].name))
    return scored[:limit]
