"""The template library: pre-built, optimizer-tuned pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.operators import OperatorKind
from repro.core.dsl.pipeline import Pipeline
from repro.core.optimizer.validator import TestCase
from repro.text.tokenize import word_tokenize

__all__ = ["Template", "available_templates", "get_template", "search_templates"]


@dataclass(frozen=True)
class Template:
    """A named, searchable pipeline factory."""

    name: str
    description: str
    keywords: tuple[str, ...]
    build: Callable[..., Pipeline] = field(compare=False)
    #: Minimal kwargs that make a stand-alone ``instantiate`` meaningful,
    #: for templates with required parameters (e.g. decontamination's
    #: ``eval_items``).  Demo/validation use only — callers must still
    #: pass their real values; ``instantiate`` never merges these in.
    sample_args: dict = field(default_factory=dict, compare=False)

    def instantiate(self, **overrides: Any) -> Pipeline:
        """Build the pipeline, forwarding any overrides to the factory."""
        return self.build(**overrides)


# ---------------------------------------------------------------------------
# Template factories
# ---------------------------------------------------------------------------


def _pair_similarity_vectorize() -> Callable[[Any], Any]:
    """Feature map for the ER distillation student.

    Turns a ``{"left": record, "right": record}`` pipeline input into a
    Magellan-style per-attribute similarity vector.  Extractors are cached
    per attribute schema so mixed-schema inputs stay well formed.
    """
    from repro.ml.features import PairFeatureExtractor

    extractors: dict[tuple[str, ...], PairFeatureExtractor] = {}

    def vectorize(value: Any) -> Any:
        left = value.get("left", {}) if isinstance(value, dict) else {}
        right = value.get("right", {}) if isinstance(value, dict) else {}
        attributes = tuple(sorted(set(left) | set(right)))
        extractor = extractors.get(attributes)
        if extractor is None:
            extractor = PairFeatureExtractor(attributes)
            extractors[attributes] = extractor
        return extractor.transform_pair(left, right)

    return vectorize


def _entity_resolution_template(
    examples: list[tuple[Any, bool]] | None = None,
    task: str | None = None,
    instructions: str = "",
    error_policy: str | None = None,
    distill: bool = False,
    distill_config: dict[str, Any] | None = None,
) -> Pipeline:
    """Figure 2b: the built-in, well-optimized ER pipeline.

    The matcher is an LLM module with a curated task description; few-shot
    ``examples`` (record-pair, label) sharpen it further — the paper's
    "label efficient" story: a handful of examples, not thousands.
    ``error_policy="skip_record"`` makes the matcher quarantine poisoned
    pairs instead of aborting the run (chaos/production mode).
    ``distill=True`` attaches the optimizer's cost-minimizing distillation
    router to the matcher: a local classifier shadow-trains on the LLM's
    verdicts and takes over high-confidence pairs once its held-out
    accuracy clears the bar.
    """
    builder = PipelineBuilder(
        "entity_resolution_template",
        description="built-in entity resolution: load -> LLM match -> save",
    )
    params: dict[str, Any] = {"impl": "llm"}
    if examples:
        params["examples"] = examples
    if task:
        params["task"] = task
    if instructions:
        params["instructions"] = instructions
    if error_policy:
        params["error_policy"] = error_policy
    if distill:
        params["distill"] = True
        config = dict(distill_config or {})
        # The student that actually distils an LLM matcher is the Magellan
        # shape: a forest over per-attribute similarity features, not a
        # bag-of-hashed-tokens text model.
        config.setdefault("student", "forest")
        config.setdefault("vectorize", _pair_similarity_vectorize())
        config.setdefault("min_samples", 40)
        config.setdefault("accuracy_bar", 0.85)
        config.setdefault("confidence_threshold", 0.9)
        config.setdefault("refit_every", 20)
        params["distill_config"] = config
    return (
        builder.load(source="pairs")
        .match_entities(**params)
        .save(key="verdicts")
        .build()
    )


def _name_extraction_template(
    multilingual: bool = True,
    simulate_tagging: bool = False,
    noun_phrase_cases: list[TestCase] | None = None,
) -> Pipeline:
    """Figure 3: tokenize -> noun phrases (LLMGC) -> tag (LLM + validator).

    ``multilingual=True`` inserts the language-detection module the paper's
    section 4.2 adds to fix multilingual degradation; ``simulate_tagging``
    attaches the optimizer's simulator to the expensive tagging module.
    """
    if noun_phrase_cases is None:
        noun_phrase_cases = default_noun_phrase_cases()
    builder = PipelineBuilder(
        "name_extraction_template",
        description="name extraction with LLMGC chunking and LLM tagging",
    )
    builder.load(source="documents")
    builder.tokenize(impl="llmgc", validator_cases=default_tokenize_cases())
    if multilingual:
        builder.detect_language(impl="custom")
    builder.noun_phrases(impl="llmgc", validator_cases=noun_phrase_cases)
    tag_params: dict[str, Any] = {"use_language": multilingual}
    if simulate_tagging:
        tag_params["simulate"] = True
        tag_params["simulate_config"] = {
            "min_samples": 60,
            "agreement_threshold": 0.8,
            "confidence_threshold": 0.65,
            "refit_every": 30,
        }
    builder.tag_names(**tag_params)
    builder.save(key="documents")
    return builder.build()


def _data_imputation_template(
    guidelines: str = "",
    validator_cases: list[TestCase] | None = None,
) -> Pipeline:
    """Figure 4: the expert imputation pipeline (LLMGC hybrid + validator)."""
    if validator_cases is None:
        validator_cases = default_imputation_cases()
    return (
        PipelineBuilder(
            "data_imputation_template",
            description="imputation: cheap rules locally, LLM escalation for hard cases",
        )
        .load(source="records")
        .impute(
            impl="llmgc",
            guidelines=guidelines
            or (
                "Resolve products that mention their brand verbatim with "
                "local string rules; escalate only brand-less products to "
                "the LLM tool."
            ),
            validator_cases=validator_cases,
        )
        .save(key="imputed")
        .build()
    )


def _schema_matching_template() -> Pipeline:
    """Column matching between two schemas via the LLM."""
    return (
        PipelineBuilder(
            "schema_matching_template",
            description="schema matching: LLM column alignment",
        )
        .load(source="schemas")
        .add(OperatorKind.SCHEMA_MATCH, impl="llm", map=False)
        .save(key="matches")
        .build()
    )


def _data_cleaning_template() -> Pipeline:
    """Normalise text values then drop exact duplicates."""
    return (
        PipelineBuilder(
            "data_cleaning_template",
            description="cleaning: normalise values, dedupe records",
        )
        .load(source="values")
        .clean_text(impl="custom")
        .dedupe(impl="custom")
        .save(key="cleaned")
        .build()
    )


def _document_dedup_template(
    mode: str = "docs",
    examples: list[tuple[Any, bool]] | None = None,
    instructions: str = "",
    error_policy: str | None = None,
    num_perm: int | None = None,
    bands: int | None = None,
    rows: int | None = None,
    shingle_n: int | None = None,
    dual: bool = True,
) -> Pipeline:
    """Corpus deduplication: candidate generation + LLM pair verification.

    ``mode="docs"`` takes raw documents and runs the full flow — exact
    digests plus dual-pass MinHash/LSH candidate generation, then the LLM
    verifier over candidate pairs.  ``mode="pairs"`` takes pre-generated
    candidate pair records and runs only the verifier — the streaming shape
    (candidate generation is a whole-corpus kernel; the verifier map is the
    chunk-capable core ``run_stream`` shards).
    """
    from repro.core.compiler.curation import DEDUP_VERIFY_TASK

    if mode not in ("docs", "pairs"):
        raise ValueError(f"mode must be 'docs' or 'pairs', got {mode!r}")
    builder = PipelineBuilder(
        "document_dedup_template",
        description="corpus dedup: digest + MinHash/LSH candidates -> LLM verify",
    )
    match_params: dict[str, Any] = {"impl": "cascade", "task": DEDUP_VERIFY_TASK}
    if examples:
        match_params["examples"] = examples
    if instructions:
        match_params["instructions"] = instructions
    if error_policy:
        match_params["error_policy"] = error_policy
    if mode == "pairs":
        builder.load(source="pairs")
    else:
        candidate_params: dict[str, Any] = {"dual": dual}
        for key, value in (
            ("num_perm", num_perm), ("bands", bands),
            ("rows", rows), ("shingle_n", shingle_n),
        ):
            if value is not None:
                candidate_params[key] = value
        builder.load(source="documents")
        builder.dedup_candidates(**candidate_params)
    builder.match_entities(**match_params)
    builder.save(key="verdicts")
    return builder.build()


def _quality_filter_template(
    examples: list[tuple[Any, bool]] | None = None,
    instructions: str = "",
    error_policy: str | None = None,
    rule_lower: float | None = None,
    rule_upper: float | None = None,
    distill: bool = False,
    distill_config: dict[str, Any] | None = None,
) -> Pipeline:
    """Quality filtering as a classifier cascade (rules -> student -> LLM).

    The free surface heuristic answers documents outside its uncertainty
    band; the band escalates to the LLM teacher.  ``distill=True`` slots
    the optimizer's distillation router *between* the rules and the
    teacher, so escalations are progressively absorbed by a shadow-trained
    local classifier over the document text.
    """
    builder = PipelineBuilder(
        "quality_filter_template",
        description="corpus quality filter: rule cascade with LLM escalation",
    )
    params: dict[str, Any] = {"impl": "llm"}
    if examples:
        params["examples"] = examples
    if instructions:
        params["instructions"] = instructions
    if error_policy:
        params["error_policy"] = error_policy
    if rule_lower is not None:
        params["rule_lower"] = rule_lower
    if rule_upper is not None:
        params["rule_upper"] = rule_upper
    if distill:
        params["distill"] = True
        config = dict(distill_config or {})
        # The student reads the document text, not the record repr.
        config.setdefault(
            "featurize",
            lambda doc: str(doc.get("text", doc)) if isinstance(doc, dict) else str(doc),
        )
        config.setdefault("min_samples", 40)
        config.setdefault("accuracy_bar", 0.85)
        config.setdefault("confidence_threshold", 0.9)
        config.setdefault("refit_every", 20)
        params["distill_config"] = config
    return (
        builder.load(source="documents")
        .quality_filter(**params)
        .save(key="documents")
        .build()
    )


def _decontamination_template(
    eval_items: list[str] | None = None,
    examples: list[tuple[Any, str, bool]] | None = None,
    instructions: str = "",
    error_policy: str | None = None,
    hard_n: int | None = None,
    soft_n: int | None = None,
) -> Pipeline:
    """Benchmark decontamination: two-tier n-gram scan + LLM adjudication.

    ``eval_items`` (required) are the held-out benchmark sentences.  A
    verbatim *hard* n-gram hit flags the document for free; no *soft* hit
    clears it for free; the soft-only gray zone is adjudicated by the LLM
    against the specific eval item the scan attributed the overlap to.
    """
    if not eval_items:
        raise ValueError("decontamination template requires eval_items")
    builder = PipelineBuilder(
        "decontamination_template",
        description="decontamination: n-gram scan cascade with LLM adjudication",
    )
    params: dict[str, Any] = {"impl": "llm", "eval_items": list(eval_items)}
    if examples:
        params["examples"] = examples
    if instructions:
        params["instructions"] = instructions
    if error_policy:
        params["error_policy"] = error_policy
    if hard_n is not None:
        params["hard_n"] = hard_n
    if soft_n is not None:
        params["soft_n"] = soft_n
    return (
        builder.load(source="documents")
        .decontaminate(**params)
        .save(key="documents")
        .build()
    )


# ---------------------------------------------------------------------------
# Default validator cases (the "few example test cases" of section 3.2)
# ---------------------------------------------------------------------------


def default_tokenize_cases() -> list[TestCase]:
    """Test cases that force the tokenizer past the whitespace-split draft."""
    return [
        TestCase(
            "John met Mary.",
            ["John", "met", "Mary", "."],
            name="punctuation separated",
        ),
        TestCase("He said hi", ["He", "said", "hi"], name="plain words"),
    ]


def default_noun_phrase_cases() -> list[TestCase]:
    """Cases that force the chunker through both repair rounds."""
    return [
        TestCase(
            "Yesterday John Smith arrived.",
            ["John Smith"],
            name="sentence-initial function word",
        ),
        TestCase(
            "Maria de la Cruz spoke in Madrid.",
            ["Maria de la Cruz", "Madrid"],
            name="particles bridged",
        ),
        TestCase(
            "The report was fine.",
            [],
            name="no phrases in plain sentence",
        ),
    ]


def default_imputation_cases() -> list[TestCase]:
    """Cases that force the imputer to read descriptions and escalate."""
    return [
        TestCase(
            {"name": "Sony Walkman Headphones", "description": "portable audio"},
            "Sony",
            name="brand in name",
        ),
        TestCase(
            {
                "name": "Inspiron Notebook",
                "description": "Official Dell Notebook with full warranty.",
            },
            "Dell",
            name="brand in description",
        ),
        TestCase(
            {"name": "PlayStation Console", "description": "game console"},
            "Sony",
            name="world knowledge (escalation)",
        ),
    ]


# ---------------------------------------------------------------------------
# Registry and search
# ---------------------------------------------------------------------------

_TEMPLATES: dict[str, Template] = {
    template.name: template
    for template in (
        Template(
            name="entity_resolution",
            description=(
                "Decide which record pairs refer to the same real-world "
                "entity (deduplication, record linkage, matching)."
            ),
            keywords=(
                "entity", "resolution", "match", "matching", "duplicate",
                "dedupe", "linkage", "same", "records", "merge",
            ),
            build=_entity_resolution_template,
        ),
        Template(
            name="name_extraction",
            description=(
                "Find all person names in text passages (tokenize, extract "
                "noun phrases, tag names; multilingual aware)."
            ),
            keywords=(
                "name", "names", "person", "extraction", "extract", "ner",
                "text", "multilingual", "tag",
            ),
            build=_name_extraction_template,
        ),
        Template(
            name="data_imputation",
            description=(
                "Fill in missing attribute values such as a product's "
                "manufacturer (imputation, missing data, repair)."
            ),
            keywords=(
                "impute", "imputation", "missing", "fill", "manufacturer",
                "value", "repair", "complete",
            ),
            build=_data_imputation_template,
        ),
        Template(
            name="schema_matching",
            description="Align columns between two table schemas by meaning.",
            keywords=("schema", "column", "matching", "align", "integration"),
            build=_schema_matching_template,
        ),
        Template(
            name="data_cleaning",
            description="Normalise messy text values and drop duplicates.",
            keywords=("clean", "cleaning", "normalise", "normalize", "dedupe", "messy"),
            build=_data_cleaning_template,
        ),
        Template(
            name="document_dedup",
            description=(
                "Remove duplicate documents from a training corpus "
                "(exact hashes, MinHash/LSH near-duplicate candidates, "
                "LLM pair verification)."
            ),
            keywords=(
                "corpus", "dedup", "deduplication", "duplicate", "documents",
                "minhash", "lsh", "near-duplicate", "fuzzy",
            ),
            build=_document_dedup_template,
        ),
        Template(
            name="quality_filter",
            description=(
                "Filter a training corpus down to high-quality documents "
                "(heuristic rules with LLM escalation for the gray zone)."
            ),
            keywords=(
                "quality", "filter", "filtering", "corpus", "documents",
                "junk", "boilerplate", "cascade",
            ),
            build=_quality_filter_template,
        ),
        Template(
            name="decontamination",
            description=(
                "Find documents that leak held-out benchmark items into a "
                "training corpus (n-gram scan plus LLM adjudication)."
            ),
            keywords=(
                "decontamination", "decontaminate", "contamination",
                "benchmark", "leak", "eval", "overlap", "ngram",
            ),
            build=_decontamination_template,
            sample_args={
                "eval_items": ["which brewery released the sample batch?"]
            },
        ),
    )
}


def available_templates() -> list[Template]:
    """All built-in templates, sorted by name."""
    return [_TEMPLATES[name] for name in sorted(_TEMPLATES)]


def get_template(name: str) -> Template:
    """Fetch a template by exact name."""
    if name not in _TEMPLATES:
        raise KeyError(f"no template named {name!r}; have {sorted(_TEMPLATES)}")
    return _TEMPLATES[name]


def search_templates(query: str, limit: int = 3) -> list[tuple[Template, float]]:
    """Rank templates against an NL ``query`` by keyword/description overlap.

    This is the no-code entry point: "users can easily search for existing
    templates within the system" (section 4.1).
    """
    tokens = {t.lower() for t in word_tokenize(query)}
    scored: list[tuple[Template, float]] = []
    for template in available_templates():
        keyword_hits = len(tokens & set(template.keywords))
        description_hits = len(
            tokens & {t.lower() for t in word_tokenize(template.description)}
        )
        score = keyword_hits * 2.0 + description_hits * 0.5
        if score > 0:
            scored.append((template, score))
    scored.sort(key=lambda pair: (-pair[1], pair[0].name))
    return scored[:limit]
