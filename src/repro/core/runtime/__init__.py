"""Runtime facade: system object, concurrent scheduler, run checkpoints."""

from repro.core.runtime.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    RunCheckpoint,
)
from repro.core.runtime.scheduler import Scheduler
from repro.core.runtime.system import LinguaManga

__all__ = [
    "LinguaManga",
    "Scheduler",
    "RunCheckpoint",
    "CheckpointJournal",
    "CheckpointError",
    "CheckpointMismatchError",
]
