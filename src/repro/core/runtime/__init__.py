"""Runtime facade: system, scheduler, checkpoints, streaming work queue."""

from repro.core.runtime.cancel import CancelToken, JobCancelled
from repro.core.runtime.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    RunCheckpoint,
)
from repro.core.runtime.scheduler import Scheduler
from repro.core.runtime.system import LinguaManga
from repro.core.runtime.workqueue import (
    Lease,
    PoisonInfo,
    ShardLedger,
    StreamingExecutor,
    StreamingPlanError,
    WorkQueue,
)

__all__ = [
    "LinguaManga",
    "Scheduler",
    "CancelToken",
    "JobCancelled",
    "RunCheckpoint",
    "CheckpointJournal",
    "CheckpointError",
    "CheckpointMismatchError",
    "ShardLedger",
    "WorkQueue",
    "Lease",
    "PoisonInfo",
    "StreamingExecutor",
    "StreamingPlanError",
]
