"""Runtime facade: the single object user code talks to."""

from repro.core.runtime.system import LinguaManga

__all__ = ["LinguaManga"]
