"""Runtime facade: the system object plus the concurrent scheduler."""

from repro.core.runtime.scheduler import Scheduler
from repro.core.runtime.system import LinguaManga

__all__ = ["LinguaManga", "Scheduler"]
