"""The concurrent batched execution engine.

The plan executor walks records one operator at a time, but inside one
operator there is no reason to walk records one *thread* at a time: the LLM
provider is the dominant latency source, and independent record chunks can
be in flight simultaneously.  :class:`Scheduler` partitions an operator's
list input into fixed-size record chunks and runs them on a bounded worker
pool, then merges everything back **in chunk order**, which is what makes
parallel runs reproducible:

- every chunk executes inside an :meth:`LLMService.scoped` call scope — a
  private ledger buffer plus a shadow virtual clock frozen at the
  operator-entry time — so ledger records never interleave across threads;
- scopes, quarantined records and degraded counts are merged in chunk
  index order, not thread completion order;
- chunk boundaries depend only on ``chunk_size`` (never on ``workers``),
  so the same run at 1, 2 or 8 workers produces the same chunks;
- after the merge, the new ledger slice is **canonicalised**: within each
  group of records for the same prompt, served records are ordered before
  cache hits, erasing the only observable trace of which thread happened
  to win a request-coalescing race.

The result is the determinism contract the test suite pins down: with a
deterministic provider stack (and content-keyed chaos, if any), the same
seed and fault spec yield byte-identical canonical run reports at any
worker count.

Modules opt in via ``chunk_capable`` + ``apply_chunk`` and can veto
parallel execution for themselves or any wrapped child with
``parallel_safe = False`` (online learners, self-repairing codegen).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.core.modules.base import ChunkOutcome, Module
from repro.llm.service import CallScope, LLMService
from repro.resilience.clock import VirtualClock

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "partition",
    "iter_chunks",
    "resolve_chunk_size",
    "tree_parallel_safe",
    "canonicalize_ledger",
    "Scheduler",
]

#: Default records per chunk.  Chunk boundaries are part of the observable
#: execution (they decide batch-prime groups), so this must never be
#: derived from the worker count.
DEFAULT_CHUNK_SIZE = 8

#: Attribute names under which wrapper modules expose wrapped children.
_CHILD_ATTRIBUTES = ("inner", "stage", "fallback", "teacher", "primary", "wrapper")


def partition(values: Sequence[Any], chunk_size: int) -> list[list[Any]]:
    """Split ``values`` into consecutive chunks of ``chunk_size``.

    The last chunk may be short.  Deterministic and independent of the
    worker count by construction.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    return [
        list(values[start : start + chunk_size])
        for start in range(0, len(values), chunk_size)
    ]


def iter_chunks(values, chunk_size: int):
    """Lazily chunk any iterable: the streaming analogue of :func:`partition`.

    Pulls at most ``chunk_size`` records ahead of the consumer, so an
    out-of-core source (a generator over millions of records) is never
    materialized.  Chunk boundaries depend only on ``chunk_size``, exactly
    as :func:`partition`'s do.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    chunk: list[Any] = []
    for value in values:
        chunk.append(value)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def resolve_chunk_size(module: Module, chunk_size: int | None = None) -> int:
    """The chunk size one operator actually runs with.

    Shared by the batch scheduler and the streaming executor so both
    engines cut identical shard boundaries: an explicit ``chunk_size``
    wins, then the autotuner's ``tuned_chunk_size`` (set only for runs
    where chunk boundaries are provably output-neutral), then the module's
    ``preferred_chunk_size``, then :data:`DEFAULT_CHUNK_SIZE`.
    """
    if chunk_size is not None:
        return chunk_size
    if module.tuned_chunk_size is not None:
        return module.tuned_chunk_size
    if module.preferred_chunk_size is not None:
        return module.preferred_chunk_size
    return DEFAULT_CHUNK_SIZE


def tree_parallel_safe(module: Module) -> bool:
    """Whether ``module`` and every wrapped child tolerate parallelism."""
    if not module.parallel_safe:
        return False
    for attribute in _CHILD_ATTRIBUTES:
        child = getattr(module, attribute, None)
        if isinstance(child, Module) and not tree_parallel_safe(child):
            return False
    children = getattr(module, "stages", None)
    if isinstance(children, (list, tuple)):
        for child in children:
            if isinstance(child, Module) and not tree_parallel_safe(child):
                return False
    return True


def _canonical_rank(record) -> int:
    """Within one same-prompt group, the order sequential execution produces.

    The record that *originated* the answer precedes the exact-cache hits
    it feeds: a provider call first, then a near-duplicate donor, then a
    distilled answer, then plain exact hits.
    """
    if not record.cached:
        return 0
    provenance = getattr(record, "provenance", "")
    if provenance == "cache-near":
        return 1
    if provenance == "distilled":
        return 2
    return 3


def canonicalize_ledger(records: list, mark: int) -> None:
    """Normalise coalescing races in ``records[mark:]`` in place.

    Sequential execution always serves the *first* occurrence of a prompt
    and answers later duplicates from the cache.  Under coalescing, the
    thread that wins leadership may belong to a later chunk, leaving the
    originating record (a provider call or a near-duplicate cache hit) at
    a later position.  Within each same-prompt group this reorders records
    so originating entries precede exact-cache hits (stable otherwise),
    restoring the sequential shape byte for byte.
    """
    tail = records[mark:]
    groups: dict[str, list[int]] = {}
    for index, record in enumerate(tail):
        groups.setdefault(record.prompt, []).append(index)
    changed = False
    for indices in groups.values():
        if len(indices) < 2:
            continue
        group = [tail[i] for i in indices]
        reordered = sorted(group, key=_canonical_rank)  # stable
        if reordered != group:
            for i, record in zip(indices, reordered):
                tail[i] = record
            changed = True
    if changed:
        records[mark:] = tail


class Scheduler:
    """Bounded worker pool with deterministic chunk-order merging.

    Parameters
    ----------
    workers:
        Maximum concurrent chunks.  ``1`` runs chunks inline (no threads)
        but through the *same* scope/merge machinery, so results are
        byte-identical to any higher worker count.
    chunk_size:
        Records per chunk; ``None`` defers to the module's
        ``preferred_chunk_size`` and then :data:`DEFAULT_CHUNK_SIZE`.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int | None = None,
        cancel: "Any | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.chunk_size = chunk_size
        #: optional :class:`~repro.core.runtime.cancel.CancelToken`; checked
        #: before every chunk so a cancelled job unwinds at a journal-valid
        #: boundary instead of mid-provider-call.
        self.cancel = cancel

    def _chunk_size_for(self, module: Module) -> int:
        return resolve_chunk_size(module, self.chunk_size)

    def should_chunk(self, module: Module, value: Any) -> bool:
        """Whether ``value`` can be split for ``module``."""
        return (
            isinstance(value, list)
            and len(value) > 1
            and module.chunk_capable
            and tree_parallel_safe(module)
        )

    def run_operator(
        self, module: Module, value: Any, service: LLMService, op_ctx=None
    ) -> Any:
        """Execute one operator, chunked and parallel where possible.

        Falls back to a plain ``module.run(value)`` for non-list inputs
        and modules that are not chunk-capable (or not parallel-safe).

        ``op_ctx`` is a checkpoint :class:`~repro.core.runtime.checkpoint.
        OperatorContext`: committed chunks from a prior crashed run are
        replayed verbatim (their ledger records re-warm the exact cache
        before any live chunk executes, so live chunks hit exactly what
        they originally hit), remaining chunks run live and are journalled
        write-ahead the moment they finish, and the named crash boundaries
        ``chunk:entered`` / ``chunk:executed`` / ``chunk:journaled`` are
        announced around each live chunk.
        """
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()
        if not self.should_chunk(module, value):
            return module.run(value)

        chunks = partition(value, self._chunk_size_for(module))
        completed = {}
        if op_ctx is not None:
            completed = op_ctx.replayable_chunks([len(chunk) for chunk in chunks])
            if completed:
                # Cache warming must precede any live execution: a live
                # chunk that originally hit the cache would otherwise
                # re-pay the provider and break byte-identical resume.
                service.restore_from_records(
                    [
                        record
                        for index in sorted(completed)
                        for record in completed[index].records
                    ]
                )
        base = service.clock.now
        mark = len(service.records)
        started = time.perf_counter()
        with module._lock:
            module.stats.invocations += 1
        obs = getattr(service, "obs", None)
        if obs is not None:
            obs.metrics.counter("scheduler.chunked_operators").inc()
            obs.metrics.counter("scheduler.chunks").inc(len(chunks))
            from repro.obs.metrics import DEFAULT_SIZE_BUCKETS

            sizes = obs.metrics.histogram(
                "scheduler.chunk_records", DEFAULT_SIZE_BUCKETS
            )
            for chunk in chunks:
                sizes.observe(len(chunk))

        def task(index: int, chunk: list[Any]) -> tuple[CallScope, ChunkOutcome]:
            if self.cancel is not None:
                self.cancel.raise_if_cancelled()
            if op_ctx is not None:
                op_ctx.crash("chunk:entered")
            with service.scoped(base) as scope:
                outcome = module.apply_chunk(chunk)
            if op_ctx is not None:
                op_ctx.crash("chunk:executed")
                op_ctx.record_chunk(index, chunk, scope, outcome)
                op_ctx.crash("chunk:journaled")
            return scope, outcome

        pending = [index for index in range(len(chunks)) if index not in completed]
        live: dict[int, tuple[CallScope, ChunkOutcome]] = {}
        try:
            if self.workers == 1 or len(pending) <= 1:
                for index in pending:
                    live[index] = task(index, chunks[index])
            else:
                pool_size = min(self.workers, len(pending))
                with ThreadPoolExecutor(
                    max_workers=pool_size, thread_name_prefix="repro-sched"
                ) as pool:
                    futures = {
                        index: pool.submit(task, index, chunks[index])
                        for index in pending
                    }
                    for index, future in futures.items():
                        live[index] = future.result()
        except Exception:
            with module._lock:
                module.stats.failures += 1
                module.stats.total_seconds += time.perf_counter() - started
            raise

        outputs: list[Any] = []
        tracer = obs.tracer if obs is not None else None
        for index in range(len(chunks)):
            replayed = index in completed
            if replayed:
                replay = completed[index]
                scope = CallScope(
                    base=0.0,
                    clock=VirtualClock(replay.elapsed),
                    records=list(replay.records),
                )
                outcome = ChunkOutcome(
                    outputs=list(replay.outputs),
                    quarantine=list(replay.quarantine),
                    degraded=replay.degraded,
                )
            else:
                scope, outcome = live[index]
            service.merge_scope(scope)
            with module._lock:
                module.quarantine.extend(outcome.quarantine)
                module.stats.quarantined += len(outcome.quarantine)
                module.stats.degraded += outcome.degraded
            outputs.extend(outcome.outputs)
            if tracer is not None and tracer.enabled:
                # Chunk spans carry structure, not latency: which chunk pays
                # a coalesced call's wait is racy, so they pin the
                # operator-entry timestamp and deterministic counts only.
                tracer.add_span(
                    f"chunk[{index}]",
                    kind="chunk",
                    start=base,
                    records=len(chunks[index]),
                    outputs=len(outcome.outputs),
                    quarantined=len(outcome.quarantine),
                    degraded=outcome.degraded,
                )
            if op_ctx is not None:
                op_ctx.note_chunk(
                    index,
                    records=len(chunks[index]),
                    outputs=len(outcome.outputs),
                    quarantined=len(outcome.quarantine),
                    degraded=outcome.degraded,
                    replayed=replayed,
                )
        with service._lock:
            canonicalize_ledger(service.records, mark)
        with module._lock:
            module.stats.total_seconds += time.perf_counter() - started
        return outputs
