"""Cooperative cancellation for long-lived runs.

The serving layer (:mod:`repro.serve`) owns jobs that may be cancelled by a
tenant or torn down by a server shutdown while an execution is deep inside
the scheduler.  Cancellation is **cooperative and boundary-aligned**: a
:class:`CancelToken` is threaded through ``system.run`` → ``plan.execute``
→ the scheduler, which checks it between operators and before every record
chunk.  Raising only at those boundaries keeps a checkpointed run's
write-ahead journal valid — everything journalled before the cancel is a
replayable prefix, so a cancelled job with a checkpoint is *resumable*,
not lost.

:class:`JobCancelled` derives from :class:`BaseException` for the same
reason :class:`~repro.llm.faults.CrashInjected` does: record-quarantine
policies catch ``Exception`` broadly, and a cancellation must unwind the
run rather than be absorbed as one more poisoned record.
"""

from __future__ import annotations

import threading

__all__ = ["JobCancelled", "CancelToken"]


class JobCancelled(BaseException):
    """Raised at the next execution boundary after a token is cancelled."""

    def __init__(self, reason: str = "cancelled"):
        super().__init__(reason)
        self.reason = reason


class CancelToken:
    """A thread-safe cancellation flag checked at execution boundaries.

    ``cancel()`` may be called from any thread (an HTTP handler, a server
    shutdown path); the run that holds the token observes it at its next
    operator or chunk boundary and unwinds with :class:`JobCancelled`.
    ``reason`` distinguishes a tenant cancel from a server kill so the job
    store can record the right terminal state.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; idempotent (the first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    @property
    def reason(self) -> str:
        """Why the token was cancelled (meaningful once ``cancelled``)."""
        return self._reason

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancellation is requested; returns whether it was.

        Lets a test (or a shutdown path) sequence "cancellation has been
        observed-able" before releasing whatever the run is blocked on,
        without polling.
        """
        return self._event.wait(timeout)

    def raise_if_cancelled(self) -> None:
        """Raise :class:`JobCancelled` when cancellation was requested."""
        if self._event.is_set():
            raise JobCancelled(self._reason)
