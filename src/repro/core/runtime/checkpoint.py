"""Crash-safe checkpoint/resume: the write-ahead run journal.

A long curation run must survive process death without re-paying the LLM:
the ROADMAP's production north star, and the reproducibility stance that
DataDreamer-style resumable workflows make first-class.  This module turns
the crash-tolerant *cache* of PR 3 into a crash-tolerant *system* by
journalling execution itself, write-ahead, beside the cache journal.

The journal is JSONL with three record types:

- ``header`` — written once, before any work: the plan/config
  **fingerprint** (:meth:`PhysicalPlan.fingerprint`), the virtual clock at
  execute begin, and key digests describing the prompt-cache state
  (both tiers) at that instant.  Resume refuses a journal whose
  fingerprint does not match the recompiled plan, and rewinds the cache to
  the recorded state — a crashed run keeps appending to the *cache*
  journal right up to the kill, and serving those extra entries early
  would make the resumed report cheaper than the uninterrupted one
  instead of byte-identical.
- ``chunk`` — written by a scheduler worker the moment one record chunk
  finishes: the chunk's raw (pre-canonicalization) ledger records, its
  scope's virtual elapsed time, outputs, quarantine decisions and degraded
  count.  Chunk lines make *partially executed operators* resumable at
  chunk granularity.
- ``op`` — written by the plan executor when an operator fully commits:
  the canonical ledger slice, the absolute clock at commit (absolute, not
  a delta, so replay is float-exact), encoded outputs, quarantine,
  module-stats deltas and per-chunk span summaries.  ``op`` records
  supersede their ``chunk`` lines on resume.

Resume replays committed operators (and committed chunks of the operator
in flight) *verbatim from the journal* — ledger records are re-inserted,
not re-requested, so completed work costs zero provider calls — then warms
the exact cache tier from the replayed records and hands the scheduler only
the remaining chunks.  Because replay re-inserts the exact bytes the
original run produced, merged in the same chunk order and canonicalized by
the same pass, a resumed :class:`RunReport` (cost, profile, trace) is
byte-identical to an uninterrupted run at any worker count.

There is deliberately no RNG snapshot in the header: every random decision
in the system (simulated responses, chaos fault draws, retry jitter) is a
stable content hash, not a stateful generator, so the virtual clock is the
only mutable time state a resume must restore.  The one stateful exception
— :class:`~repro.llm.faults.ChaosProvider` attempt counters — is captured
per operator commit via ``fault_state()``.

Durability is group-committed: every append flushes synchronously (an
acknowledged line always survives a *process* crash), while fsyncs — the
power-loss guard — are batched.  A ``durable`` append (header, ``op``
commit) fsyncs only when ``fsync_interval`` seconds have passed since the
last fsync, plain appends batch per ``fsync_every``, and ``close`` settles
anything deferred.  A torn final line — the classic crash-mid-write
artifact — is detected on load, truncated away and counted, never raised.
"""

from __future__ import annotations

import hashlib
import json
import operator as operator_module
import os
import threading
import time
from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Any, Iterable

from repro.core.modules.base import QuarantinedRecord
from repro.llm.service import CallRecord, CallScope, LLMService
from repro.resilience.clock import VirtualClock

try:  # pre-installed accelerator; journal bytes never require it
    import orjson as _orjson
except ImportError:  # pragma: no cover - exercised via the fallback paths
    _orjson = None

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointMismatchError",
    "UnserializableValueError",
    "encode_value",
    "decode_value",
    "ReplayedValue",
    "CheckpointJournal",
    "ChunkReplay",
    "OperatorReplay",
    "OperatorContext",
    "CheckpointStats",
    "RunCheckpoint",
    "fingerprint_payload",
    "digest_inputs",
]

#: Bumped whenever the journal schema changes; resume refuses other versions.
JOURNAL_FORMAT_VERSION = 1

#: Default number of appends between fsyncs (commits always fsync).
DEFAULT_FSYNC_EVERY = 8

#: Group-commit window: a durable append skips the fsync when one already
#: happened this recently (close() settles the remainder).  Bounds the
#: power-loss exposure, not process-crash safety — flushes are synchronous.
DEFAULT_FSYNC_INTERVAL = 0.05


class CheckpointError(RuntimeError):
    """The run journal is unusable (corrupt header, wrong schema, reuse)."""


class CheckpointMismatchError(CheckpointError):
    """The journal describes a different plan, inputs or configuration."""


class UnserializableValueError(CheckpointError):
    """An operator output cannot be round-tripped through the journal.

    Not fatal: the chunk/operator is journalled as non-replayable and a
    resume re-executes it from scratch — provider cost is re-paid for that
    operator, but the report stays byte-identical because the re-execution
    sees exactly the cache state the original first execution saw.
    """


# -- value codec ------------------------------------------------------------------

_TAG = "__ckpt__"


_SCALAR_TYPES = frozenset((str, int, bool, float, type(None)))


def _is_plain_json(value: Any) -> bool:
    """One non-allocating pass deciding whether encoding would be a no-op.

    The common case — operator outputs made of scalars, lists and
    str-keyed dicts — needs no escape forms, so :func:`encode_value` can
    return the value as-is instead of rebuilding every container.  Exact
    ``type()`` membership keeps the scan cheap; exotic subclasses just
    fall back to the rebuilding path.
    """
    scalars = _SCALAR_TYPES
    stack = [value]
    while stack:
        item = stack.pop()
        kind = type(item)
        if kind in scalars:
            continue
        if kind is list:
            stack.extend(item)
        elif kind is dict:
            for key, child in item.items():
                if type(key) is not str or key == _TAG:
                    return False
                if type(child) not in scalars:
                    stack.append(child)
        else:
            return False
    return True


def encode_value(value: Any) -> Any:
    """JSON-safe encoding of an operator output value.

    Plain JSON types pass through; tuples and dicts with non-string keys
    get tagged escape forms so :func:`decode_value` round-trips them to
    equal values.  Anything else raises :class:`UnserializableValueError`.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if _is_plain_json(value):
        return value
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        if _TAG not in value and all(isinstance(key, str) for key in value):
            return {key: encode_value(item) for key, item in value.items()}
        return {
            _TAG: "dict",
            "v": [[encode_value(key), encode_value(item)] for key, item in value.items()],
        }
    raise UnserializableValueError(
        f"cannot journal a value of type {type(value).__name__}; "
        "only JSON types, tuples and dicts round-trip"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag == "tuple":
            return tuple(decode_value(item) for item in value["v"])
        if tag == "dict":
            return {decode_value(key): decode_value(item) for key, item in value["v"]}
        return {key: decode_value(item) for key, item in value.items()}
    return value


class ReplayedValue:
    """Stand-in for a quarantined record object on replay.

    Only ``repr(record)`` crosses the journal (that is all the canonical
    report renders), so replay substitutes an object whose repr is the
    recorded text byte for byte.
    """

    __slots__ = ("_repr",)

    def __init__(self, repr_text: str):
        self._repr = repr_text

    def __repr__(self) -> str:
        return self._repr

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReplayedValue) and other._repr == self._repr

    def __hash__(self) -> int:
        return hash(self._repr)


# -- journal file -----------------------------------------------------------------


def _dump_line(record: dict) -> bytes:
    """Encode one compact JSONL line (orjson when present, else stdlib)."""
    if _orjson is not None:
        try:
            return _orjson.dumps(record) + b"\n"
        except TypeError:
            pass  # non-str keys, inf/nan, ...: stdlib json is more lenient
    return (
        json.dumps(record, ensure_ascii=False, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _parse_line(line: bytes) -> Any:
    """Decode one JSONL line; raises ValueError/UnicodeDecodeError on junk."""
    if _orjson is not None:
        return _orjson.loads(line)
    return json.loads(line.decode("utf-8"))


class CheckpointJournal:
    """Append-only fsync-batched JSONL file with torn-tail recovery.

    Thread safe: scheduler workers append chunk records concurrently.
    ``torn_bytes`` reports how many trailing bytes the last :meth:`load`
    discarded (0 for a clean journal) — a crash mid-write is an expected
    artifact, detected and truncated rather than raised.
    """

    def __init__(
        self,
        path: str | Path,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
    ):
        self.path = Path(path)
        self.fsync_every = max(1, int(fsync_every))
        self.fsync_interval = max(0.0, float(fsync_interval))
        self.torn_bytes = 0
        self._handle = None
        self._pending = 0
        self._last_fsync = 0.0
        self._fsync_thread: threading.Thread | None = None
        self._fsync_wake = threading.Event()
        self._closing = False
        self._lock = threading.Lock()

    def load(self) -> list[dict]:
        """Parse every intact record; truncate a torn or corrupt tail.

        A line is intact when it is newline-terminated and parses as a
        JSON object.  The first violation marks the torn tail: it and
        everything after it are truncated from the file (the bytes were
        never acknowledged, so dropping them is exactly what replaying a
        real crash requires) and counted in ``torn_bytes``.
        """
        self.torn_bytes = 0
        if not self.path.exists():
            return []
        data = self.path.read_bytes()
        records: list[dict] = []
        offset = 0
        good_end = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break  # unterminated final line: torn mid-write
            line = data[offset:newline]
            if line.strip():
                try:
                    record = _parse_line(line)
                except (ValueError, UnicodeDecodeError):
                    break  # corrupt record: discard it and everything after
                if not isinstance(record, dict):
                    break
                records.append(record)
            offset = newline + 1
            good_end = offset
        if good_end < len(data):
            self.torn_bytes = len(data) - good_end
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
        return records

    def append(self, record: dict, durable: bool = False) -> None:
        """Write one record: flush always, fsync by group commit.

        The flush is synchronous, so every acknowledged append survives a
        *process* crash.  fsyncs — which guard against power loss — are
        group-committed: a ``durable`` append only pays one if more than
        ``fsync_interval`` seconds elapsed since the last (the first ever
        append always does), and plain appends batch per ``fsync_every``.
        :meth:`close` settles whatever the interval deferred.
        """
        line = _dump_line(record)
        with self._lock:
            if self._handle is None:
                if self.path.parent and not self.path.parent.exists():
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "ab")
            self._handle.write(line)
            self._handle.flush()
            self._pending += 1
            due = time.monotonic() - self._last_fsync >= self.fsync_interval
            if (durable and due) or self._pending >= self.fsync_every:
                self._fsync_locked()

    def _fsync_locked(self) -> None:
        """Kick one group commit on the journal's background sync thread.

        ``os.fsync`` releases the GIL and a buffered flush already
        happened, so the commit costs the run nothing; wakes already
        coalesce (a sync in flight covers everything flushed before it —
        standard group commit).  One long-lived thread per journal: a
        spawn per commit costs more in interpreter lock waits than the
        fsync itself.  :meth:`close` settles the stragglers inline.
        """
        if self._fsync_thread is None:
            self._fsync_thread = threading.Thread(
                target=self._fsync_loop, daemon=True
            )
            self._fsync_thread.start()
        self._fsync_wake.set()
        self._pending = 0
        self._last_fsync = time.monotonic()

    def _fsync_loop(self) -> None:
        while True:
            self._fsync_wake.wait()
            self._fsync_wake.clear()
            with self._lock:
                if self._closing or self._handle is None:
                    return
                descriptor = self._handle.fileno()
            try:
                os.fsync(descriptor)
            except OSError:  # pragma: no cover - close() fsyncs inline anyway
                return

    def close(self) -> None:
        """fsync everything, then release the handle (idempotent).

        Once ``close`` returns, every append is on disk — the final inline
        fsync settles whatever the group-commit window deferred.
        """
        with self._lock:
            self._closing = True
            sync_thread, self._fsync_thread = self._fsync_thread, None
        if sync_thread is not None:
            self._fsync_wake.set()
            sync_thread.join()
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
                self._pending = 0
            self._closing = False
            self._fsync_wake.clear()

    def delete(self) -> None:
        """Close and remove the journal file, if present."""
        self.close()
        if self.path.exists():
            self.path.unlink()


# -- decoded journal records ------------------------------------------------------


@dataclass
class ChunkReplay:
    """One journalled chunk, decoded and ready to merge in chunk order."""

    index: int
    n_records: int
    records: list[CallRecord]
    elapsed: float
    outputs: list[Any]
    quarantine: list[QuarantinedRecord]
    degraded: int


@dataclass
class OperatorReplay:
    """One committed operator, decoded for zero-cost replay."""

    index: int
    name: str
    records: list[CallRecord]
    clock_end: float
    outputs: Any
    quarantine: list[QuarantinedRecord]
    stats_delta: dict[str, int]
    tree_degraded: int
    chunk_summaries: list[dict]
    fault_state: dict | None


@dataclass
class CheckpointStats:
    """What one checkpointed execution replayed, journalled and repaired."""

    resumed: bool = False
    replayed_operators: int = 0
    replayed_chunks: int = 0
    journaled_chunks: int = 0
    replayed_records: int = 0
    cache_entries_pruned: int = 0
    torn_bytes: int = 0


# CallRecord is a flat dataclass of scalars: one attrgetter call per
# record (a single C call, vs dataclasses.asdict's recursive deepcopy —
# the single hottest line in a checkpointed run) snapshots every field.
_RECORD_FIELDS = tuple(field.name for field in dataclass_fields(CallRecord))
_RECORD_GETTER = operator_module.attrgetter(*_RECORD_FIELDS)
_PROMPT_COLUMN = _RECORD_FIELDS.index("prompt") if "prompt" in _RECORD_FIELDS else -1

#: Minimum shared-prompt length worth factoring out of a record block.
_MIN_PROMPT_PREFIX = 32


def _common_prefix(strings: list[str]) -> str:
    """Longest common prefix, via C-speed comparisons.

    The lexicographic min and max bound every other string, and the split
    point is found by bisection on ``startswith`` — unlike
    ``os.path.commonprefix``, no Python-level per-character loop (prompt
    preambles run to kilobytes).
    """
    lo, hi = min(strings), max(strings)
    limit = min(len(lo), len(hi))
    if lo[:limit] == hi[:limit]:
        return lo[:limit]
    left, right = 0, limit
    while left < right:
        mid = (left + right + 1) // 2
        if hi.startswith(lo[:mid]):
            left = mid
        else:
            right = mid - 1
    return lo[:left]


def _encode_records(records: Iterable[CallRecord]) -> dict:
    """Encode one journal line's ledger records, columnar, prefix-shared.

    The block is ``{"fields": [...], "rows": [[...], ...]}`` — field names
    once per line instead of once per record.  Records in a line come from
    one operator, so their prompts repeat the same instructions-plus-
    examples preamble — close to 90% of journal bytes; a worthwhile common
    prefix is factored into ``prompt_prefix`` with per-record suffixes.
    """
    rows = [list(_RECORD_GETTER(record)) for record in records]
    block: dict = {"fields": list(_RECORD_FIELDS), "rows": rows}
    if len(rows) > 1 and _PROMPT_COLUMN >= 0:
        prompts = [row[_PROMPT_COLUMN] for row in rows]
        if all(type(prompt) is str for prompt in prompts):
            prefix = _common_prefix(prompts)
            if len(prefix) >= _MIN_PROMPT_PREFIX:
                cut = len(prefix)
                for row in rows:
                    row[_PROMPT_COLUMN] = row[_PROMPT_COLUMN][cut:]
                block["prompt_prefix"] = prefix
    return block


def _decode_records(raw: Iterable[dict] | dict) -> list[CallRecord]:
    if isinstance(raw, dict):
        fields = raw["fields"]
        prefix = raw.get("prompt_prefix")
        records = []
        for row in raw["rows"]:
            item = dict(zip(fields, row))
            if prefix is not None:
                item["prompt"] = prefix + item["prompt"]
            records.append(CallRecord(**item))
        return records
    return [CallRecord(**item) for item in raw]


def _encode_quarantine(quarantine: Iterable[QuarantinedRecord]) -> list[dict]:
    return [
        {"record": repr(item.record), "module": item.module_name, "error": item.error}
        for item in quarantine
    ]


def _decode_quarantine(raw: Iterable[dict]) -> list[QuarantinedRecord]:
    return [
        QuarantinedRecord(
            record=ReplayedValue(item["record"]),
            module_name=item["module"],
            error=item["error"],
        )
        for item in raw
    ]


# -- per-operator scheduler context ----------------------------------------------


class OperatorContext:
    """The scheduler's handle on the checkpoint for one live operator.

    Carries the operator's already-committed chunks in, collects per-chunk
    span summaries out (for the eventual ``op`` commit record), journals
    finished chunks and announces crash boundaries.
    """

    def __init__(self, checkpoint: "RunCheckpoint", index: int, name: str):
        self.checkpoint = checkpoint
        self.index = index
        self.name = name
        self.chunk_summaries: list[dict] = []
        self._journalled = checkpoint._chunks.get(index, {})
        self._recorded: set[int] = set(self._journalled)
        self._replayable: set[int] = {
            chunk_index
            for chunk_index, raw in self._journalled.items()
            if raw.get("replayable", False)
        }
        self._n_chunks: int | None = None

    @property
    def records_in_chunks(self) -> bool:
        """Whether every ledger record of this operator is in a chunk line.

        True once the chunked path journalled (or inherited) a line for
        every chunk — the ``op`` commit then stores only the record *count*
        and reconstructs the canonical slice from the chunk lines on
        resume, instead of re-embedding every prompt a second time (the
        single largest journal cost).
        """
        return self._n_chunks is not None and self._recorded >= set(
            range(self._n_chunks)
        )

    @property
    def outputs_in_chunks(self) -> bool:
        """Whether every chunk line also carries replayable outputs.

        Stronger than :attr:`records_in_chunks`: the chunk merge is a
        plain concatenation in chunk order, so the ``op`` commit can skip
        encoding the merged outputs entirely and resume rebuilds them from
        the chunk lines.
        """
        return self._n_chunks is not None and self._replayable >= set(
            range(self._n_chunks)
        )

    def crash(self, boundary: str) -> None:
        """Announce a named execution boundary to any armed crash point."""
        self.checkpoint.reached(boundary)

    def replayable_chunks(self, chunk_sizes: list[int]) -> dict[int, ChunkReplay]:
        """Decode the journalled chunks that can replay against this plan.

        Validates journalled chunk geometry against the live partition —
        a mismatch means the inputs or chunking changed under a reused
        journal, which the fingerprint should have caught, so it raises
        rather than guessing.
        """
        self._n_chunks = len(chunk_sizes)
        replays: dict[int, ChunkReplay] = {}
        for chunk_index, raw in self._journalled.items():
            if chunk_index >= len(chunk_sizes):
                raise CheckpointMismatchError(
                    f"journal has chunk {chunk_index} for operator "
                    f"{self.name!r} but the plan produces only "
                    f"{len(chunk_sizes)} chunk(s)"
                )
            if raw.get("n_records") != chunk_sizes[chunk_index]:
                raise CheckpointMismatchError(
                    f"journalled chunk {chunk_index} of operator {self.name!r} "
                    f"covered {raw.get('n_records')} record(s); the plan's "
                    f"chunk has {chunk_sizes[chunk_index]}"
                )
            if not raw.get("replayable", False):
                continue  # outputs did not serialize: re-execute this chunk
            replays[chunk_index] = ChunkReplay(
                index=chunk_index,
                n_records=int(raw["n_records"]),
                records=_decode_records(raw["records"]),
                elapsed=float(raw["elapsed"]),
                outputs=decode_value(raw["outputs"]),
                quarantine=_decode_quarantine(raw.get("quarantine", [])),
                degraded=int(raw.get("degraded", 0)),
            )
        with self.checkpoint._lock:
            self.checkpoint.stats.replayed_records += sum(
                len(replay.records) for replay in replays.values()
            )
        return replays

    def record_chunk(self, chunk_index: int, chunk: list, scope, outcome) -> None:
        """Write-ahead journal one finished chunk (called from workers)."""
        try:
            outputs = encode_value(list(outcome.outputs))
            replayable = True
        except UnserializableValueError:
            outputs = None
            replayable = False
        self.checkpoint.journal.append(
            {
                "type": "chunk",
                "op": self.index,
                "op_name": self.name,
                "chunk": chunk_index,
                "n_records": len(chunk),
                "records": _encode_records(scope.records),
                "elapsed": scope.elapsed,
                "outputs": outputs,
                "replayable": replayable,
                "quarantine": _encode_quarantine(outcome.quarantine),
                "degraded": outcome.degraded,
            }
        )
        with self.checkpoint._lock:
            self._recorded.add(chunk_index)
            if replayable:
                self._replayable.add(chunk_index)
            self.checkpoint.stats.journaled_chunks += 1

    def note_chunk(
        self,
        chunk_index: int,
        *,
        records: int,
        outputs: int,
        quarantined: int,
        degraded: int,
        replayed: bool,
    ) -> None:
        """Collect one chunk's span summary (merge order, coordinator only)."""
        self.chunk_summaries.append(
            {
                "chunk": chunk_index,
                "records": records,
                "outputs": outputs,
                "quarantined": quarantined,
                "degraded": degraded,
            }
        )
        if replayed:
            with self.checkpoint._lock:
                self.checkpoint.stats.replayed_chunks += 1


# -- the run checkpoint -----------------------------------------------------------


class RunCheckpoint:
    """Write-ahead journal + replay state for exactly one ``execute()``.

    Parameters
    ----------
    path:
        Journal file location (conventionally beside the cache journal).
    resume:
        ``True`` (default) replays an existing journal; ``False`` deletes
        any journal at ``path`` and starts fresh.
    crash:
        Optional :class:`~repro.llm.faults.CrashPoint`; every named
        execution boundary is announced to it, so tests can kill the run
        at any chunk or commit boundary.
    fsync_every:
        Appends between batched fsyncs.
    fsync_interval:
        Group-commit window in seconds for durable appends (header and
        operator commits); ``0.0`` restores an fsync per commit.
    """

    def __init__(
        self,
        path: str | Path,
        resume: bool = True,
        crash=None,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
    ):
        self.journal = CheckpointJournal(
            path, fsync_every=fsync_every, fsync_interval=fsync_interval
        )
        self.resume = resume
        self.crash = crash
        self.stats = CheckpointStats()
        self._ops: dict[int, dict] = {}
        self._chunks: dict[int, dict[int, dict]] = {}
        self._began = False
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """The journal file path."""
        return self.journal.path

    def reached(self, boundary: str) -> None:
        """Forward a named boundary to the armed crash point, if any."""
        if self.crash is not None:
            self.crash.reached(boundary)

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, fingerprint: str, service: LLMService) -> None:
        """Validate (or create) the journal before any work runs.

        On resume: checks the schema version, the plan/config fingerprint
        and the virtual clock at execute begin (a recompiled plan is
        deterministic, so any divergence means the configuration changed),
        rewinds the prompt cache to the recorded run-start state, and
        indexes ``op``/``chunk`` records for replay.  On a fresh journal:
        writes the header durably.
        """
        if self._began:
            raise CheckpointError(
                "a RunCheckpoint drives exactly one execute(); create a new "
                "one (same path) to resume"
            )
        self._began = True
        if not self.resume:
            self.journal.delete()
        lines = self.journal.load()
        self.stats.torn_bytes = self.journal.torn_bytes
        if self.stats.torn_bytes:
            # Imported lazily: workqueue imports this module.
            from repro.core.runtime.workqueue import emit_torn_tail

            emit_torn_tail(
                getattr(service, "obs", None),
                service.clock,
                self.path,
                self.stats.torn_bytes,
                "checkpoint",
            )
        if lines:
            header = lines[0]
            if header.get("type") != "header":
                raise CheckpointError(
                    f"{self.path}: first record is {header.get('type')!r}, "
                    "not a journal header"
                )
            if header.get("format") != JOURNAL_FORMAT_VERSION:
                raise CheckpointError(
                    f"{self.path}: journal format {header.get('format')!r} "
                    f"(this build reads {JOURNAL_FORMAT_VERSION})"
                )
            if header.get("fingerprint") != fingerprint:
                raise CheckpointMismatchError(
                    f"{self.path}: journal fingerprint "
                    f"{header.get('fingerprint')!r} does not match this "
                    f"plan/config ({fingerprint!r}); pass resume=False to "
                    "discard it"
                )
            if float(header.get("clock_start", 0.0)) != service.clock.now:
                raise CheckpointMismatchError(
                    f"{self.path}: virtual clock at execute begin is "
                    f"{service.clock.now!r}, journal recorded "
                    f"{header.get('clock_start')!r}; the compile phase "
                    "diverged from the original run"
                )
            if service.cache_enabled:
                self.stats.cache_entries_pruned = service.cache.restore_state(
                    header.get("cache_exact", []), header.get("cache_sealed", [])
                )
            self.stats.resumed = True
            for line in lines[1:]:
                kind = line.get("type")
                if kind == "op":
                    self._ops[int(line["index"])] = line
                elif kind == "chunk":
                    self._chunks.setdefault(int(line["op"]), {})[
                        int(line["chunk"])
                    ] = line
        else:
            exact, sealed = service.cache.state_digests()
            self.journal.append(
                {
                    "type": "header",
                    "format": JOURNAL_FORMAT_VERSION,
                    "fingerprint": fingerprint,
                    "clock_start": service.clock.now,
                    "cache_exact": exact,
                    "cache_sealed": sealed,
                },
                durable=True,
            )

    def close(self) -> None:
        """Release the journal file handle."""
        self.journal.close()

    # -- operator replay / commit -------------------------------------------------

    def operator_replay(self, index: int, name: str) -> OperatorReplay | None:
        """The decoded commit record for operator ``index``, if replayable."""
        raw = self._ops.get(index)
        if raw is None:
            return None
        if raw.get("name") != name:
            raise CheckpointMismatchError(
                f"journal operator {index} is {raw.get('name')!r}; the plan "
                f"has {name!r} there"
            )
        if not raw.get("replayable", False):
            return None  # outputs did not serialize: re-execute the operator
        if raw.get("records_from_chunks"):
            records = self._reconstruct_op_records(index, int(raw["n_records"]))
        else:
            records = _decode_records(raw["records"])
        if raw.get("outputs_from_chunks"):
            outputs = self._reconstruct_op_outputs(index)
        else:
            outputs = decode_value(raw["outputs"])
        return OperatorReplay(
            index=index,
            name=name,
            records=records,
            clock_end=float(raw["clock_end"]),
            outputs=outputs,
            quarantine=_decode_quarantine(raw.get("quarantine", [])),
            stats_delta={k: int(v) for k, v in raw.get("stats_delta", {}).items()},
            tree_degraded=int(raw.get("tree_degraded", 0)),
            chunk_summaries=list(raw.get("chunk_summaries") or []),
            fault_state=raw.get("fault_state"),
        )

    def operator_context(self, index: int, name: str) -> OperatorContext:
        """The scheduler-facing context for executing operator ``index`` live."""
        return OperatorContext(self, index, name)

    def _reconstruct_op_records(self, index: int, n_records: int) -> list[CallRecord]:
        """Rebuild a committed operator's canonical ledger slice.

        An ``op`` record whose chunks are all journalled stores only the
        record count: the canonical slice is the chunk records concatenated
        in chunk order and normalised by the scheduler's (pure,
        deterministic) :func:`canonicalize_ledger` — exactly the pipeline
        the original run's merge applied.  The count cross-checks that the
        chunk lines really cover the operator.
        """
        from repro.core.runtime.scheduler import canonicalize_ledger

        raw_chunks = self._chunks.get(index, {})
        records: list[CallRecord] = []
        for chunk_index in sorted(raw_chunks):
            records.extend(_decode_records(raw_chunks[chunk_index]["records"]))
        if len(records) != n_records:
            raise CheckpointMismatchError(
                f"operator {index} committed {n_records} ledger record(s) "
                f"but its chunk lines hold {len(records)}; the journal is "
                "internally inconsistent"
            )
        canonicalize_ledger(records, 0)
        return records

    def _reconstruct_op_outputs(self, index: int) -> list[Any]:
        """Rebuild a committed operator's merged outputs from chunk lines.

        The scheduler merges chunk outputs by concatenation in chunk
        order, so an ``op`` record flagged ``outputs_from_chunks`` stores
        nothing and the concatenation is replayed here.  The flag is only
        written when every chunk line was replayable; a journal that says
        otherwise is internally inconsistent.
        """
        raw_chunks = self._chunks.get(index, {})
        outputs: list[Any] = []
        for chunk_index in sorted(raw_chunks):
            raw = raw_chunks[chunk_index]
            if not raw.get("replayable", False):
                raise CheckpointMismatchError(
                    f"operator {index} was committed with outputs in its "
                    f"chunk lines, but chunk {chunk_index} is not "
                    "replayable; the journal is internally inconsistent"
                )
            outputs.extend(decode_value(raw["outputs"]))
        return outputs

    def apply_operator_replay(
        self, module, replay: OperatorReplay, service: LLMService
    ) -> None:
        """Re-apply one committed operator's effects at zero provider cost.

        Restores the module's stat counters (so ``module_stats`` text
        matches), re-warms the exact cache from the replayed records (so
        later live operators hit exactly what they originally hit),
        re-inserts the canonical ledger slice, pins the virtual clock to
        the recorded absolute commit time (absolute assignment, so no
        float drift accumulates across replayed operators) and restores
        any chaos-provider fault counters captured at commit.
        """
        with module._lock:
            stats = module.stats
            for field_name, delta in replay.stats_delta.items():
                setattr(stats, field_name, getattr(stats, field_name) + delta)
        service.restore_from_records(replay.records)
        service.merge_scope(
            CallScope(base=0.0, clock=VirtualClock(0.0), records=list(replay.records))
        )
        service.clock.now = replay.clock_end
        if replay.fault_state is not None:
            restore = getattr(service.provider, "restore_fault_state", None)
            if callable(restore):
                restore(replay.fault_state)
        with self._lock:
            self.stats.replayed_operators += 1
            self.stats.replayed_records += len(replay.records)

    def commit_operator(
        self,
        index: int,
        name: str,
        *,
        records: list[CallRecord],
        clock_end: float,
        outputs: Any,
        quarantine: list[QuarantinedRecord],
        stats_delta: dict[str, int],
        tree_degraded: int,
        chunk_summaries: list[dict] | None,
        service: LLMService,
        records_in_chunks: bool = False,
        outputs_in_chunks: bool = False,
    ) -> None:
        """Durably commit one finished operator, superseding its chunk lines.

        ``records_in_chunks=True`` (set when every chunk of the operator
        has a journal line) stores the record count instead of re-encoding
        the full canonical slice; resume rebuilds it via
        :meth:`_reconstruct_op_records`.  ``outputs_in_chunks=True`` (every
        chunk line is also replayable) likewise skips re-encoding the
        merged outputs — the merge is a concatenation in chunk order, so
        resume rebuilds it via :meth:`_reconstruct_op_outputs`.
        """
        if outputs_in_chunks:
            encoded = None
            replayable = True
        else:
            try:
                encoded = encode_value(outputs)
                replayable = True
            except UnserializableValueError:
                encoded = None
                replayable = False
        fault_state = None
        snapshot = getattr(service.provider, "fault_state", None)
        if callable(snapshot):
            fault_state = snapshot()
        self.journal.append(
            {
                "type": "op",
                "index": index,
                "name": name,
                "records": None if records_in_chunks else _encode_records(records),
                "records_from_chunks": records_in_chunks,
                "n_records": len(records),
                "clock_end": clock_end,
                "outputs": encoded,
                "outputs_from_chunks": outputs_in_chunks,
                "replayable": replayable,
                "quarantine": _encode_quarantine(quarantine),
                "stats_delta": stats_delta,
                "tree_degraded": tree_degraded,
                "chunk_summaries": chunk_summaries,
                "fault_state": fault_state,
            },
            durable=True,
        )
        self.reached("operator:committed")


# -- fingerprinting ---------------------------------------------------------------


def fingerprint_payload(identity: dict) -> str:
    """Hash a stable-identity dict into the journal fingerprint."""
    payload = json.dumps(identity, sort_keys=True, ensure_ascii=False, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def digest_inputs(inputs: dict | None) -> str:
    """Order-insensitive digest of the caller's ``inputs`` dict."""
    items = sorted((inputs or {}).items(), key=lambda pair: pair[0])
    payload = repr(items)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
