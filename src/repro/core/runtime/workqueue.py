"""Durable shard work-queue and pipelined streaming executor.

The batch runtime (:mod:`repro.core.runtime.scheduler` +
:mod:`repro.core.runtime.checkpoint`) materializes every operator's full
input before chunking it, so a million-record curation run holds the whole
dataset — and every intermediate — in memory.  This module is the
out-of-core counterpart: datasets stay *iterators*, operators pull fixed
size **shards** from a durable work queue and emit downstream without
waiting for full-operator completion, and peak RSS is bounded at
O(chunk_size x window) instead of O(dataset).

Three pieces:

- :class:`ShardLedger` — the write-ahead journal.  One ``shard`` line per
  completed shard (superseding the batch runtime's linear chunk log), plus
  ``fail`` lines for deterministic shard failures and a ``poison`` line
  when a shard exhausts its attempt budget.  The header pins the run
  fingerprint, the virtual clock and the prompt-cache state exactly like
  :class:`~repro.core.runtime.checkpoint.RunCheckpoint` does.
- :class:`WorkQueue` — the in-memory shard state machine.  Every shard is
  a ledger entry with a **lease** (claim -> heartbeat -> complete /
  expire): a worker that dies mid-shard loses its lease and the shard is
  re-claimed; deterministic failures retry with jittered exponential
  backoff on a dedicated virtual clock; a shard that keeps failing is
  **quarantined as poison** after ``max_attempts`` — reported, never
  aborting the run.  Backpressure: shards are materialized from the source
  only while the in-flight window and the disk-spill budget have room.
- :class:`StreamingExecutor` — drives a compiled
  :class:`~repro.core.compiler.plan.PhysicalPlan` through the queue and
  folds shard results into a normal :class:`RunReport`.

Determinism contract (the streaming crash matrix pins this): a run
crashed and resumed at any shard boundary, at any worker count, cold or
warm cache, produces a byte-identical ``RunReport.canonical_json()``.
The mechanics:

- every per-(shard, op) scope starts at the same virtual base time, and
  the fold advances the shared clock by each scope's elapsed time in
  (shard, op) order — the same float addition sequence live or replayed;
- per-shard ledger records are **not** retained (that would be O(dataset)
  memory); instead the fold accumulates per-operator profile sums, which
  are invariant under coalescing races and lease churn because every
  distinct prompt contributes exactly one originating record plus its
  exact-cache hits regardless of which shard attempt produced them;
- an abandoned shard attempt (worker killed, lease lost after an injected
  expiry) has its cache inserts **rolled back**
  (:meth:`~repro.llm.service.LLMService.rollback_scope`), so the retry
  re-serves exactly what an undisturbed run would have served.  This
  requires that duplicate prompts not straddle shards that can race with
  a kill — :class:`repro.datasets.streaming.StreamingERCorpus` makes
  prompts corpus-unique for precisely this reason;
- lease losses never count toward the poison budget; only deterministic
  failures (the module raising) do, so the poison verdict — and the
  quarantine section of the report — is identical under any kill or crash
  schedule.

Fault points (for :class:`~repro.llm.faults.CrashPoint` /
:class:`~repro.llm.faults.WorkerKillPoint` /
:class:`~repro.llm.faults.TriggerPoint`): the per-shard boundaries
``shard:claimed``, ``shard:executed``, ``shard:journaled``; lease expiry
injection at ``lease:granted``; spill-write failure at ``spill:write``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.compiler.plan import (
    OperatorResilience,
    PhysicalPlan,
    RunReport,
    _add_call_spans,
    _tree_degraded,
)
from repro.core.modules.base import QuarantinedRecord
from repro.core.optimizer.cost import CostSnapshot
from repro.core.runtime.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    DEFAULT_FSYNC_EVERY,
    DEFAULT_FSYNC_INTERVAL,
    ReplayedValue,
    UnserializableValueError,
    _decode_quarantine,
    _decode_records,
    _encode_quarantine,
    _encode_records,
    decode_value,
    encode_value,
    fingerprint_payload,
)
from repro.core.runtime.scheduler import (
    iter_chunks,
    resolve_chunk_size,
    tree_parallel_safe,
)
from repro.llm.faults import CrashInjected, WorkerKilled
from repro.llm.service import CallRecord, LLMService
from repro.obs.profile import ProfileRow, RunProfile, profile_records
from repro.resilience.clock import VirtualClock
from repro.resilience.policy import RetryPolicy
from repro.storage.spill import SpillStore, SpillWriteError

__all__ = [
    "SHARD_LEDGER_FORMAT_VERSION",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_MAX_ATTEMPTS",
    "StreamingPlanError",
    "Lease",
    "ShardOpReplay",
    "ShardReplay",
    "PoisonInfo",
    "ShardLedgerStats",
    "ShardLedger",
    "WorkQueue",
    "StreamingExecutor",
]

#: Bumped whenever the shard-ledger schema changes; resume refuses others.
SHARD_LEDGER_FORMAT_VERSION = 1

#: Virtual seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TIMEOUT = 300.0

#: Failed executions before a shard is quarantined as poison.
DEFAULT_MAX_ATTEMPTS = 3

#: Consecutive spill-write failures tolerated before the run aborts.
MAX_SPILL_FAILURES = 8

#: Deadline sentinel for leases that must not expire (poison in progress).
_FOREVER = float("inf")

_PENDING = "pending"
_LEASED = "leased"
_DONE = "done"
_POISONED = "poisoned"


class StreamingPlanError(RuntimeError):
    """The plan cannot run as a stream (non-linear, no chunkable core)."""


def emit_torn_tail(obs, clock, path, torn_bytes: int, journal: str) -> None:
    """Surface one torn-tail truncation as a metric and a trace event.

    Called by both :meth:`ShardLedger.begin` and
    :meth:`~repro.core.runtime.checkpoint.RunCheckpoint.begin` whenever a
    journal load discarded unacknowledged trailing bytes — expected after
    a crash mid-write, but worth counting: a torn tail on every start
    means something else is truncating the file.
    """
    if obs is None or torn_bytes <= 0:
        return
    obs.metrics.counter("journal.torn_tails").inc()
    obs.metrics.counter("journal.torn_bytes").inc(torn_bytes)
    if obs.tracer.enabled:
        obs.tracer.add_span(
            f"torn-tail[{journal}]",
            kind="event",
            start=float(clock.now) if clock is not None else 0.0,
            bytes=torn_bytes,
            journal=journal,
            path=str(path),
        )


# -- decoded ledger records ---------------------------------------------------------


@dataclass
class ShardOpReplay:
    """One middle operator's journalled slice of one shard."""

    name: str
    records: list[CallRecord]
    elapsed: float
    quarantine: list[QuarantinedRecord]
    degraded: int


@dataclass
class ShardReplay:
    """One journalled shard, decoded for zero-cost replay."""

    index: int
    n_records: int
    ops: list[ShardOpReplay]
    outputs: list[Any]


@dataclass
class PoisonInfo:
    """One quarantined shard: who failed, how often, on what records."""

    index: int
    n_records: int
    attempts: int
    op: str
    error: str
    records: list[Any]  # record objects live, ReplayedValue stand-ins on resume


@dataclass
class ShardLedgerStats:
    """What one streaming execution replayed, journalled and repaired."""

    resumed: bool = False
    replayed_shards: int = 0
    journaled_shards: int = 0
    replayed_records: int = 0
    quarantined_shards: int = 0
    cache_entries_pruned: int = 0
    torn_bytes: int = 0


# -- the shard ledger ---------------------------------------------------------------


class ShardLedger:
    """Write-ahead shard journal: the durable half of the work queue.

    JSONL with four record types:

    - ``header`` — written once, durably, before any work: the streaming
      run fingerprint, the virtual clock at begin, and the prompt-cache
      state digests (resume rewinds the cache to them, exactly like the
      batch checkpoint, so a crashed run's extra cache appends cannot make
      the resumed report cheaper than the uninterrupted one).
    - ``shard`` — one completed shard: per-operator ledger records (the
      columnar, prefix-shared encoding shared with the batch journal),
      per-operator virtual elapsed time, quarantine and degraded counts,
      and the shard's final outputs.  Written *before* the queue marks the
      lease complete, so an acknowledged completion is always resumable.
      Duplicate lines for one index are tolerated (a lease lost after
      journalling but before completion re-executes and re-journals);
      the last line wins.
    - ``fail`` — one deterministic shard failure: attempt number, the
      operator that raised, the error text.  Resume counts a shard's fail
      lines to carry its attempt budget across a crash; they are ignored
      once a ``shard`` (or ``poison``) line exists for the index.
    - ``poison`` — the quarantine verdict for a shard that exhausted its
      attempts: reprs of its input records (all the canonical report
      renders), the final error, written durably.  A poisoned shard is
      never re-executed after this line commits.
    """

    def __init__(
        self,
        path: str | Path,
        resume: bool = True,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        fsync_interval: float = DEFAULT_FSYNC_INTERVAL,
    ):
        self.journal = CheckpointJournal(
            path, fsync_every=fsync_every, fsync_interval=fsync_interval
        )
        self.resume = resume
        self.stats = ShardLedgerStats()
        self._shards: dict[int, dict] = {}
        self._poisons: dict[int, dict] = {}
        self._fails: dict[int, list[dict]] = {}
        self._began = False
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """The journal file path."""
        return self.journal.path

    def begin(self, fingerprint: str, service: LLMService) -> None:
        """Validate (or create) the ledger before any work runs.

        Mirrors :meth:`RunCheckpoint.begin`: schema/fingerprint/clock
        validation, cache rewind to the journalled run-start state, and
        indexing of shard/fail/poison lines for replay.  A torn tail is
        truncated, counted in ``stats.torn_bytes`` and surfaced as a
        metric plus an ``event`` trace span when observability is attached.
        """
        if self._began:
            raise CheckpointError(
                "a ShardLedger drives exactly one execute(); create a new "
                "one (same path) to resume"
            )
        self._began = True
        if not self.resume:
            self.journal.delete()
        lines = self.journal.load()
        self.stats.torn_bytes = self.journal.torn_bytes
        emit_torn_tail(
            getattr(service, "obs", None),
            service.clock,
            self.path,
            self.stats.torn_bytes,
            "shard-ledger",
        )
        if lines:
            header = lines[0]
            if header.get("type") != "header":
                raise CheckpointError(
                    f"{self.path}: first record is {header.get('type')!r}, "
                    "not a ledger header"
                )
            if header.get("format") != SHARD_LEDGER_FORMAT_VERSION:
                raise CheckpointError(
                    f"{self.path}: ledger format {header.get('format')!r} "
                    f"(this build reads {SHARD_LEDGER_FORMAT_VERSION})"
                )
            if header.get("mode") != "streaming":
                raise CheckpointError(
                    f"{self.path}: journal mode {header.get('mode')!r} is "
                    "not a streaming shard ledger"
                )
            if header.get("fingerprint") != fingerprint:
                raise CheckpointMismatchError(
                    f"{self.path}: ledger fingerprint "
                    f"{header.get('fingerprint')!r} does not match this "
                    f"plan/config ({fingerprint!r}); pass resume=False to "
                    "discard it"
                )
            if float(header.get("clock_start", 0.0)) != service.clock.now:
                raise CheckpointMismatchError(
                    f"{self.path}: virtual clock at begin is "
                    f"{service.clock.now!r}, ledger recorded "
                    f"{header.get('clock_start')!r}"
                )
            if service.cache_enabled:
                self.stats.cache_entries_pruned = service.cache.restore_state(
                    header.get("cache_exact", []), header.get("cache_sealed", [])
                )
            self.stats.resumed = True
            for line in lines[1:]:
                kind = line.get("type")
                if kind == "shard":
                    self._shards[int(line["index"])] = line
                elif kind == "poison":
                    self._poisons[int(line["index"])] = line
                elif kind == "fail":
                    self._fails.setdefault(int(line["index"]), []).append(line)
        else:
            exact, sealed = service.cache.state_digests()
            self.journal.append(
                {
                    "type": "header",
                    "format": SHARD_LEDGER_FORMAT_VERSION,
                    "mode": "streaming",
                    "fingerprint": fingerprint,
                    "clock_start": service.clock.now,
                    "cache_exact": exact,
                    "cache_sealed": sealed,
                },
                durable=True,
            )

    # -- resume-side reads ---------------------------------------------------------

    def has_shard(self, index: int) -> bool:
        """Whether a completed ``shard`` line exists for ``index``."""
        return index in self._shards

    def shard_n_records(self, index: int) -> int:
        """Journalled input-record count of shard ``index``."""
        return int(self._shards[index]["n_records"])

    def shard_replayable(self, index: int) -> bool:
        """Whether shard ``index``'s outputs round-tripped the journal."""
        return bool(self._shards[index].get("replayable", False))

    def max_recorded_index(self) -> int:
        """Largest shard index any journalled line mentions (-1 if none)."""
        indexes = [*self._shards, *self._poisons, *self._fails]
        return max(indexes) if indexes else -1

    def shard_replay(self, index: int) -> ShardReplay:
        """Decode one journalled shard for replay."""
        raw = self._shards[index]
        ops = [
            ShardOpReplay(
                name=str(op["name"]),
                records=_decode_records(op["records"]),
                elapsed=float(op["elapsed"]),
                quarantine=_decode_quarantine(op.get("quarantine", [])),
                degraded=int(op.get("degraded", 0)),
            )
            for op in raw["ops"]
        ]
        return ShardReplay(
            index=index,
            n_records=int(raw["n_records"]),
            ops=ops,
            outputs=decode_value(raw["outputs"]),
        )

    def replayable_shard_indexes(self) -> list[int]:
        """Indexes with replayable shard lines, ascending."""
        return sorted(
            index
            for index, raw in self._shards.items()
            if raw.get("replayable", False)
        )

    def rewarm(self, service: LLMService) -> int:
        """Re-warm the exact cache from every replayable shard line.

        Runs once, before any live shard executes, in shard/op order —
        live shards then hit exactly what they would have hit in the
        uninterrupted run.  Non-replayable shard lines are skipped: those
        shards re-execute, and pre-warming them with their own answers
        would turn their re-served calls into cache hits and break
        byte-identical resume.  Decodes one shard at a time, so rewarm
        itself stays memory-bounded.
        """
        warmed = 0
        for index in self.replayable_shard_indexes():
            for op in self._shards[index]["ops"]:
                warmed += service.restore_from_records(_decode_records(op["records"]))
        return warmed

    def poison(self, index: int) -> PoisonInfo | None:
        """The journalled quarantine verdict for ``index``, if any."""
        raw = self._poisons.get(index)
        if raw is None:
            return None
        return PoisonInfo(
            index=index,
            n_records=int(raw["n_records"]),
            attempts=int(raw["attempts"]),
            op=str(raw["op"]),
            error=str(raw["error"]),
            records=[ReplayedValue(text) for text in raw.get("records", [])],
        )

    def attempts(self, index: int) -> int:
        """Attempt budget already spent on ``index`` in a prior run.

        Fail lines are ignored once a shard line exists — the shard
        eventually succeeded, so its early failures are history, not debt.
        """
        if index in self._shards or index in self._poisons:
            return 0
        return len(self._fails.get(index, []))

    def last_fail(self, index: int) -> tuple[str, str]:
        """``(op, error)`` of the highest-attempt fail line for ``index``."""
        fails = self._fails.get(index)
        if not fails:
            return ("", "")
        last = max(fails, key=lambda line: int(line.get("attempt", 0)))
        return (str(last.get("op", "")), str(last.get("error", "")))

    # -- write-ahead appends ---------------------------------------------------------

    def record_shard(
        self,
        index: int,
        n_records: int,
        op_results: list[tuple[str, Any, Any]],
        outputs: list[Any],
    ) -> None:
        """Journal one executed shard (write-ahead of lease completion)."""
        try:
            encoded = encode_value(list(outputs))
            replayable = True
        except UnserializableValueError:
            encoded = None
            replayable = False
        self.journal.append(
            {
                "type": "shard",
                "index": index,
                "n_records": n_records,
                "ops": [
                    {
                        "name": name,
                        "records": _encode_records(scope.records),
                        "elapsed": scope.elapsed,
                        "quarantine": _encode_quarantine(outcome.quarantine),
                        "degraded": outcome.degraded,
                    }
                    for name, scope, outcome in op_results
                ],
                "outputs": encoded,
                "replayable": replayable,
            },
            durable=True,
        )
        with self._lock:
            self.stats.journaled_shards += 1

    def record_fail(self, index: int, attempt: int, op: str, error: str) -> None:
        """Journal one deterministic shard failure (carries the budget)."""
        self.journal.append(
            {"type": "fail", "index": index, "attempt": attempt, "op": op,
             "error": error}
        )

    def record_poison(self, info: PoisonInfo) -> None:
        """Durably journal a quarantine verdict; the shard never re-runs."""
        self.journal.append(
            {
                "type": "poison",
                "index": info.index,
                "n_records": info.n_records,
                "attempts": info.attempts,
                "op": info.op,
                "error": info.error,
                "records": [repr(record) for record in info.records],
            },
            durable=True,
        )

    def close(self) -> None:
        """fsync and release the journal file handle."""
        self.journal.close()

    def delete(self) -> None:
        """Close and remove the ledger file, if present."""
        self.journal.delete()


# -- the work queue -----------------------------------------------------------------


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one shard; the token fences zombie writers."""

    index: int
    token: int
    attempt: int
    worker: str


@dataclass
class _Shard:
    """Mutable per-shard queue state (guarded by the queue condition)."""

    index: int
    n_records: int
    status: str = _PENDING
    source: str = "live"  # live | replay | poison
    attempts: int = 0  # deterministic failures (never lease losses)
    lease_losses: int = 0
    not_before: float = 0.0
    token: int = 0
    deadline: float = 0.0
    worker: str = ""


class WorkQueue:
    """The durable shard state machine: claim -> heartbeat -> complete/expire.

    Single condition variable; every state change notifies.  The queue
    runs on its own :class:`VirtualClock` (``clock``) — lease deadlines
    and retry backoff are operational time, deliberately separate from the
    service's canonical clock, so retries and lease churn never perturb
    the deterministic report.  The clock only advances when the queue is
    otherwise idle (no leases, nothing claimable or materializable), which
    makes backoff schedules deterministic too.

    Shards are materialized lazily from ``chunks`` (an iterator of record
    lists) under two backpressure gates: the in-flight **window** (at most
    ``window`` shards past the fold frontier) and the spill store's byte
    budget.  Chunks whose index already has a ledger ``shard``/``poison``
    line are registered as replay/poison folds and their records discarded
    immediately — a resume re-iterates the (deterministic) source instead
    of persisting shard inputs.
    """

    def __init__(
        self,
        chunks: Iterable[list[Any]],
        *,
        window: int,
        spill: SpillStore,
        ledger: ShardLedger,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        backoff: RetryPolicy | None = None,
        clock: VirtualClock | None = None,
        lease_fault: Any = None,
        metrics: Any = None,
    ):
        if window < 1:
            raise ValueError("window must be at least 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self._chunks = iter(chunks)
        self.window = window
        self.spill = spill
        self.ledger = ledger
        self.max_attempts = max_attempts
        self.lease_timeout = lease_timeout
        self.backoff = backoff or RetryPolicy(
            max_retries=max_attempts,
            backoff_seconds=0.5,
            multiplier=2.0,
            jitter=0.25,
            seed="shard-backoff",
        )
        self.clock = clock or VirtualClock()
        self.lease_fault = lease_fault
        self.metrics = metrics
        self._cond = threading.Condition()
        self._shards: dict[int, _Shard] = {}
        self._pending_chunk: list[Any] | None = None
        self._next_index = 0
        self._exhausted = False
        self.n_shards: int | None = None
        self._frontier = 0
        self._token = 0
        self._aborted = False
        self._spill_failures = 0
        self._spill_estimate = 0
        self.lease_expiries = 0
        self.shard_failures = 0
        self.poisoned = 0
        self.replayed = 0

    @property
    def frontier(self) -> int:
        """First shard index not yet folded downstream."""
        with self._cond:
            return self._frontier

    def abort(self) -> None:
        """Stop handing out work (crash propagation); wakes every waiter."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    @property
    def aborted(self) -> bool:
        """Whether :meth:`abort` was called."""
        with self._cond:
            return self._aborted

    # -- the single evaluation pass ---------------------------------------------------

    def next_task(self, worker: str) -> tuple[str, Lease | None]:
        """One scheduling decision for one idle worker.

        Returns ``("lease", lease)`` to execute a shard, ``("poison",
        lease)`` when a shard's carried-over attempt budget is already
        exhausted (the caller writes the verdict without re-executing),
        ``("retry", None)`` when the caller should fold and ask again, and
        ``("done", None)`` when every shard is folded (or the queue
        aborted).
        """
        with self._cond:
            while True:
                if self._aborted:
                    return ("done", None)
                now = self.clock.now
                self._expire_locked(now)
                shard = self._claimable_locked(now)
                if shard is not None:
                    return (self._claim_locked(shard, worker, now), shard.lease)
                if self._materialize_locked():
                    continue
                if self._foldable_locked():
                    return ("retry", None)
                if self._done_locked():
                    return ("done", None)
                if self._advance_clock_locked():
                    continue
                # Timeout guards against a missed notify under real-time
                # scheduling jitter; state is re-evaluated on every wake.
                self._cond.wait(timeout=0.1)

    def _expire_locked(self, now: float) -> None:
        """Release every lease whose deadline has passed (lease loss)."""
        for shard in self._shards.values():
            if shard.status == _LEASED and shard.deadline <= now:
                shard.status = _PENDING
                shard.lease_losses += 1
                shard.not_before = now
                self.lease_expiries += 1
                if self.metrics is not None:
                    self.metrics.counter("workqueue.lease_expiries").inc()
                self._cond.notify_all()

    def _claimable_locked(self, now: float) -> _Shard | None:
        """Smallest-index live shard ready to run right now."""
        candidate = None
        for shard in self._shards.values():
            if (
                shard.status == _PENDING
                and shard.source == "live"
                and shard.not_before <= now
                and (candidate is None or shard.index < candidate.index)
            ):
                candidate = shard
        return candidate

    def _claim_locked(self, shard: _Shard, worker: str, now: float) -> str:
        """Grant a lease on ``shard``; returns the task kind."""
        self._token += 1
        shard.status = _LEASED
        shard.token = self._token
        shard.worker = worker
        shard.deadline = now + self.lease_timeout
        if self.lease_fault is not None and self.lease_fault.fires("lease:granted"):
            # Injected expiry: the holder's completion will be rejected as
            # stale and the shard re-claimed, exactly as if the lease had
            # timed out under a stalled worker.
            shard.deadline = now
        shard.lease = Lease(shard.index, shard.token, shard.attempts + 1, worker)
        if shard.attempts >= self.max_attempts:
            # A prior run burned the whole budget (crash landed between the
            # final fail line and the poison line): quarantine without
            # re-executing, so the resumed verdict matches the
            # uninterrupted one byte for byte.
            shard.deadline = _FOREVER
            self._gauges_locked()
            return "poison"
        self._gauges_locked()
        return "lease"

    def _materialize_locked(self) -> bool:
        """Pull (at most) one chunk from the source; True if state changed."""
        if self._exhausted:
            return False
        if self._next_index >= self._frontier + self.window:
            return False  # in-flight window full: backpressure
        if self._pending_chunk is None:
            try:
                self._pending_chunk = next(self._chunks)
            except StopIteration:
                self._exhausted = True
                self.n_shards = self._next_index
                recorded = self.ledger.max_recorded_index()
                if recorded >= self.n_shards:
                    raise CheckpointMismatchError(
                        f"ledger mentions shard {recorded} but the source "
                        f"produced only {self.n_shards} shard(s); the source "
                        "changed under a reused ledger"
                    )
                self._cond.notify_all()
                return True
        index = self._next_index
        chunk = self._pending_chunk
        if self.ledger.has_shard(index):
            expected = self.ledger.shard_n_records(index)
            if expected != len(chunk):
                raise CheckpointMismatchError(
                    f"ledger shard {index} covered {expected} record(s); the "
                    f"source produced {len(chunk)}"
                )
            if self.ledger.shard_replayable(index):
                # Completed in a prior run: discard the records (the fold
                # replays the journalled results) — this is the
                # consume-and-discard source skip.
                self._register_locked(
                    _Shard(index, len(chunk), status=_DONE, source="replay")
                )
                self.replayed += 1
                return True
            # Outputs did not serialize: fall through and re-execute live.
        else:
            poison = self.ledger.poison(index)
            if poison is not None:
                if poison.n_records != len(chunk):
                    raise CheckpointMismatchError(
                        f"ledger poison {index} covered {poison.n_records} "
                        f"record(s); the source produced {len(chunk)}"
                    )
                self._register_locked(
                    _Shard(index, len(chunk), status=_POISONED, source="poison")
                )
                return True
        if index > self._frontier and not self.spill.has_room(self._spill_estimate):
            return False  # spill budget full: backpressure (frontier always runs)
        try:
            written = self.spill.put(str(index), chunk)
        except SpillWriteError:
            self._spill_failures += 1
            if self._spill_failures >= MAX_SPILL_FAILURES:
                raise
            # The pulled chunk is kept; the next pass retries the write.
            return True
        self._spill_failures = 0
        self._spill_estimate = written
        self._register_locked(
            _Shard(
                index,
                len(chunk),
                status=_PENDING,
                source="live",
                attempts=self.ledger.attempts(index),
                not_before=self.clock.now,
            )
        )
        return True

    def _register_locked(self, shard: _Shard) -> None:
        self._shards[shard.index] = shard
        self._pending_chunk = None
        self._next_index += 1
        self._cond.notify_all()
        self._gauges_locked()

    def _foldable_locked(self) -> bool:
        shard = self._shards.get(self._frontier)
        return shard is not None and shard.status in (_DONE, _POISONED)

    def _done_locked(self) -> bool:
        return self._exhausted and self._frontier == self.n_shards

    def _advance_clock_locked(self) -> bool:
        """Jump the queue clock to the earliest backoff release, when idle.

        Only legal with no outstanding leases — advancing under a live
        lease could expire it while its holder is still executing, and
        then rollback could race re-execution.  With every worker parked
        here, the jump is exactly what a real scheduler's timed sleep
        would do, minus the wall-clock wait.
        """
        if any(shard.status == _LEASED for shard in self._shards.values()):
            return False
        pending = [
            shard.not_before
            for shard in self._shards.values()
            if shard.status == _PENDING and shard.source == "live"
        ]
        if not pending:
            return False
        target = min(pending)
        if target <= self.clock.now:
            return False
        self.clock.now = target
        return True

    # -- lease verbs -------------------------------------------------------------------

    def _holder_locked(self, lease: Lease) -> _Shard | None:
        """The shard iff ``lease`` is still the live claim on it."""
        shard = self._shards.get(lease.index)
        if (
            shard is None
            or shard.status != _LEASED
            or shard.token != lease.token
        ):
            return None
        return shard

    def heartbeat(self, lease: Lease) -> bool:
        """Extend a still-valid lease's deadline; False if already lost."""
        with self._cond:
            shard = self._holder_locked(lease)
            if shard is None or shard.deadline <= self.clock.now:
                return False
            if shard.deadline < _FOREVER:
                shard.deadline = self.clock.now + self.lease_timeout
            return True

    def complete(self, lease: Lease) -> bool:
        """Mark the shard done; False when the lease is stale.

        A stale completion (expired or superseded lease) is rejected so a
        zombie worker's half-done results are discarded — the caller must
        roll back the attempt's cache inserts.
        """
        with self._cond:
            shard = self._holder_locked(lease)
            if shard is None or shard.deadline <= self.clock.now:
                return False
            shard.status = _DONE
            self._cond.notify_all()
            self._gauges_locked()
            return True

    def fail(self, lease: Lease, error: str) -> tuple[str, int, float]:
        """Register a deterministic failure; returns the verdict.

        ``("retry", attempts, delay)`` schedules the re-claim after a
        jittered exponential backoff on the queue clock; ``("poison",
        attempts, 0.0)`` means the budget is spent — the caller journals
        the verdict and confirms; ``("stale", 0, 0.0)`` means the lease
        was already lost (the failure belongs to a zombie and counts for
        nothing).
        """
        with self._cond:
            shard = self._holder_locked(lease)
            if shard is None or shard.deadline <= self.clock.now:
                return ("stale", 0, 0.0)
            shard.attempts += 1
            self.shard_failures += 1
            if self.metrics is not None:
                self.metrics.counter("workqueue.shard_failures").inc()
            if shard.attempts >= self.max_attempts:
                shard.deadline = _FOREVER  # held until the verdict commits
                return ("poison", shard.attempts, 0.0)
            delay = self.backoff.delay(shard.attempts - 1, key=str(shard.index))
            shard.status = _PENDING
            shard.not_before = self.clock.now + delay
            self._cond.notify_all()
            self._gauges_locked()
            return ("retry", shard.attempts, delay)

    def confirm_poison(self, lease: Lease) -> bool:
        """Commit the quarantine after the poison line is journalled."""
        with self._cond:
            shard = self._holder_locked(lease)
            if shard is None:
                return False
            shard.status = _POISONED
            self.poisoned += 1
            if self.metrics is not None:
                self.metrics.counter("workqueue.poisoned").inc()
            self._cond.notify_all()
            self._gauges_locked()
            return True

    def release(self, lease: Lease) -> bool:
        """Give a lease back untouched (worker killed mid-shard)."""
        with self._cond:
            shard = self._holder_locked(lease)
            if shard is None:
                return False
            shard.status = _PENDING
            shard.lease_losses += 1
            shard.not_before = self.clock.now
            self.lease_expiries += 1
            if self.metrics is not None:
                self.metrics.counter("workqueue.lease_expiries").inc()
            self._cond.notify_all()
            self._gauges_locked()
            return True

    # -- fold frontier -----------------------------------------------------------------

    def next_foldable(self) -> _Shard | None:
        """The frontier shard, iff it is ready to fold downstream."""
        with self._cond:
            shard = self._shards.get(self._frontier)
            if shard is None or shard.status not in (_DONE, _POISONED):
                return None
            return shard

    def mark_folded(self, index: int) -> None:
        """Advance the fold frontier past ``index`` (unblocks the window)."""
        with self._cond:
            if index != self._frontier:
                raise RuntimeError(
                    f"fold order violation: folding shard {index} at "
                    f"frontier {self._frontier}"
                )
            self._shards.pop(index, None)
            self._frontier += 1
            self._cond.notify_all()
            self._gauges_locked()

    def _gauges_locked(self) -> None:
        if self.metrics is None:
            return
        pending = leased = 0
        for shard in self._shards.values():
            if shard.status == _PENDING:
                pending += 1
            elif shard.status == _LEASED:
                leased += 1
        self.metrics.gauge("workqueue.depth").set(pending)
        self.metrics.gauge("workqueue.inflight").set(leased)
        self.metrics.gauge("workqueue.frontier").set(self._frontier)


# -- profile-row folding ------------------------------------------------------------


def _add_rows(accumulated: ProfileRow, row: ProfileRow) -> ProfileRow:
    """Field-wise sum of two profile rows (fold order fixes float order)."""
    return ProfileRow(
        module=accumulated.module,
        calls=accumulated.calls + row.calls,
        provider_calls=accumulated.provider_calls + row.provider_calls,
        cache_exact=accumulated.cache_exact + row.cache_exact,
        cache_near=accumulated.cache_near + row.cache_near,
        distilled=accumulated.distilled + row.distilled,
        cost=accumulated.cost + row.cost,
        latency_seconds=accumulated.latency_seconds + row.latency_seconds,
        provider_seconds=accumulated.provider_seconds + row.provider_seconds,
        distilled_seconds=accumulated.distilled_seconds + row.distilled_seconds,
        retries=accumulated.retries + row.retries,
        fallbacks=accumulated.fallbacks + row.fallbacks,
        failures=accumulated.failures + row.failures,
        quarantined=accumulated.quarantined + row.quarantined,
    )


@dataclass
class _LivePoison:
    """A quarantine verdict pending fold, with the live record objects."""

    info: PoisonInfo


# -- the streaming executor ----------------------------------------------------------


class StreamingExecutor:
    """Pipelined, memory-bounded execution of a compiled physical plan.

    The plan must be a **linear chain** with a chunk-capable, parallel-safe
    core: a (possibly empty) coordinator-side *prefix* (e.g. a lazy load),
    a maximal run of chunk-capable *middle* operators that the work queue
    streams shard by shard, and a (possibly empty) coordinator-side
    *suffix* (e.g. a save).  The prefix's output feeds the queue as an
    iterator and is never materialized by the executor; keep prefix
    transforms lazy and the whole run is O(window x chunk) resident.

    ``sink`` switches the output mode: ``None`` collects the middle
    outputs into a list and runs the suffix on it (convenient, but O(n)
    memory in the outputs); a callable receives each shard's outputs in
    shard order and the suffix — which must then be pass-through ``save``
    operators — is skipped, its report value replaced by ``{"records": n,
    "sha256": digest}`` over the streamed outputs.  The digest is chained
    in shard order, so it is part of the byte-identity contract.
    """

    def __init__(
        self,
        plan: PhysicalPlan,
        *,
        ledger: ShardLedger,
        workers: int = 1,
        chunk_size: int | None = None,
        window: int | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        backoff: RetryPolicy | None = None,
        sink: Callable[[list[Any]], Any] | None = None,
        spill_dir: str | Path | None = None,
        spill_budget_bytes: int | None = None,
        source_id: str = "",
        crash: Any = None,
        kill: Any = None,
        lease_fault: Any = None,
        spill_fault: Any = None,
        queue_clock: VirtualClock | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.plan = plan
        self.ledger = ledger
        self.workers = workers
        self.chunk_size = chunk_size
        self.window = window if window is not None else max(4 * workers, 8)
        self.max_attempts = max_attempts
        self.lease_timeout = lease_timeout
        self.backoff = backoff
        self.sink = sink
        self.spill_dir = spill_dir
        self.spill_budget_bytes = spill_budget_bytes
        self.source_id = source_id
        self.crash = crash
        self.kill = kill
        self.lease_fault = lease_fault
        self.spill_fault = spill_fault
        self.queue_clock = queue_clock or VirtualClock()
        self.queue: WorkQueue | None = None
        self.spill: SpillStore | None = None
        # fold state
        self._fold_lock = threading.Lock()
        self._results_lock = threading.Lock()
        self._results: dict[int, tuple[list, list]] = {}
        self._live_poisons: dict[int, PoisonInfo] = {}
        self._rows: dict[str, ProfileRow] = {}
        self._resil: dict[str, dict[str, int]] = {}
        self._output_buffer: list[Any] = []
        self._sink_records = 0
        self._sink_digest = hashlib.sha256()
        self._run_base = 0.0
        self._report: RunReport | None = None

    # -- plan splitting ----------------------------------------------------------------

    def _split_chain(self):
        """Validate linearity and split the chain into prefix/middle/suffix."""
        bound = self.plan.bound
        if not bound:
            raise StreamingPlanError("plan has no operators")
        previous = None
        for binding in bound:
            operator = binding.operator
            if previous is None:
                if operator.inputs:
                    raise StreamingPlanError(
                        f"streaming requires a linear chain; first operator "
                        f"{operator.name!r} declares inputs {operator.inputs}"
                    )
            elif list(operator.inputs) != [previous.operator.name]:
                raise StreamingPlanError(
                    f"streaming requires a linear chain; operator "
                    f"{operator.name!r} does not consume exactly "
                    f"{previous.operator.name!r}"
                )
            previous = binding

        def streamable(binding) -> bool:
            return binding.module.chunk_capable and tree_parallel_safe(binding.module)

        start = next(
            (i for i, binding in enumerate(bound) if streamable(binding)), None
        )
        if start is None:
            raise StreamingPlanError(
                "no chunk-capable, parallel-safe operator to stream; use "
                "plan.execute() instead"
            )
        end = start
        while end < len(bound) and streamable(bound[end]):
            end += 1
        prefix, middle, suffix = bound[:start], bound[start:end], bound[end:]
        if self.sink is not None:
            for binding in suffix:
                if binding.operator.kind != "save":
                    raise StreamingPlanError(
                        f"sink mode skips the suffix, so every operator after "
                        f"the streamed core must be a pass-through save; "
                        f"{binding.operator.name!r} is "
                        f"{binding.operator.kind!r}"
                    )
        return prefix, middle, suffix

    # -- coordinator-side operators (prefix / suffix) -----------------------------------

    def _run_op(self, binding, argument, report, profile, tracer, service):
        """Execute one operator coordinator-side, exactly like plan.execute."""
        ledger_mark = len(service.records)
        degraded_before = _tree_degraded(binding.module)
        module_start = service.clock.now
        operator = binding.operator
        phase_span = (
            tracer.span(
                operator.name, "phase", clock=service.clock,
                operator_kind=operator.kind,
            )
            if tracer is not None
            else nullcontext()
        )
        with phase_span:
            module_span = (
                tracer.span(
                    binding.module.name, "module", clock=service.clock,
                    module_type=type(binding.module).__name__,
                )
                if tracer is not None
                else nullcontext()
            )
            with module_span as span:
                value = binding.module.run(argument)
                drained = binding.module.drain_quarantine()
                degraded = _tree_degraded(binding.module) - degraded_before
                slice_ = service.records[ledger_mark:]
                if tracer is not None:
                    span.set("quarantined", len(drained))
                    span.set("degraded", degraded)
            if tracer is not None:
                _add_call_spans(span, slice_, module_start)
        report.quarantine.extend(drained)
        row = profile_records(operator.name, slice_, quarantined=len(drained))
        profile.rows.append(row)
        report.resilience[operator.name] = OperatorResilience(
            quarantined=len(drained),
            degraded=degraded,
            llm_retries=row.retries,
            llm_fallbacks=row.fallbacks,
            llm_failures=row.failures,
        )
        return value

    # -- fault boundaries --------------------------------------------------------------

    def _announce(self, boundary: str) -> None:
        """Offer one named boundary to the armed crash and kill points."""
        if self.crash is not None:
            self.crash.reached(boundary)
        if self.kill is not None:
            self.kill.reached(boundary)

    # -- execution ---------------------------------------------------------------------

    def fingerprint(self, chunk_size: int) -> str:
        """Stable identity of (plan, chunking, source) for ledger resume.

        The caller's inputs are deliberately excluded (generator reprs are
        not stable); ``source_id`` carries the source's own fingerprint —
        e.g. :attr:`repro.datasets.streaming.StreamingERCorpus.fingerprint`.
        Worker count, window and lease settings are operational knobs, not
        identity: a run may resume with any of them changed.
        """
        return fingerprint_payload(
            {
                "mode": "streaming",
                "plan": self.plan.fingerprint(None, chunk_size=chunk_size),
                "source": self.source_id,
            }
        )

    def execute(self, inputs: Any = None) -> RunReport:
        """Run the plan over a streaming source; returns a normal report.

        ``inputs`` is handed to the prefix (or, with no prefix, fed to the
        queue directly) and may be any iterable — a generator is never
        materialized.  Crash-resume: re-run with the same ledger path and
        the completed shard prefix replays at zero provider cost.
        """
        prefix, middle, suffix = self._split_chain()
        service = self.plan.context.service
        obs = getattr(service, "obs", None)
        tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
        chunk_size = resolve_chunk_size(middle[0].module, self.chunk_size)
        self.ledger.begin(self.fingerprint(chunk_size), service)
        report = RunReport(pipeline_name=self.plan.pipeline.name)
        report.profile = RunProfile()
        self._report = report
        self._middle = middle
        self._module_by_op = {
            binding.operator.name: binding.module for binding in middle
        }
        for binding in middle:
            self._rows[binding.operator.name] = ProfileRow(
                module=binding.operator.name
            )
            self._resil[binding.operator.name] = {"quarantined": 0, "degraded": 0}
        values: dict[str, Any] = {}
        run_span = (
            tracer.span(self.plan.pipeline.name, "run", clock=service.clock)
            if tracer is not None
            else nullcontext()
        )
        with run_span:
            # Prefix: coordinator-side, re-executed deterministically on
            # resume (the ledger header rewound the cache to run start, so
            # a prefix with LLM calls re-pays and re-records identically).
            argument: Any = inputs or {}
            for binding in prefix:
                argument = self._run_op(
                    binding, argument, report, report.profile, tracer, service
                )
            # Re-warm the exact cache from the replayable shard prefix
            # *after* the prefix re-executed — the same temporal order the
            # original run inserted cache entries in.
            self.ledger.rewarm(service)
            for binding in middle:
                with binding.module._lock:
                    binding.module.stats.invocations += 1
            self._run_base = service.clock.now
            if argument is None:
                raise StreamingPlanError(
                    f"prefix operator "
                    f"{prefix[-1].operator.name if prefix else '<inputs>'} "
                    "produced no iterable for the streamed core"
                )
            self.spill = SpillStore(
                self._spill_directory(),
                budget_bytes=self.spill_budget_bytes,
                encode=encode_value,
                decode=decode_value,
                write_fault=self.spill_fault,
            )
            if obs is not None:
                self.spill.metrics = obs.metrics
            self.queue = WorkQueue(
                iter_chunks(argument, chunk_size),
                window=self.window,
                spill=self.spill,
                ledger=self.ledger,
                max_attempts=self.max_attempts,
                lease_timeout=self.lease_timeout,
                backoff=self.backoff,
                clock=self.queue_clock,
                lease_fault=self.lease_fault,
                metrics=obs.metrics if obs is not None else None,
            )
            self._run_workers()
            # Middle rows, in operator order, after every shard folded.
            for binding in middle:
                name = binding.operator.name
                row = self._rows[name]
                report.profile.rows.append(row)
                counts = self._resil[name]
                report.resilience[name] = OperatorResilience(
                    quarantined=counts["quarantined"],
                    degraded=counts["degraded"],
                    llm_retries=row.retries,
                    llm_fallbacks=row.fallbacks,
                    llm_failures=row.failures,
                )
            if self.sink is None:
                value: Any = self._output_buffer
                values[middle[-1].operator.name] = value
                for binding in suffix:
                    value = self._run_op(
                        binding, value, report, report.profile, tracer, service
                    )
                    values[binding.operator.name] = value
            else:
                summary = {
                    "records": self._sink_records,
                    "sha256": self._sink_digest.hexdigest(),
                }
                values[middle[-1].operator.name] = summary
                for binding in suffix:
                    values[binding.operator.name] = summary
            self.spill.clear()
        report.partial = bool(report.quarantine)
        totals = report.profile.totals()
        report.cost = CostSnapshot(
            served_calls=totals.provider_calls,
            cached_calls=totals.cached_calls,
            cost=totals.cost,
            latency_seconds=totals.latency_seconds,
            retries=totals.retries,
            fallback_calls=totals.fallbacks,
            failed_calls=totals.failures,
            near_hits=totals.cache_near,
            distilled_calls=totals.distilled,
            # Distilled time under its own key: folding it into provider
            # time would bias the autotune per-call cost models.
            provider_seconds=totals.provider_seconds,
            distilled_seconds=totals.distilled_seconds,
        )
        for sink_op in self.plan.pipeline.sinks():
            if sink_op.name not in values:
                raise StreamingPlanError(
                    f"sink {sink_op.name!r} is inside the streamed core but "
                    "not its final operator; its value is never materialized"
                )
            report.outputs[sink_op.name] = values[sink_op.name]
        for binding in self.plan.bound:
            report.module_stats[binding.operator.name] = (
                binding.module.stats.to_text()
            )
        report.recovery = self._recovery_summary()
        return report

    def _spill_directory(self) -> Path:
        if self.spill_dir is not None:
            return Path(self.spill_dir)
        return self.ledger.path.parent / (self.ledger.path.stem + ".spill")

    def _recovery_summary(self) -> dict:
        """Operational (non-canonical) counters for ``report.recovery``."""
        stats = self.ledger.stats
        queue = self.queue
        spill = self.spill
        return {
            "mode": "streaming",
            "resumed": stats.resumed,
            "shards": queue.n_shards if queue is not None else 0,
            "replayed_shards": stats.replayed_shards,
            "journaled_shards": stats.journaled_shards,
            "replayed_records": stats.replayed_records,
            "quarantined_shards": stats.quarantined_shards,
            "cache_entries_pruned": stats.cache_entries_pruned,
            "torn_bytes": stats.torn_bytes,
            "lease_expiries": queue.lease_expiries if queue is not None else 0,
            "shard_failures": queue.shard_failures if queue is not None else 0,
            "spill_peak_bytes": spill.peak_bytes if spill is not None else 0,
            "spill_writes": spill.writes if spill is not None else 0,
            "spill_write_failures": (
                spill.write_failures if spill is not None else 0
            ),
        }

    # -- worker pool -------------------------------------------------------------------

    def _run_workers(self) -> None:
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def runner(name: str) -> None:
            try:
                self._worker_loop(name)
            except BaseException as error:  # noqa: BLE001 - propagated below
                with errors_lock:
                    errors.append(error)
                self.queue.abort()

        if self.workers == 1:
            runner("w0")
        else:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-stream"
            ) as pool:
                futures = [
                    pool.submit(runner, f"w{i}") for i in range(self.workers)
                ]
                for future in futures:
                    future.result()
        if errors:
            raise errors[0]

    def _worker_loop(self, worker: str) -> None:
        """One worker: fold what is ready, then claim and execute a shard."""
        service = self.plan.context.service
        queue = self.queue
        while True:
            self._fold_ready()
            kind, lease = queue.next_task(worker)
            if kind == "done":
                return
            if kind == "retry":
                continue
            if kind == "poison":
                self._poison_carried(lease)
                continue
            self._execute_shard(lease)

    def _execute_shard(self, lease: Lease) -> None:
        """One shard attempt: spill -> ops -> journal -> complete."""
        service = self.plan.context.service
        queue = self.queue
        scopes: list = []
        op_name = self._middle[0].operator.name
        records: list[Any] | None = None
        try:
            records = self.spill.get(str(lease.index))
            self._announce("shard:claimed")
            current = records
            op_results = []
            for binding in self._middle:
                op_name = binding.operator.name
                if not queue.heartbeat(lease):
                    # Lease lost (injected expiry or supersession) before
                    # this op: abandon the attempt and hand the shard back.
                    # A born-expired lease fails its *first* heartbeat, so
                    # the zombie executes nothing and the re-claiming
                    # worker never observes its cache state.
                    for scope in scopes:
                        service.rollback_scope(scope)
                    queue.release(lease)
                    return
                with service.scoped(self._run_base) as scope:
                    outcome = binding.module.apply_chunk(current)
                scopes.append(scope)
                op_results.append((op_name, scope, outcome))
                current = list(outcome.outputs)
            self._announce("shard:executed")
            self.ledger.record_shard(lease.index, len(records), op_results, current)
            self._announce("shard:journaled")
            if queue.complete(lease):
                with self._results_lock:
                    self._results[lease.index] = (op_results, current)
            else:
                # Lease lost (injected expiry or supersession): this
                # attempt's results are zombie state — discard them and
                # un-cache whatever its provider calls inserted, so the
                # re-claimed attempt re-serves identically.
                for scope in scopes:
                    service.rollback_scope(scope)
        except WorkerKilled:
            for scope in scopes:
                service.rollback_scope(scope)
            queue.release(lease)
        except CrashInjected:
            raise
        except Exception as error:  # deterministic shard failure
            for scope in scopes:
                service.rollback_scope(scope)
            verdict, attempts, _delay = queue.fail(lease, str(error))
            if verdict == "stale":
                return
            self.ledger.record_fail(lease.index, attempts, op_name, str(error))
            if verdict == "poison":
                if records is None:
                    records = self.spill.get(str(lease.index))
                info = PoisonInfo(
                    index=lease.index,
                    n_records=len(records),
                    attempts=attempts,
                    op=op_name,
                    error=str(error),
                    records=records,
                )
                self.ledger.record_poison(info)
                with self._results_lock:
                    self._live_poisons[lease.index] = info
                queue.confirm_poison(lease)

    def _poison_carried(self, lease: Lease) -> None:
        """Quarantine a shard whose attempt budget died in a prior run."""
        op_name, error = self.ledger.last_fail(lease.index)
        records = self.spill.get(str(lease.index))
        info = PoisonInfo(
            index=lease.index,
            n_records=len(records),
            attempts=lease.attempt - 1,
            op=op_name or self._middle[0].operator.name,
            error=error,
            records=records,
        )
        self.ledger.record_poison(info)
        with self._results_lock:
            self._live_poisons[lease.index] = info
        self.queue.confirm_poison(lease)

    # -- the fold ----------------------------------------------------------------------

    def _fold_ready(self) -> None:
        """Fold every frontier shard that is ready, in shard order.

        Serialized by ``_fold_lock``: shard results enter the report, the
        shared clock and the per-operator accumulators in strict frontier
        order, which is what makes the canonical report independent of
        worker interleaving.
        """
        while True:
            with self._fold_lock:
                shard = self.queue.next_foldable()
                if shard is None:
                    return
                self._fold_shard(shard)
                self.queue.mark_folded(shard.index)

    def _fold_shard(self, shard: _Shard) -> None:
        service = self.plan.context.service
        obs = getattr(service, "obs", None)
        tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
        report = self._report
        index = shard.index
        if shard.status == _POISONED:
            self._fold_poison(index, shard, report, tracer, service)
            return
        with self._results_lock:
            live = self._results.pop(index, None)
        if live is not None:
            op_results, outputs = live
            ops = [
                ShardOpReplay(
                    name=name,
                    records=scope.records,
                    elapsed=scope.elapsed,
                    quarantine=outcome.quarantine,
                    degraded=outcome.degraded,
                )
                for name, scope, outcome in op_results
            ]
        else:
            replay = self.ledger.shard_replay(index)
            ops = replay.ops
            outputs = replay.outputs
            with self.ledger._lock:
                self.ledger.stats.replayed_shards += 1
                self.ledger.stats.replayed_records += sum(
                    len(op.records) for op in ops
                )
        quarantined = degraded = 0
        for op in ops:
            self._rows[op.name] = _add_rows(
                self._rows[op.name],
                profile_records(op.name, op.records, quarantined=len(op.quarantine)),
            )
            service.clock.advance(op.elapsed)
            module = self._module_by_op[op.name]
            with module._lock:
                module.stats.quarantined += len(op.quarantine)
                module.stats.degraded += op.degraded
            report.quarantine.extend(op.quarantine)
            counts = self._resil[op.name]
            counts["quarantined"] += len(op.quarantine)
            counts["degraded"] += op.degraded
            quarantined += len(op.quarantine)
            degraded += op.degraded
        if self.sink is None:
            self._output_buffer.extend(outputs)
        else:
            self.sink(list(outputs))
            self._sink_records += len(outputs)
            self._sink_digest.update(
                json.dumps(
                    encode_value(list(outputs)),
                    sort_keys=True,
                    ensure_ascii=False,
                    default=repr,
                ).encode("utf-8")
            )
        if tracer is not None:
            tracer.add_span(
                f"shard[{index}]",
                kind="shard",
                start=self._run_base,
                end=self._run_base,
                records=shard.n_records,
                outputs=len(outputs),
                quarantined=quarantined,
                degraded=degraded,
                replayed=live is None,
            )
        if shard.source == "live":
            self.spill.remove(str(index))

    def _fold_poison(self, index, shard, report, tracer, service) -> None:
        with self._results_lock:
            info = self._live_poisons.pop(index, None)
        if info is None:
            info = self.ledger.poison(index)
        message = (
            f"shard {index} poisoned after {info.attempts} attempt(s): "
            f"{info.error}"
        )
        module_name = info.op or self._middle[0].operator.name
        for record in info.records:
            report.quarantine.append(
                QuarantinedRecord(record=record, module_name=module_name,
                                  error=message)
            )
        module = self._module_by_op.get(module_name)
        if module is not None:
            with module._lock:
                module.stats.failures += info.attempts
                module.stats.quarantined += info.n_records
        counts = self._resil.get(module_name)
        if counts is not None:
            counts["quarantined"] += info.n_records
        with self.ledger._lock:
            self.ledger.stats.quarantined_shards += 1
        if tracer is not None:
            tracer.add_span(
                f"shard[{index}]",
                kind="shard",
                start=self._run_base,
                end=self._run_base,
                records=info.n_records,
                outputs=0,
                quarantined=info.n_records,
                degraded=0,
                poisoned=True,
            )
        if shard.source == "live":
            self.spill.remove(str(index))
