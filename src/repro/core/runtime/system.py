"""The :class:`LinguaManga` facade.

One object that owns the LLM service, the local database, the compiler and
the template library — the "system" a user interacts with in the paper's
demonstration.  All three example applications in ``examples/`` drive the
system exclusively through this facade.
"""

from __future__ import annotations

from typing import Any

from repro.core.compiler.compiler import LinguaMangaCompiler
from repro.core.compiler.context import CompilerContext
from repro.core.compiler.plan import PhysicalPlan, RunReport
from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.parser import parse_pipeline
from repro.core.dsl.pipeline import Pipeline
from repro.core.optimizer.connector import TabularConnector
from repro.core.templates.library import (
    Template,
    available_templates,
    get_template,
    search_templates,
)
from repro.llm.knowledge import KnowledgeBase
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService, UsageSummary
from repro.storage.database import Database
from repro.storage.table import Table

__all__ = ["LinguaManga"]


class LinguaManga:
    """The Lingua Manga system: DSL + compiler + optimizer + templates.

    Parameters
    ----------
    service:
        An :class:`LLMService`; a fresh simulated one is created by default.
    database:
        The local relational store the connector queries.
    knowledge:
        Knowledge-base overrides for the simulated provider (ignored when a
        custom ``service`` is given).
    cache_path:
        Optional JSONL journal for the prompt cache (ignored when a custom
        ``service`` is given): answers persist across processes, so a
        second run of the same app warm-starts instead of re-paying the
        provider.
    obs:
        Optional :class:`repro.obs.Observability` hub.  When given, every
        layer — service, cache, breakers, scheduler, modules, plan
        executor — publishes spans and metrics into it, and run reports
        carry a per-module profile.  ``None`` (the default) collects
        nothing and adds no overhead.
    """

    def __init__(
        self,
        service: LLMService | None = None,
        database: Database | None = None,
        knowledge: KnowledgeBase | None = None,
        cache_path: str | None = None,
        obs: "Any | None" = None,
    ):
        if service is None:
            provider = SimulatedProvider(knowledge=knowledge)
            service = LLMService(provider, cache_path=cache_path, obs=obs)
        elif obs is not None:
            service.attach_obs(obs)
        self.service = service
        self.database = database or Database()
        self.context = CompilerContext(service=self.service, database=self.database)
        self.compiler = LinguaMangaCompiler(self.context)

    @property
    def obs(self):
        """The attached observability hub, if any."""
        return self.service.obs

    # -- pipeline construction ----------------------------------------------------

    def builder(self, name: str, description: str = "") -> PipelineBuilder:
        """Start a fluent pipeline builder."""
        return PipelineBuilder(name, description)

    def parse(self, dsl_text: str) -> Pipeline:
        """Parse a pipeline from DSL text."""
        return parse_pipeline(dsl_text)

    # -- templates -------------------------------------------------------------------

    def templates(self) -> list[Template]:
        """All built-in templates."""
        return available_templates()

    def search_templates(self, query: str, limit: int = 3) -> list[tuple[Template, float]]:
        """Rank templates against a natural-language need."""
        return search_templates(query, limit)

    def template(self, name: str) -> Template:
        """Fetch a template by name."""
        return get_template(name)

    # -- compile and run ---------------------------------------------------------------

    def compile(self, pipeline: Pipeline, optimize: bool = False) -> PhysicalPlan:
        """Compile a logical pipeline into a physical plan.

        ``optimize=True`` runs the logical rewriter first.
        """
        return self.compiler.compile(pipeline, optimize=optimize)

    def run(
        self,
        pipeline: Pipeline,
        inputs: dict[str, Any] | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        checkpoint_path: "str | Any | None" = None,
        resume: bool = True,
        checkpoint: "Any | None" = None,
        columnar: bool | None = None,
        autotune: bool = False,
        profile_path: "str | Any | None" = None,
        cancel: "Any | None" = None,
    ) -> RunReport:
        """Compile and execute in one step.

        ``workers`` enables the concurrent scheduler (see
        :meth:`repro.core.compiler.plan.PhysicalPlan.execute`): record
        chunks of each operator run on a bounded thread pool with
        deterministic merge order.  ``None`` keeps sequential execution.

        ``checkpoint_path`` makes the run crash-safe: execution keeps a
        write-ahead journal beside the cache journal, and re-running with
        the same path after a crash replays the completed prefix at zero
        provider cost, producing a report byte-identical to an
        uninterrupted run.  ``resume=False`` discards any journal at the
        path and starts fresh.  Pass a preconfigured
        :class:`~repro.core.runtime.checkpoint.RunCheckpoint` via
        ``checkpoint=`` instead for crash injection or custom fsync
        batching.  Checkpointed runs default to ``workers=1`` (chunked
        execution is what the journal records).

        ``columnar`` pins the columnar-execution mode for the run's local
        hot paths (blocking, similarity features — see
        :mod:`repro.storage.columnar`); ``None`` keeps the ambient default.
        Both modes produce byte-identical reports.

        ``autotune=True`` consults the profile store (``profile_path``, or
        a journal derived from the cache journal's path, or memory-only)
        before executing: a :class:`~repro.core.optimizer.autotune.
        PlanTuner` fits cost models from previous runs of the same plan
        and chooses worker count, chunk size, the batched-vs-single
        provider path and columnar mode — but only within knobs proven
        byte-identical, so the report matches an untuned run byte for
        byte.  Decisions, predictions and the realized deltas land in
        ``report.tuning`` and the trace; the finished run's profile is
        appended to the store for the next run.  Caller-pinned knobs are
        never overridden (they are recorded under ``tuning["pinned"]``).

        ``cancel`` (a :class:`~repro.core.runtime.cancel.CancelToken`)
        makes the run cooperatively cancellable: the serving layer cancels
        a job from another thread and execution unwinds with
        :class:`~repro.core.runtime.cancel.JobCancelled` at the next
        operator/chunk boundary — combined with ``checkpoint_path`` the
        cancelled run stays resumable.
        """
        from repro.storage.columnar import columnar_mode, resolve_columnar

        if checkpoint is not None and checkpoint_path is not None:
            raise ValueError("pass checkpoint= or checkpoint_path=, not both")
        if checkpoint is None and checkpoint_path is not None:
            from repro.core.runtime.checkpoint import RunCheckpoint

            checkpoint = RunCheckpoint(checkpoint_path, resume=resume)
        plan = None
        tuner = None
        tuning = None
        store = None
        try:
            if autotune:
                from repro.core.optimizer.autotune import (
                    PlanTuner,
                    ProfileStore,
                    resolve_profile_path,
                )

                plan = self.compile(pipeline)
                store = ProfileStore(
                    resolve_profile_path(profile_path, self.service)
                )
                tuner = PlanTuner(store, plan, self.service, engine="batch")
                tuning = tuner.tune(
                    inputs,
                    workers=workers,
                    chunk_size=chunk_size,
                    columnar=columnar,
                    checkpointed=checkpoint is not None,
                )
                workers = tuning.workers
                columnar = tuning.columnar
            if checkpoint is not None and workers is None:
                workers = 1
            try:
                with columnar_mode(resolve_columnar(columnar)):
                    if tuner is None:
                        return self.compile(pipeline).execute(
                            inputs,
                            workers=workers,
                            chunk_size=chunk_size,
                            checkpoint=checkpoint,
                            cancel=cancel,
                        )
                    from repro.core.optimizer.autotune import observe_run

                    with tuning.applied(), observe_run() as walltime:
                        report = plan.execute(
                            inputs,
                            workers=workers,
                            chunk_size=chunk_size,
                            checkpoint=checkpoint,
                            cancel=cancel,
                        )
                    tuner.record(report, walltime["wall_seconds"])
                    return report
            finally:
                if checkpoint is not None:
                    checkpoint.close()
        finally:
            # The store takes a journal file handle at construction, so it
            # must close even when tune() or plan setup raises.
            if store is not None:
                store.close()

    def run_stream(
        self,
        pipeline: Pipeline,
        inputs: Any = None,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        window: int | None = None,
        ledger_path: "str | Any | None" = None,
        resume: bool = True,
        ledger: "Any | None" = None,
        sink: "Any | None" = None,
        source_id: str = "",
        max_attempts: int = 3,
        spill_dir: "str | Any | None" = None,
        spill_budget_bytes: int | None = None,
        lease_timeout: float = 300.0,
        crash: "Any | None" = None,
        kill: "Any | None" = None,
        lease_fault: "Any | None" = None,
        spill_fault: "Any | None" = None,
        autotune: bool = False,
        profile_path: "str | Any | None" = None,
    ) -> RunReport:
        """Compile and execute as a memory-bounded stream.

        The out-of-core counterpart to :meth:`run`: ``inputs`` may be any
        iterable (a generator over millions of records is never
        materialized), the pipeline's chunk-capable core pulls fixed-size
        shards from a durable work queue, and peak memory stays
        O(chunk_size x window) regardless of dataset size.  Requires a
        linear pipeline with a chunk-capable, parallel-safe core (see
        :class:`~repro.core.runtime.workqueue.StreamingExecutor`).

        ``ledger_path`` makes the run crash-safe shard by shard: every
        completed shard is journalled write-ahead, a failed shard retries
        with jittered backoff and is quarantined as poison after
        ``max_attempts`` (reported, never fatal), and re-running with the
        same path resumes at the shard frontier with a byte-identical
        report.  Without it a temporary ledger is used and removed on
        success.  ``source_id`` should carry the input source's own stable
        fingerprint (e.g. ``StreamingERCorpus.fingerprint``) so a resumed
        ledger cannot silently pair with a different source.

        ``sink`` streams outputs out instead of collecting them: a callable
        receiving each shard's output list in shard order; the report then
        carries ``{"records", "sha256"}`` instead of the output list, and
        every operator after the streamed core must be a pass-through save.

        ``crash`` / ``kill`` / ``lease_fault`` / ``spill_fault`` are chaos
        hooks (:mod:`repro.llm.faults`) for the crash-resume test matrix.

        ``autotune=True`` behaves as in :meth:`run`, restricted to the one
        knob streaming proves output-neutral at any cache temperature: the
        worker count (shard boundaries depend only on ``chunk_size``, and
        the crash matrix pins byte-identical reports at any worker count).
        Chunk-size tuning is excluded — it would change the shard
        fingerprints a resumable ledger is keyed by.
        """
        import tempfile
        from pathlib import Path

        from repro.core.runtime.workqueue import ShardLedger, StreamingExecutor

        if ledger is not None and ledger_path is not None:
            raise ValueError("pass ledger= or ledger_path=, not both")
        plan = self.compile(pipeline)
        tuner = None
        tuning = None
        store = None
        try:
            if autotune:
                from repro.core.optimizer.autotune import (
                    PlanTuner,
                    ProfileStore,
                    resolve_profile_path,
                )

                store = ProfileStore(
                    resolve_profile_path(profile_path, self.service)
                )
                tuner = PlanTuner(store, plan, self.service, engine="stream")
                tuning = tuner.tune(None, workers=workers, chunk_size=chunk_size)
                workers = tuning.workers
            if workers is None:
                workers = 1
            ephemeral = False
            if ledger is None:
                if ledger_path is None:
                    ledger_path = (
                        Path(tempfile.mkdtemp(prefix="repro-stream-"))
                        / "ledger.jsonl"
                    )
                    ephemeral = True
                ledger = ShardLedger(ledger_path, resume=resume)
            executor = StreamingExecutor(
                plan,
                ledger=ledger,
                workers=workers,
                chunk_size=chunk_size,
                window=window,
                max_attempts=max_attempts,
                lease_timeout=lease_timeout,
                sink=sink,
                spill_dir=spill_dir,
                spill_budget_bytes=spill_budget_bytes,
                source_id=source_id,
                crash=crash,
                kill=kill,
                lease_fault=lease_fault,
                spill_fault=spill_fault,
            )
            try:
                if tuner is None:
                    report = executor.execute(inputs)
                else:
                    from repro.core.optimizer.autotune import observe_run

                    with tuning.applied(), observe_run() as walltime:
                        report = executor.execute(inputs)
                    tuner.record(report, walltime["wall_seconds"])
                if ephemeral:
                    ledger.delete()
                return report
            finally:
                ledger.close()
        finally:
            # The store takes a journal file handle at construction, so it
            # must close even when tune() or executor setup raises.
            if store is not None:
                store.close()

    # -- data and services ---------------------------------------------------------------

    def register_table(self, table: Table, name: str | None = None) -> None:
        """Add a table to the local database."""
        self.database.register(table, name)

    def connector(self, max_result_rows: int = 20) -> TabularConnector:
        """A privacy-preserving connector over the local database."""
        return TabularConnector(
            self.database, self.service, max_result_rows=max_result_rows
        )

    def usage(self, purpose: str | None = None) -> UsageSummary:
        """LLM usage so far (optionally for one purpose label)."""
        return self.service.usage(purpose)

    def reset_usage(self) -> None:
        """Clear the LLM ledger (e.g. between experiment arms)."""
        self.service.reset_usage()
