"""Batched LLM module: many inputs per prompt, numbered answers back.

The counterpart of :class:`~repro.core.modules.llm_module.LLMModule` for
cost-sensitive pipelines: inputs are packed ``batch_size`` at a time into a
single prompt (``Pair 1: ...``, ``Pair 2: ...``) and the numbered answers
are parsed back out.  A malformed or incomplete response falls back to
re-asking the affected items individually, so batching can reduce cost but
never correctness.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from repro.core.modules.base import ChunkOutcome, ErrorPolicy, Module
from repro.llm.errors import LLMError
from repro.llm.service import LLMService

__all__ = ["BatchLLMModule"]

_ANSWER_RE = re.compile(r"^\s*(\d+)\s*:\s*(.+?)\s*$", re.MULTILINE)


class BatchLLMModule(Module):
    """Batch prompting over a list input.

    Parameters
    ----------
    render_item:
        Maps one input value to its prompt section body.
    parse_answer:
        Maps one numbered answer string to the module's output value.
    item_label:
        Section header word (``Pair`` for matching, ``Item`` generically).
    fallback:
        Per-item module used when an item's answer is missing or unparseable
        (typically the single-item :class:`LLMModule`).
    """

    module_type = "llm"
    chunk_capable = True

    def __init__(
        self,
        name: str,
        service: LLMService,
        task_description: str,
        render_item: Callable[[Any], str],
        parse_answer: Callable[[str], Any],
        batch_size: int = 10,
        item_label: str = "Pair",
        examples: Sequence[tuple[str, str]] = (),
        fallback: Module | None = None,
        purpose: str | None = None,
        error_policy: str = ErrorPolicy.FAIL,
        prompt_version: str = "",
    ):
        super().__init__(name)
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.error_policy = ErrorPolicy.validate(error_policy)
        self.prompt_version = prompt_version
        self.service = service
        self.task_description = task_description
        self.render_item = render_item
        self.parse_answer = parse_answer
        self.batch_size = batch_size
        self.item_label = item_label
        self.examples = list(examples)
        self.fallback = fallback
        self.purpose = purpose or name
        self.fallback_items = 0
        # Align scheduler chunks to whole batches: each chunk is exactly
        # one batch prompt, so chunking never changes prompt contents.
        self.preferred_chunk_size = batch_size

    def build_prompt(self, batch: Sequence[Any]) -> str:
        """Render the numbered batch prompt."""
        lines = [f"Task: {self.task_description}"]
        for index, (example_in, example_out) in enumerate(self.examples, start=1):
            lines.append(f"Example {index}:")
            lines.append(f"{self.item_label}: {example_in}")
            lines.append(f"Output: {example_out}")
        lines.append(
            f"Answer each {self.item_label.lower()} on its own line as "
            f"'<number>: <answer>'."
        )
        for number, value in enumerate(batch, start=1):
            lines.append(f"{self.item_label} {number}:")
            lines.append(self.render_item(value))
        return "\n".join(lines)

    def _item_via_fallback(
        self, index: int, value: Any, batch_error: Exception | None
    ) -> tuple[Any, bool]:
        """Resolve one item whose batched answer is unavailable.

        Returns ``(parsed, ok)``; under a non-``fail`` error policy a double
        failure quarantines the record instead of raising.
        """
        error: Exception
        if self.fallback is not None:
            try:
                return self.fallback.run(value), True
            except Exception as fallback_error:
                error = fallback_error
        else:
            error = batch_error or ValueError(
                f"{self.name}: no parseable answer for item {index + 1} "
                "and no fallback configured"
            )
        if self.error_policy == ErrorPolicy.FAIL:
            raise error
        self.quarantine_record(value, error)
        return None, False

    def _run(self, values: Any) -> list[Any]:
        if not isinstance(values, list):
            raise TypeError(f"{self.name} expects a list of inputs")
        results: list[Any] = [None] * len(values)
        quarantined: set[int] = set()
        for start in range(0, len(values), self.batch_size):
            indices = list(range(start, min(start + self.batch_size, len(values))))
            batch = [values[i] for i in indices]
            try:
                response = self.service.complete(
                    self.build_prompt(batch),
                    purpose=self.purpose,
                    max_tokens=1024,
                    version=self.prompt_version,
                )
            except LLMError as batch_error:
                if self.error_policy == ErrorPolicy.FAIL:
                    raise
                # The whole batch prompt failed (outage, breaker open, budget):
                # resolve each item individually, quarantining double failures.
                for original_index in indices:
                    with self._lock:
                        self.fallback_items += 1
                    if self.obs is not None:
                        self.obs.metrics.counter("batch_llm.fallback_items").inc()
                    parsed, ok = self._item_via_fallback(
                        original_index, values[original_index], batch_error
                    )
                    if ok:
                        results[original_index] = parsed
                    else:
                        quarantined.add(original_index)
                continue
            answered: dict[int, str] = {}
            for number_text, answer in _ANSWER_RE.findall(response):
                answered[int(number_text)] = answer
            for offset, original_index in enumerate(indices, start=1):
                answer = answered.get(offset)
                parsed: Any = None
                ok = False
                if answer is not None:
                    try:
                        parsed = self.parse_answer(answer)
                        ok = True
                    except Exception:
                        ok = False
                if not ok:
                    with self._lock:
                        self.fallback_items += 1
                    if self.obs is not None:
                        self.obs.metrics.counter("batch_llm.fallback_items").inc()
                    parsed, ok = self._item_via_fallback(
                        original_index, values[original_index], None
                    )
                    if not ok:
                        quarantined.add(original_index)
                        continue
                results[original_index] = parsed
        if quarantined:
            return [r for i, r in enumerate(results) if i not in quarantined]
        return results

    def apply_chunk(self, chunk: list[Any]) -> ChunkOutcome:
        """Scheduler hook: one chunk is one (or a few) batch prompts."""
        with self.collecting_quarantine() as bucket:
            out = self._run(list(chunk))
        return ChunkOutcome(outputs=out, quarantine=bucket, degraded=0)

    def describe(self) -> str:
        """Batch size plus fallback accounting."""
        return (
            f"{self.name} <llm batch={self.batch_size}, "
            f"fallbacks={self.fallback_items}>"
        )
