"""The physical module interface.

Paper section 3.1: "A module is a function f: X -> Y ... Modules are usually
viewed as black boxes".  Every physical implementation — custom code, an LLM
prompt, LLM-generated code, or a decorated composite — implements
:class:`Module`.  Per-module statistics feed the optimizer and the run
reports.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ErrorPolicy",
    "ModuleStats",
    "Module",
    "ModuleExecutionError",
    "QuarantinedRecord",
]


class ErrorPolicy:
    """Per-operator failure handling for record-level execution.

    - ``fail``: any record failure aborts the whole run (legacy behaviour).
    - ``skip_record``: a poisoned record is quarantined; the rest proceed.
    - ``degrade``: route the failed record to the module's degraded fallback
      (e.g. the optimizer's learned simulator); quarantine only if that
      also fails.
    """

    FAIL = "fail"
    SKIP_RECORD = "skip_record"
    DEGRADE = "degrade"

    ALL = (FAIL, SKIP_RECORD, DEGRADE)

    @classmethod
    def validate(cls, policy: str) -> str:
        """Return ``policy`` or raise on an unknown name."""
        if policy not in cls.ALL:
            raise ValueError(f"unknown error policy {policy!r}; known: {cls.ALL}")
        return policy


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record a module isolated instead of letting it kill the run."""

    record: Any
    module_name: str
    error: str

    def to_text(self) -> str:
        """One-line rendering for run reports."""
        return f"{self.module_name}: {self.record!r} ({self.error})"


class ModuleExecutionError(RuntimeError):
    """A module failed while processing an input."""

    def __init__(self, module_name: str, value: Any, cause: BaseException):
        super().__init__(f"module {module_name!r} failed on {value!r}: {cause}")
        self.module_name = module_name
        self.value = value
        self.cause = cause


@dataclass
class ModuleStats:
    """Lifetime counters for one module instance."""

    invocations: int = 0
    failures: int = 0
    total_seconds: float = 0.0
    quarantined: int = 0
    degraded: int = 0

    def to_text(self) -> str:
        """One-line rendering."""
        text = (
            f"invocations={self.invocations} failures={self.failures} "
            f"time={self.total_seconds:.3f}s"
        )
        if self.quarantined or self.degraded:
            text += f" quarantined={self.quarantined} degraded={self.degraded}"
        return text


class Module(ABC):
    """A black-box function ``f: X -> Y`` with stats and a module type tag."""

    #: type tag shown in plans/UI: custom | llm | llmgc | decorated
    module_type: str = "custom"

    def __init__(self, name: str):
        self.name = name
        self.stats = ModuleStats()
        self.quarantine: list[QuarantinedRecord] = []

    @abstractmethod
    def _run(self, value: Any) -> Any:
        """Implementation hook: process one input."""

    def run(self, value: Any) -> Any:
        """Process one input, updating stats; wraps failures uniformly."""
        started = time.perf_counter()
        self.stats.invocations += 1
        try:
            return self._run(value)
        except Exception as error:
            self.stats.failures += 1
            if isinstance(error, ModuleExecutionError):
                raise
            raise ModuleExecutionError(self.name, value, error) from error
        finally:
            self.stats.total_seconds += time.perf_counter() - started

    def run_batch(self, values: list[Any]) -> list[Any]:
        """Process a list of inputs (default: item by item)."""
        return [self.run(v) for v in values]

    def quarantine_record(self, record: Any, error: BaseException | str) -> None:
        """Isolate one failed record instead of propagating its error."""
        self.stats.quarantined += 1
        self.quarantine.append(QuarantinedRecord(record, self.name, str(error)))

    def drain_quarantine(self) -> list[QuarantinedRecord]:
        """Take (and clear) quarantined records from this module and its children.

        Wrapper modules expose their wrapped module under conventional
        attribute names (``inner``, ``stage``, ``fallback``, ``teacher``);
        the plan executor drains the whole tree after each operator.
        """
        drained = list(self.quarantine)
        self.quarantine.clear()
        for attribute in ("inner", "stage", "fallback", "teacher"):
            child = getattr(self, attribute, None)
            if isinstance(child, Module):
                drained.extend(child.drain_quarantine())
        return drained

    def describe(self) -> str:
        """Short description for plans and the UI."""
        return f"{self.name} <{self.module_type}>"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} {self.name!r}>"
