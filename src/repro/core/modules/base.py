"""The physical module interface.

Paper section 3.1: "A module is a function f: X -> Y ... Modules are usually
viewed as black boxes".  Every physical implementation — custom code, an LLM
prompt, LLM-generated code, or a decorated composite — implements
:class:`Module`.  Per-module statistics feed the optimizer and the run
reports.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "ErrorPolicy",
    "ModuleStats",
    "Module",
    "ModuleExecutionError",
    "QuarantinedRecord",
    "ChunkOutcome",
]


class ErrorPolicy:
    """Per-operator failure handling for record-level execution.

    - ``fail``: any record failure aborts the whole run (legacy behaviour).
    - ``skip_record``: a poisoned record is quarantined; the rest proceed.
    - ``degrade``: route the failed record to the module's degraded fallback
      (e.g. the optimizer's learned simulator); quarantine only if that
      also fails.
    """

    FAIL = "fail"
    SKIP_RECORD = "skip_record"
    DEGRADE = "degrade"

    ALL = (FAIL, SKIP_RECORD, DEGRADE)

    @classmethod
    def validate(cls, policy: str) -> str:
        """Return ``policy`` or raise on an unknown name."""
        if policy not in cls.ALL:
            raise ValueError(f"unknown error policy {policy!r}; known: {cls.ALL}")
        return policy


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record a module isolated instead of letting it kill the run."""

    record: Any
    module_name: str
    error: str

    def to_text(self) -> str:
        """One-line rendering for run reports."""
        return f"{self.module_name}: {self.record!r} ({self.error})"


class ModuleExecutionError(RuntimeError):
    """A module failed while processing an input."""

    def __init__(self, module_name: str, value: Any, cause: BaseException):
        super().__init__(f"module {module_name!r} failed on {value!r}: {cause}")
        self.module_name = module_name
        self.value = value
        self.cause = cause


@dataclass
class ChunkOutcome:
    """What one record chunk produced under the parallel scheduler.

    Quarantined records and degraded counts are *returned* rather than
    applied to the module's shared state, so the scheduler can merge them
    in deterministic chunk order regardless of thread completion order.
    """

    outputs: list[Any] = field(default_factory=list)
    quarantine: list[QuarantinedRecord] = field(default_factory=list)
    degraded: int = 0


@dataclass
class ModuleStats:
    """Lifetime counters for one module instance."""

    invocations: int = 0
    failures: int = 0
    total_seconds: float = 0.0
    quarantined: int = 0
    degraded: int = 0

    def to_text(self) -> str:
        """One-line rendering."""
        text = (
            f"invocations={self.invocations} failures={self.failures} "
            f"time={self.total_seconds:.3f}s"
        )
        if self.quarantined or self.degraded:
            text += f" quarantined={self.quarantined} degraded={self.degraded}"
        return text


class Module(ABC):
    """A black-box function ``f: X -> Y`` with stats and a module type tag.

    Modules may be driven from several worker threads at once by the
    parallel scheduler (:mod:`repro.core.runtime.scheduler`), so all shared
    counters are guarded by ``_lock``.  List-processing modules that can be
    split into independent record chunks advertise ``chunk_capable`` and
    implement :meth:`apply_chunk`; modules whose behaviour depends on call
    order (online learners, self-repairing codegen) set ``parallel_safe``
    to ``False`` to force whole-input sequential execution.
    """

    #: type tag shown in plans/UI: custom | llm | llmgc | decorated
    module_type: str = "custom"
    #: whether the scheduler may split a list input into record chunks
    chunk_capable: bool = False
    #: whether concurrent execution preserves this module's semantics
    parallel_safe: bool = True
    #: chunk size the module prefers (``None`` = scheduler default)
    preferred_chunk_size: int | None = None
    #: chunk size chosen by the autotune PlanTuner for one run (``None`` =
    #: untuned).  Set and restored around ``execute`` by the tuner; ranks
    #: below an explicit caller ``chunk_size`` but above
    #: ``preferred_chunk_size`` (see
    #: :func:`repro.core.runtime.scheduler.resolve_chunk_size`).
    tuned_chunk_size: int | None = None
    #: gate for the batched provider path (chunk prefetch).  The tuner
    #: turns it off only on verified fully-warm runs, where priming is a
    #: provable no-op; every other path leaves it on.
    prefetch_enabled: bool = True

    def __init__(self, name: str):
        self.name = name
        self.stats = ModuleStats()
        self.quarantine: list[QuarantinedRecord] = []
        self._lock = threading.RLock()
        self._tls = threading.local()
        # Optional repro.obs.Observability hub (attached by the compiler).
        self.obs = None

    @abstractmethod
    def _run(self, value: Any) -> Any:
        """Implementation hook: process one input."""

    def run(self, value: Any) -> Any:
        """Process one input, updating stats; wraps failures uniformly."""
        started = time.perf_counter()
        with self._lock:
            self.stats.invocations += 1
        try:
            return self._run(value)
        except Exception as error:
            with self._lock:
                self.stats.failures += 1
            if isinstance(error, ModuleExecutionError):
                raise
            raise ModuleExecutionError(self.name, value, error) from error
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self.stats.total_seconds += elapsed

    def run_batch(self, values: list[Any]) -> list[Any]:
        """Process a list of inputs (default: item by item)."""
        return [self.run(v) for v in values]

    def apply_chunk(self, chunk: list[Any]) -> ChunkOutcome:
        """Process one record chunk for the parallel scheduler.

        Only meaningful when ``chunk_capable`` is true.  Implementations
        must route failed records through :meth:`quarantine_record` inside
        :meth:`collecting_quarantine` (so isolation is returned, not applied
        to shared state) and must not touch ``stats`` directly — the
        scheduler merges invocations, quarantine and degraded counts in
        deterministic chunk order.
        """
        raise NotImplementedError(f"module {self.name!r} is not chunk-capable")

    @contextmanager
    def collecting_quarantine(self) -> Iterator[list[QuarantinedRecord]]:
        """Redirect this thread's quarantined records into a local bucket.

        Used by :meth:`apply_chunk`: each worker thread collects its own
        chunk's casualties so the scheduler can merge them in chunk order.
        """
        bucket: list[QuarantinedRecord] = []
        self._tls.bucket = bucket
        try:
            yield bucket
        finally:
            self._tls.bucket = None

    def quarantine_record(self, record: Any, error: BaseException | str) -> None:
        """Isolate one failed record instead of propagating its error."""
        entry = QuarantinedRecord(record, self.name, str(error))
        if self.obs is not None:
            self.obs.metrics.counter("module.quarantined").inc()
        bucket = getattr(self._tls, "bucket", None)
        if bucket is not None:
            bucket.append(entry)
            return
        with self._lock:
            self.stats.quarantined += 1
            self.quarantine.append(entry)

    def drain_quarantine(self) -> list[QuarantinedRecord]:
        """Take (and clear) quarantined records from this module and its children.

        Wrapper modules expose their wrapped module under conventional
        attribute names (``inner``, ``stage``, ``fallback``, ``teacher``);
        the plan executor drains the whole tree after each operator.
        """
        with self._lock:
            drained = list(self.quarantine)
            self.quarantine.clear()
        for attribute in ("inner", "stage", "fallback", "teacher"):
            child = getattr(self, attribute, None)
            if isinstance(child, Module):
                drained.extend(child.drain_quarantine())
        return drained

    def config_identity(self) -> dict:
        """JSON-safe identity of this module's *configuration*.

        Feeds :meth:`PhysicalPlan.fingerprint`, so checkpoint resume can
        refuse a journal written under a different prompt template, example
        set or wrapper stack.  Must exclude mutable run state (counters,
        caches, generated code revisions): the fingerprint of a recompiled
        plan has to match the original byte for byte.  Wrapped children are
        included via the same conventional attributes
        :meth:`drain_quarantine` walks.
        """
        identity: dict = {"type": self.module_type, "name": self.name}
        for attribute in ("inner", "stage", "fallback", "teacher"):
            child = getattr(self, attribute, None)
            if isinstance(child, Module):
                identity[attribute] = child.config_identity()
        return identity

    def describe(self) -> str:
        """Short description for plans and the UI."""
        return f"{self.name} <{self.module_type}>"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} {self.name!r}>"
