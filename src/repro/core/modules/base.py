"""The physical module interface.

Paper section 3.1: "A module is a function f: X -> Y ... Modules are usually
viewed as black boxes".  Every physical implementation — custom code, an LLM
prompt, LLM-generated code, or a decorated composite — implements
:class:`Module`.  Per-module statistics feed the optimizer and the run
reports.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ModuleStats", "Module", "ModuleExecutionError"]


class ModuleExecutionError(RuntimeError):
    """A module failed while processing an input."""

    def __init__(self, module_name: str, value: Any, cause: BaseException):
        super().__init__(f"module {module_name!r} failed on {value!r}: {cause}")
        self.module_name = module_name
        self.value = value
        self.cause = cause


@dataclass
class ModuleStats:
    """Lifetime counters for one module instance."""

    invocations: int = 0
    failures: int = 0
    total_seconds: float = 0.0

    def to_text(self) -> str:
        """One-line rendering."""
        return (
            f"invocations={self.invocations} failures={self.failures} "
            f"time={self.total_seconds:.3f}s"
        )


class Module(ABC):
    """A black-box function ``f: X -> Y`` with stats and a module type tag."""

    #: type tag shown in plans/UI: custom | llm | llmgc | decorated
    module_type: str = "custom"

    def __init__(self, name: str):
        self.name = name
        self.stats = ModuleStats()

    @abstractmethod
    def _run(self, value: Any) -> Any:
        """Implementation hook: process one input."""

    def run(self, value: Any) -> Any:
        """Process one input, updating stats; wraps failures uniformly."""
        started = time.perf_counter()
        self.stats.invocations += 1
        try:
            return self._run(value)
        except Exception as error:
            self.stats.failures += 1
            if isinstance(error, ModuleExecutionError):
                raise
            raise ModuleExecutionError(self.name, value, error) from error
        finally:
            self.stats.total_seconds += time.perf_counter() - started

    def run_batch(self, values: list[Any]) -> list[Any]:
        """Process a list of inputs (default: item by item)."""
        return [self.run(v) for v in values]

    def describe(self) -> str:
        """Short description for plans and the UI."""
        return f"{self.name} <{self.module_type}>"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{type(self).__name__} {self.name!r}>"
