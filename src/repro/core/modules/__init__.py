"""Physical modules (paper section 3.1): custom, LLM, LLMGC, decorated."""

from repro.core.modules.base import (
    ErrorPolicy,
    Module,
    ModuleExecutionError,
    ModuleStats,
    QuarantinedRecord,
)
from repro.core.modules.batch_llm import BatchLLMModule
from repro.core.modules.cascade import CascadeModule
from repro.core.modules.custom import CustomModule
from repro.core.modules.decorated import DecoratedModule, RouterModule, SequentialModule
from repro.core.modules.llm_module import (
    LLMModule,
    parse_leading_word,
    parse_number,
    parse_yes_no,
    render_value,
)
from repro.core.modules.llmgc import CodeSandboxError, LLMGCModule, compile_generated_code
from repro.core.modules.validation import (
    ChoiceValidator,
    NonEmptyValidator,
    NumericRangeValidator,
    OutputValidator,
    PredicateValidator,
    RegexValidator,
    TypeValidator,
)

__all__ = [
    "BatchLLMModule",
    "CascadeModule",
    "ErrorPolicy",
    "Module",
    "ModuleExecutionError",
    "ModuleStats",
    "QuarantinedRecord",
    "CustomModule",
    "DecoratedModule",
    "RouterModule",
    "SequentialModule",
    "LLMModule",
    "parse_leading_word",
    "parse_number",
    "parse_yes_no",
    "render_value",
    "CodeSandboxError",
    "LLMGCModule",
    "compile_generated_code",
    "ChoiceValidator",
    "NonEmptyValidator",
    "NumericRangeValidator",
    "OutputValidator",
    "PredicateValidator",
    "RegexValidator",
    "TypeValidator",
]
