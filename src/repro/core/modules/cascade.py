"""Classifier-cascade module: cheap rules first, LLM only for the unsure band.

The curation templates (quality filtering, decontamination) are cost
cascades in the Lingua Manga sense: a free, deterministic rule rung answers
the easy majority, and only documents inside the rule's uncertainty band
escalate to the LLM teacher.  This module implements that routing at the
item level; wrapped in a :class:`~repro.core.modules.mapping.MapModule` it
inherits chunking, parallelism and record-level error isolation.

Contract details that keep the serving guarantees intact:

- **Determinism**: the rule is a pure function and the escalation decision
  depends only on the item, so worker count and chunk boundaries cannot
  change which items reach the teacher — warm reruns replay bit-identically.
- **Prefetch**: :meth:`prefetch` filters the chunk down to the items that
  *will* escalate and warms only those prompts, so a chunk costs one
  provider round trip for exactly the escalated subset.
- **Identity**: thresholds and the rule tag are part of
  :meth:`config_identity`; the teacher is walked through the conventional
  ``teacher`` attribute (checkpoint fingerprints, quarantine draining).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.modules.base import Module

__all__ = ["CascadeModule"]


class CascadeModule(Module):
    """Route one item through ``rule`` and, if unsure, through ``teacher``.

    Parameters
    ----------
    rule:
        Pure function ``item -> score`` in ``[0, 1]``.
    teacher:
        Item-level module (typically an LLM prompt) returning the boolean
        verdict for escalated items.
    lower, upper:
        Confidence band: ``score < lower`` answers ``False`` and
        ``score >= upper`` answers ``True`` without consulting the teacher;
        anything in between escalates.
    rule_tag:
        Version tag of the rule implementation, folded into the module's
        config identity so checkpoint resume notices rule changes.
    out_key:
        When set and the item is a dict, the verdict is stored under this
        key on a copy of the item (document-enrichment protocol) instead of
        being returned bare.
    """

    module_type = "decorated"

    def __init__(
        self,
        name: str,
        rule: Callable[[Any], float],
        teacher: Module,
        lower: float,
        upper: float,
        rule_tag: str = "rules-v1",
        out_key: str | None = None,
    ):
        if not 0.0 <= lower <= upper <= 1.0:
            raise ValueError(f"need 0 <= lower <= upper <= 1, got {lower}, {upper}")
        super().__init__(name)
        self.rule = rule
        self.teacher = teacher
        self.lower = lower
        self.upper = upper
        self.rule_tag = rule_tag
        self.out_key = out_key
        #: items answered by the rule rung / escalated to the teacher
        self.rule_decisions = 0
        self.escalations = 0

    def escalates(self, item: Any) -> bool:
        """Whether ``item`` falls in the uncertainty band (pure)."""
        return self.lower <= self.rule(item) < self.upper

    def _run(self, value: Any) -> Any:
        score = self.rule(value)
        if score < self.lower:
            verdict: Any = False
            with self._lock:
                self.rule_decisions += 1
        elif score >= self.upper:
            verdict = True
            with self._lock:
                self.rule_decisions += 1
        else:
            with self._lock:
                self.escalations += 1
            verdict = self.teacher.run(value)
        if self.out_key is not None and isinstance(value, dict):
            out = dict(value)
            out[self.out_key] = bool(verdict)
            return out
        return verdict

    def prefetch(self, values: list[Any]) -> int:
        """Warm the teacher's cache for exactly the items that will escalate."""
        escalated = [v for v in values if self.escalates(v)]
        if not escalated:
            return 0
        prefetch = getattr(self.teacher, "prefetch", None)
        if callable(prefetch):
            return prefetch(escalated)
        return 0

    def config_identity(self) -> dict:
        identity = super().config_identity()
        identity.update(
            {
                "cascade": {
                    "lower": self.lower,
                    "upper": self.upper,
                    "rule_tag": self.rule_tag,
                    "out_key": self.out_key,
                }
            }
        )
        return identity

    def describe(self) -> str:
        return (
            f"{self.name} <cascade [{self.lower:.2f}, {self.upper:.2f}) -> "
            f"{self.teacher.describe()}>"
        )
