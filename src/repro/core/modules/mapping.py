"""Mapping and enrichment adapters.

Pipelines process datasets (lists of records/documents); most physical
modules judge a *single* item.  These adapters bridge the two levels:

- :class:`MapModule` applies an item-level module to each element of a list.
- :class:`EnrichModule` threads dict-shaped documents through a stage,
  storing the stage's output under a new key (the document-enrichment
  protocol the name-extraction pipeline uses).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.modules.base import ChunkOutcome, ErrorPolicy, Module

__all__ = ["MapModule", "EnrichModule"]


class MapModule(Module):
    """Apply ``inner`` to every element of a list input.

    ``error_policy`` controls record-level isolation (see
    :class:`~repro.core.modules.base.ErrorPolicy`): under ``skip_record`` a
    failing element is quarantined and omitted from the output; under
    ``degrade`` the optional ``fallback`` module answers for it first, and
    only a double failure quarantines.  ``fail`` keeps the legacy
    abort-the-run behaviour.

    Map application is chunk-capable: the parallel scheduler may split the
    input list into record chunks and run :meth:`apply_chunk` on several
    worker threads.  When the inner module exposes ``prefetch`` (the LLM
    module does), each chunk first warms the service cache with one batched
    provider call, so N records cost one provider round trip, not N.
    """

    module_type = "decorated"
    chunk_capable = True

    def __init__(
        self,
        name: str,
        inner: Module,
        error_policy: str = ErrorPolicy.FAIL,
        fallback: Module | None = None,
    ):
        super().__init__(name)
        self.inner = inner
        self.error_policy = ErrorPolicy.validate(error_policy)
        self.fallback = fallback

    def _apply_items(self, items: list[Any]) -> tuple[list[Any], int]:
        """Run the per-item loop; returns ``(outputs, degraded_count)``.

        Quarantined records flow through :meth:`quarantine_record`, which
        respects an active ``collecting_quarantine`` bucket.
        """
        if self.error_policy == ErrorPolicy.FAIL:
            return [self.inner.run(item) for item in items], 0
        out: list[Any] = []
        degraded_count = 0
        for item in items:
            try:
                out.append(self.inner.run(item))
            except Exception as error:
                degraded = False
                if (
                    self.error_policy == ErrorPolicy.DEGRADE
                    and self.fallback is not None
                ):
                    try:
                        out.append(self.fallback.run(item))
                        degraded_count += 1
                        degraded = True
                        if self.obs is not None:
                            self.obs.metrics.counter("module.degraded").inc()
                    except Exception as fallback_error:
                        error = fallback_error
                if not degraded:
                    self.quarantine_record(item, error)
        return out, degraded_count

    def _run(self, value: Any) -> Any:
        if not isinstance(value, list):
            raise TypeError(
                f"{self.name} expects a list, got {type(value).__name__}"
            )
        out, degraded = self._apply_items(value)
        if degraded:
            with self._lock:
                self.stats.degraded += degraded
        return out

    def prefetch(self, values: list[Any]) -> int:
        """Delegate cache warming to the inner module (if it supports it).

        Makes prefetch compose through wrapper stacks — a map over a map
        (or over a distillation router exposing its teacher's prefetch)
        still batches provider calls per chunk.  The service consults both
        cache tiers before priming, so a warm run prefetches nothing.
        """
        prefetch = getattr(self.inner, "prefetch", None)
        if callable(prefetch):
            return prefetch(values)
        return 0

    def apply_chunk(self, chunk: list[Any]) -> ChunkOutcome:
        """Scheduler hook: process one record chunk in isolation.

        ``prefetch_enabled`` is the autotune batched-vs-single knob: the
        PlanTuner clears it only on verified fully-warm runs, where the
        prime scan cannot reach the provider anyway.
        """
        if self.prefetch_enabled:
            self.prefetch(chunk)
        with self.collecting_quarantine() as bucket:
            out, degraded = self._apply_items(chunk)
        return ChunkOutcome(outputs=out, quarantine=bucket, degraded=degraded)

    def describe(self) -> str:
        """Rendering that exposes the mapped module."""
        policy = (
            "" if self.error_policy == ErrorPolicy.FAIL else f", {self.error_policy}"
        )
        return f"{self.name} <map over {self.inner.describe()}{policy}>"


class EnrichModule(Module):
    """Document enrichment: ``doc[out_key] = stage(doc[in_key])``.

    ``stage`` may be a :class:`Module` or a plain callable; when
    ``whole_doc`` is true the stage receives the entire document rather
    than ``doc[in_key]`` (for stages that need several keys).
    """

    module_type = "decorated"

    def __init__(
        self,
        name: str,
        stage: Module | Callable[[Any], Any],
        in_key: str,
        out_key: str,
        whole_doc: bool = False,
    ):
        super().__init__(name)
        self.stage = stage
        self.in_key = in_key
        self.out_key = out_key
        self.whole_doc = whole_doc

    def _apply(self, payload: Any) -> Any:
        if isinstance(self.stage, Module):
            return self.stage.run(payload)
        return self.stage(payload)

    def _run(self, value: Any) -> Any:
        if not isinstance(value, dict):
            raise TypeError(f"{self.name} expects a document dict")
        payload = value if self.whole_doc else value[self.in_key]
        out = dict(value)
        out[self.out_key] = self._apply(payload)
        return out

    def describe(self) -> str:
        """Rendering showing the key flow."""
        source = "doc" if self.whole_doc else self.in_key
        return f"{self.name} <enrich {source} -> {self.out_key}>"
