"""Mapping and enrichment adapters.

Pipelines process datasets (lists of records/documents); most physical
modules judge a *single* item.  These adapters bridge the two levels:

- :class:`MapModule` applies an item-level module to each element of a list.
- :class:`EnrichModule` threads dict-shaped documents through a stage,
  storing the stage's output under a new key (the document-enrichment
  protocol the name-extraction pipeline uses).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.modules.base import ErrorPolicy, Module

__all__ = ["MapModule", "EnrichModule"]


class MapModule(Module):
    """Apply ``inner`` to every element of a list input.

    ``error_policy`` controls record-level isolation (see
    :class:`~repro.core.modules.base.ErrorPolicy`): under ``skip_record`` a
    failing element is quarantined and omitted from the output; under
    ``degrade`` the optional ``fallback`` module answers for it first, and
    only a double failure quarantines.  ``fail`` keeps the legacy
    abort-the-run behaviour.
    """

    module_type = "decorated"

    def __init__(
        self,
        name: str,
        inner: Module,
        error_policy: str = ErrorPolicy.FAIL,
        fallback: Module | None = None,
    ):
        super().__init__(name)
        self.inner = inner
        self.error_policy = ErrorPolicy.validate(error_policy)
        self.fallback = fallback

    def _run(self, value: Any) -> Any:
        if not isinstance(value, list):
            raise TypeError(
                f"{self.name} expects a list, got {type(value).__name__}"
            )
        if self.error_policy == ErrorPolicy.FAIL:
            return [self.inner.run(item) for item in value]
        out: list[Any] = []
        for item in value:
            try:
                out.append(self.inner.run(item))
            except Exception as error:
                degraded = False
                if (
                    self.error_policy == ErrorPolicy.DEGRADE
                    and self.fallback is not None
                ):
                    try:
                        out.append(self.fallback.run(item))
                        self.stats.degraded += 1
                        degraded = True
                    except Exception as fallback_error:
                        error = fallback_error
                if not degraded:
                    self.quarantine_record(item, error)
        return out

    def describe(self) -> str:
        """Rendering that exposes the mapped module."""
        policy = (
            "" if self.error_policy == ErrorPolicy.FAIL else f", {self.error_policy}"
        )
        return f"{self.name} <map over {self.inner.describe()}{policy}>"


class EnrichModule(Module):
    """Document enrichment: ``doc[out_key] = stage(doc[in_key])``.

    ``stage`` may be a :class:`Module` or a plain callable; when
    ``whole_doc`` is true the stage receives the entire document rather
    than ``doc[in_key]`` (for stages that need several keys).
    """

    module_type = "decorated"

    def __init__(
        self,
        name: str,
        stage: Module | Callable[[Any], Any],
        in_key: str,
        out_key: str,
        whole_doc: bool = False,
    ):
        super().__init__(name)
        self.stage = stage
        self.in_key = in_key
        self.out_key = out_key
        self.whole_doc = whole_doc

    def _apply(self, payload: Any) -> Any:
        if isinstance(self.stage, Module):
            return self.stage.run(payload)
        return self.stage(payload)

    def _run(self, value: Any) -> Any:
        if not isinstance(value, dict):
            raise TypeError(f"{self.name} expects a document dict")
        payload = value if self.whole_doc else value[self.in_key]
        out = dict(value)
        out[self.out_key] = self._apply(payload)
        return out

    def describe(self) -> str:
        """Rendering showing the key flow."""
        source = "doc" if self.whole_doc else self.in_key
        return f"{self.name} <enrich {source} -> {self.out_key}>"
