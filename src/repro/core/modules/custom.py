"""Custom modules: hand-written code wrapped in the module interface."""

from __future__ import annotations

from typing import Any, Callable

from repro.core.modules.base import Module

__all__ = ["CustomModule"]


class CustomModule(Module):
    """A module backed by a plain Python callable.

    This is the paper's "basic module ... implemented with manually written
    code", used both for user code and for Lingua Manga's built-ins.
    """

    module_type = "custom"

    def __init__(self, name: str, fn: Callable[[Any], Any], description: str = ""):
        super().__init__(name)
        self.fn = fn
        self.description = description

    def _run(self, value: Any) -> Any:
        return self.fn(value)

    def describe(self) -> str:
        """Short description including the user-provided summary."""
        suffix = f" — {self.description}" if self.description else ""
        return f"{self.name} <custom>{suffix}"
