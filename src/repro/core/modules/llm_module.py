"""LLM modules: a prompt template plus output parsing and validation.

Paper section 3.1: "An LLM itself can be a module ... an LLM module requires
a good task description as input; and LLM outputs typically need proper
validation."  This class owns the whole prompt lifecycle: render the task
description, worked examples and the input payload; call the service; parse
the text; validate; and re-prompt with a stricter instruction when
validation fails.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Sequence

from repro.core.modules.base import Module
from repro.core.modules.validation import OutputValidator
from repro.llm.errors import MalformedResponseError, ProviderError
from repro.llm.service import LLMService

__all__ = [
    "LLMModule",
    "render_value",
    "parse_yes_no",
    "parse_leading_word",
    "parse_number",
]


def render_value(value: Any) -> str:
    """Default payload rendering: dicts as JSON, everything else as str."""
    if isinstance(value, dict):
        return json.dumps(value, ensure_ascii=False, sort_keys=True, default=str)
    return str(value)


def parse_yes_no(text: str) -> bool:
    """Parse a yes/no answer; raises :class:`MalformedResponseError`."""
    match = re.match(r"\s*(yes|no)\b", text, re.IGNORECASE)
    if match is None:
        raise MalformedResponseError(f"expected Yes/No, got {text[:80]!r}")
    return match.group(1).lower() == "yes"


def parse_leading_word(text: str) -> str:
    """First word/phrase up to the sentence-ending period."""
    head = text.strip().split(".")[0].strip()
    if not head:
        raise MalformedResponseError("empty response")
    return head


def parse_number(text: str) -> float:
    """First decimal number in the response."""
    match = re.search(r"-?\d+(?:\.\d+)?", text)
    if match is None:
        raise MalformedResponseError(f"no number in {text[:80]!r}")
    return float(match.group())


class LLMModule(Module):
    """A module implemented by prompting the LLM service.

    Parameters
    ----------
    service:
        The budgeted/cached :class:`LLMService` to call.
    task_description:
        Natural-language statement of the task ("Determine if the following
        entities are equivalent").  This is what the no-code user writes.
    parser:
        Maps the raw response text to the module's output value; raise
        :class:`MalformedResponseError` to trigger a validation retry.
    render:
        Maps the input value to the payload section of the prompt.
    payload_label:
        Label for the payload line (``Input`` by default; e.g. ``Phrase``).
    examples:
        Worked ``(input_text, output_text)`` pairs — few-shot examples that
        measurably improve the simulated model just like a real one.
    validators:
        Post-parse checks; failures trigger one stricter re-prompt before
        the module gives up and raises.
    instructions:
        Extra standing instructions (domain knowledge injected in NL).
    prompt_version:
        Version tag mixed into the service's cache keys.  Bump it whenever
        the prompt template's *semantics* change (task rewording, new
        parser) so stale cached answers from the previous revision — or
        from another skill sharing a prompt string — can never be served.
    """

    module_type = "llm"

    def __init__(
        self,
        name: str,
        service: LLMService,
        task_description: str,
        parser: Callable[[str], Any] = parse_leading_word,
        render: Callable[[Any], str] = render_value,
        payload_label: str = "Input",
        examples: Sequence[tuple[str, str]] = (),
        validators: Sequence[OutputValidator] = (),
        instructions: str = "",
        max_attempts: int = 2,
        purpose: str | None = None,
        prompt_version: str = "",
    ):
        super().__init__(name)
        self.service = service
        self.task_description = task_description
        self.parser = parser
        self.render = render
        self.payload_label = payload_label
        self.examples = list(examples)
        self.validators = list(validators)
        self.instructions = instructions
        self.max_attempts = max(1, max_attempts)
        self.purpose = purpose or name
        self.prompt_version = prompt_version
        self.validation_retries = 0
        self.provider_failures = 0

    def config_identity(self) -> dict:
        identity = super().config_identity()
        identity.update(
            task=self.task_description,
            payload_label=self.payload_label,
            examples=[list(pair) for pair in self.examples],
            instructions=self.instructions,
            version=self.prompt_version,
            max_attempts=self.max_attempts,
            purpose=self.purpose,
        )
        return identity

    def build_prompt(self, value: Any, strictness: int = 0) -> str:
        """Render the full prompt for ``value``.

        ``strictness`` > 0 appends increasingly firm output-format demands —
        the re-prompt path after a validation failure.
        """
        lines = [f"Task: {self.task_description}"]
        if self.instructions:
            lines.append(self.instructions)
        for index, (example_in, example_out) in enumerate(self.examples, start=1):
            lines.append(f"Example {index}:")
            lines.append(f"{self.payload_label}: {example_in}")
            lines.append(f"Output: {example_out}")
        lines.append(f"{self.payload_label}: {self.render(value)}")
        if strictness == 1:
            lines.append(
                "Answer strictly in the required output format, with no extra words."
            )
        elif strictness >= 2:
            lines.append(
                "IMPORTANT: your previous answer was malformed. Output ONLY the "
                "required value and nothing else."
            )
        return "\n".join(lines)

    def prefetch(self, values: Sequence[Any]) -> int:
        """Warm the service cache for ``values`` with one batched call.

        Builds the first-attempt prompt for every value and submits the
        distinct uncached ones through the service's batched provider path
        (:meth:`LLMService.prime`).  The per-item :meth:`run` calls then
        hit the cache, so a chunk of N records costs one provider round
        trip.  Best effort: failures surface on the per-item path, which
        owns retry/fallback/quarantine semantics.
        """
        prompts = [self.build_prompt(value, strictness=0) for value in values]
        return self.service.prime(
            prompts, purpose=self.purpose, version=self.prompt_version
        )

    def _run(self, value: Any) -> Any:
        last_problem = ""
        for attempt in range(self.max_attempts):
            prompt = self.build_prompt(value, strictness=attempt)
            try:
                text = self.service.complete(
                    prompt, purpose=self.purpose, version=self.prompt_version
                )
            except ProviderError:
                # The service already exhausted its resilience policy
                # (retries, fallback providers, breaker); count it so run
                # reports can attribute outages per operator, then let the
                # executor's error policy decide the record's fate.
                self.provider_failures += 1
                raise
            try:
                parsed = self.parser(text)
            except MalformedResponseError as error:
                last_problem = str(error)
                self.validation_retries += 1
                continue
            problem = self._validate(parsed)
            if problem is None:
                return parsed
            last_problem = problem
            self.validation_retries += 1
        raise MalformedResponseError(
            f"module {self.name!r}: output failed validation after "
            f"{self.max_attempts} attempts: {last_problem}"
        )

    def _validate(self, parsed: Any) -> str | None:
        for validator in self.validators:
            ok, message = validator.check(parsed)
            if not ok:
                return message
        return None
