"""Decorated modules: composition plus optimizer enhancements.

Paper section 3.1: "a decorated module can comprise multiple basic modules
and be enhanced by the optimizer".  Two composition forms are provided:

- :class:`SequentialModule` — a fixed chain ``f3(f2(f1(x)))``.
- :class:`DecoratedModule` — an inner module wrapped by named decorations
  (the optimizer attaches validator/simulator/connector behaviour by
  wrapping, so the inner module stays untouched and auditable).
- :class:`RouterModule` — routes each input to one of several modules by a
  predicate (used by the expert imputation pipeline to send easy cases to
  rules and hard cases to the LLM).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.modules.base import Module

__all__ = ["SequentialModule", "DecoratedModule", "RouterModule"]


class SequentialModule(Module):
    """Compose modules left to right: output of each feeds the next."""

    module_type = "decorated"

    def __init__(self, name: str, stages: Sequence[Module]):
        super().__init__(name)
        if not stages:
            raise ValueError("SequentialModule needs at least one stage")
        self.stages = list(stages)

    def _run(self, value: Any) -> Any:
        for stage in self.stages:
            value = stage.run(value)
        return value

    def describe(self) -> str:
        """Chain rendering of the stage names."""
        chain = " -> ".join(stage.name for stage in self.stages)
        return f"{self.name} <decorated: {chain}>"


class DecoratedModule(Module):
    """An inner module plus an ordered list of decoration labels.

    The actual behaviour changes live in ``wrapper`` (a module that already
    wraps the inner one); the decoration labels document *what* the
    optimizer attached, for plans and the UI.
    """

    module_type = "decorated"

    def __init__(self, name: str, inner: Module, wrapper: Module, decorations: Sequence[str]):
        super().__init__(name)
        self.inner = inner
        self.wrapper = wrapper
        self.decorations = list(decorations)

    def _run(self, value: Any) -> Any:
        return self.wrapper.run(value)

    def describe(self) -> str:
        """Inner module plus attached decorations."""
        tags = ", ".join(self.decorations) if self.decorations else "none"
        return f"{self.name} <decorated: {self.inner.name} + [{tags}]>"


class RouterModule(Module):
    """Route each input to ``primary`` unless ``escalate`` says otherwise.

    ``escalate(value, primary_result)`` inspects the primary module's result
    and decides whether the fallback should be consulted instead — the
    cheap-path/expensive-path split behind the paper's 1/6-LLM-calls
    imputation result.
    """

    module_type = "decorated"

    def __init__(
        self,
        name: str,
        primary: Module,
        fallback: Module,
        escalate: Callable[[Any, Any], bool],
    ):
        super().__init__(name)
        self.primary = primary
        self.fallback = fallback
        self.escalate = escalate
        self.escalations = 0

    def _run(self, value: Any) -> Any:
        result = self.primary.run(value)
        if self.escalate(value, result):
            with self._lock:
                self.escalations += 1
            return self.fallback.run(value)
        return result

    def describe(self) -> str:
        """Primary/fallback rendering with the escalation count."""
        return (
            f"{self.name} <decorated: {self.primary.name} || {self.fallback.name}, "
            f"escalations={self.escalations}>"
        )
