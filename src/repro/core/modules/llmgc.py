"""LLMGC modules: modules whose implementation is LLM-generated code.

Paper section 3.1: "An LLM can dynamically generate code to implement an
LLMGC module, replacing the role of programmers.  Lingua Manga allows LLMGC
to call other modules in the system or use external tools."  The generated
source is executed in a restricted namespace; the ``tools`` dict is the
only capability the code receives beyond safe builtins — exactly the
"external tool APIs" a user can grant (other modules, a calculator, another
LLM).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from repro.core.modules.base import Module
from repro.llm.errors import MalformedResponseError
from repro.llm.service import LLMService

__all__ = ["LLMGCModule", "CodeSandboxError", "compile_generated_code"]

_FENCE_RE = re.compile(r"```(?:python)?\s*\n(.*?)```", re.DOTALL)
_REVISION_RE = re.compile(r"revision=(\d+)")

_SAFE_BUILTINS = {
    "abs": abs, "all": all, "any": any, "bool": bool, "dict": dict,
    "enumerate": enumerate, "filter": filter, "float": float, "int": int,
    "isinstance": isinstance, "len": len, "list": list, "map": map,
    "max": max, "min": min, "range": range, "repr": repr, "reversed": reversed,
    "round": round, "set": set, "sorted": sorted, "str": str, "sum": sum,
    "tuple": tuple, "zip": zip, "ValueError": ValueError, "KeyError": KeyError,
    "TypeError": TypeError, "Exception": Exception, "print": print,
}

_IMPORT_WHITELIST = ("re", "math", "json", "string", "difflib", "collections", "itertools")


class CodeSandboxError(RuntimeError):
    """Generated code could not be compiled or did not define ``run``."""


def _safe_import(name: str, *args: Any, **kwargs: Any):
    if name not in _IMPORT_WHITELIST:
        raise CodeSandboxError(f"generated code may not import {name!r}")
    return __import__(name, *args, **kwargs)


def compile_generated_code(source: str) -> Callable[[Any, Mapping[str, Any]], Any]:
    """Compile LLM-generated source and return its ``run(value, tools)``.

    The namespace exposes only safe builtins and a whitelisted ``import``.
    """
    namespace: dict[str, Any] = {
        "__builtins__": dict(_SAFE_BUILTINS, __import__=_safe_import)
    }
    try:
        exec(compile(source, "<llmgc>", "exec"), namespace)  # noqa: S102
    except CodeSandboxError:
        raise
    except Exception as error:
        raise CodeSandboxError(f"generated code failed to load: {error}") from error
    run = namespace.get("run")
    if not callable(run):
        raise CodeSandboxError("generated code does not define a callable run(value, tools)")
    return run


class LLMGCModule(Module):
    """A module implemented by code the LLM wrote.

    The module starts un-generated; :meth:`generate` asks the service for a
    first draft and :meth:`repair` asks for the next revision given a
    critique (both are what the optimizer's validator drives).  ``tools``
    are the capabilities the user granted the generated code.
    """

    module_type = "llmgc"
    # Self-repairing codegen mutates its own implementation between calls;
    # concurrent execution could observe mid-repair state.
    parallel_safe = False

    def __init__(
        self,
        name: str,
        service: LLMService,
        task_description: str,
        tools: Mapping[str, Any] | None = None,
        guidelines: str = "",
        purpose: str | None = None,
    ):
        super().__init__(name)
        self.service = service
        self.task_description = task_description
        self.tools = dict(tools or {})
        self.guidelines = guidelines
        self.purpose = purpose or f"{name}-codegen"
        self.source: str | None = None
        self.revision: int = -1
        self._fn: Callable[[Any, Mapping[str, Any]], Any] | None = None

    def config_identity(self) -> dict:
        identity = super().config_identity()
        identity.update(
            task=self.task_description,
            tools=sorted(self.tools),
            guidelines=self.guidelines,
            purpose=self.purpose,
        )
        return identity

    # -- code lifecycle ---------------------------------------------------------

    def generate(self) -> str:
        """Ask the LLM for a first implementation; returns the source."""
        prompt = self._generation_prompt(revision=None)
        return self._accept_response(self.service.complete(prompt, purpose=self.purpose))

    def repair(self, suggestion: str) -> str:
        """Ask the LLM for the next revision given a critique."""
        prompt = self._generation_prompt(revision=self.revision, suggestion=suggestion)
        return self._accept_response(self.service.complete(prompt, purpose=self.purpose))

    def regenerate_from_scratch(self) -> str:
        """Discard revision history and request a fresh draft.

        The validator falls back to this after its repair-loop timeout
        (paper: "leading to a re-generation of the LLMGC module").
        """
        self.revision = -1
        self.source = None
        self._fn = None
        return self.generate()

    def _generation_prompt(self, revision: int | None, suggestion: str = "") -> str:
        lines = [
            "Please write a python code function for the following task.",
            f"Task: {self.task_description}",
        ]
        if self.guidelines:
            lines.append(f"Guidelines: {self.guidelines}")
        if self.tools:
            lines.append(
                "Available tools (passed as the 'tools' dict): "
                + ", ".join(sorted(self.tools))
            )
        if revision is not None and revision >= 0:
            lines.append(f"Revision: {revision}")
            lines.append("The previous code failed some test cases.")
        if suggestion:
            lines.append(f"Suggestion: {suggestion}")
        lines.append("Define: def run(value, tools): ...")
        return "\n".join(lines)

    def _accept_response(self, response: str) -> str:
        fence = _FENCE_RE.search(response)
        if fence is None:
            raise MalformedResponseError(
                f"LLM response contains no code block: {response[:120]!r}"
            )
        source = fence.group(1)
        revision_match = _REVISION_RE.search(response)
        self.revision = (
            int(revision_match.group(1)) if revision_match else self.revision + 1
        )
        self._fn = compile_generated_code(source)
        self.source = source
        return source

    # -- execution -----------------------------------------------------------------

    def ensure_generated(self) -> None:
        """Generate the first draft if no code exists yet."""
        if self._fn is None:
            self.generate()

    def _run(self, value: Any) -> Any:
        self.ensure_generated()
        assert self._fn is not None
        return self._fn(value, self.tools)

    def describe(self) -> str:
        """Description including the current revision."""
        state = f"rev {self.revision}" if self.source else "not generated"
        return f"{self.name} <llmgc, {state}>"
