"""The logical pipeline: a validated DAG of logical operators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dsl.operators import LogicalOperator

__all__ = ["PipelineError", "Pipeline"]


class PipelineError(ValueError):
    """Raised when a pipeline is structurally invalid."""


@dataclass
class Pipeline:
    """A named DAG of logical operators.

    Operators reference their inputs by operator name.  ``validate`` checks
    referential integrity and acyclicity; ``topological_order`` is the
    execution order the compiler binds against.
    """

    name: str
    operators: list[LogicalOperator] = field(default_factory=list)
    description: str = ""

    def add(self, operator: LogicalOperator) -> "Pipeline":
        """Append an operator (names must be unique); returns self."""
        if any(op.name == operator.name for op in self.operators):
            raise PipelineError(f"duplicate operator name: {operator.name!r}")
        self.operators.append(operator)
        return self

    def operator(self, name: str) -> LogicalOperator:
        """Look up an operator by name."""
        for op in self.operators:
            if op.name == name:
                return op
        raise KeyError(f"no operator named {name!r} in pipeline {self.name!r}")

    def validate(self) -> None:
        """Check structure; raises :class:`PipelineError` on problems."""
        if not self.operators:
            raise PipelineError("pipeline has no operators")
        names = {op.name for op in self.operators}
        for op in self.operators:
            for ref in op.inputs:
                if ref not in names:
                    raise PipelineError(
                        f"operator {op.name!r} references unknown input {ref!r}"
                    )
                if ref == op.name:
                    raise PipelineError(f"operator {op.name!r} references itself")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> list[LogicalOperator]:
        """Operators in a valid execution order (raises on cycles)."""
        indegree = {op.name: len(op.inputs) for op in self.operators}
        dependants: dict[str, list[str]] = {op.name: [] for op in self.operators}
        for op in self.operators:
            for ref in op.inputs:
                if ref in dependants:
                    dependants[ref].append(op.name)
        # Stable order: preserve insertion order among ready nodes.
        ready = [op.name for op in self.operators if indegree[op.name] == 0]
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in dependants[current]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.operators):
            stuck = sorted(set(indegree) - set(order))
            raise PipelineError(f"pipeline contains a cycle involving {stuck}")
        by_name = {op.name: op for op in self.operators}
        return [by_name[name] for name in order]

    def sinks(self) -> list[LogicalOperator]:
        """Operators nothing depends on (the pipeline's outputs)."""
        consumed = {ref for op in self.operators for ref in op.inputs}
        return [op for op in self.operators if op.name not in consumed]

    def to_text(self) -> str:
        """Multi-line rendering in execution order (Fig 2/3/4 style)."""
        lines = [f"pipeline {self.name!r}:"]
        for op in self.topological_order():
            arrow = f" <- {', '.join(op.inputs)}" if op.inputs else ""
            lines.append(f"  {op.describe()}{arrow}")
        return "\n".join(lines)
