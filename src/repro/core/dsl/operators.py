"""Logical operators of the Lingua Manga DSL.

A pipeline is a DAG of *logical* operators (paper section 3: "composing
pipelines of logical operators").  Each operator declares a kind from the
operator catalogue, free-form parameters, and its upstream inputs.  The
compiler later binds each logical operator to a *physical module*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["OperatorKind", "LogicalOperator", "OPERATOR_CATALOGUE"]


class OperatorKind:
    """The catalogue of logical operator kinds."""

    LOAD = "load"
    SAVE = "save"
    MATCH_ENTITIES = "match_entities"
    IMPUTE = "impute"
    TOKENIZE = "tokenize"
    NOUN_PHRASES = "noun_phrases"
    TAG_NAMES = "tag_names"
    DETECT_LANGUAGE = "detect_language"
    EXTRACT_NAMES = "extract_names"
    CLASSIFY = "classify"
    DEDUPE = "dedupe"
    CLEAN_TEXT = "clean_text"
    FILTER = "filter"
    TRANSFORM = "transform"
    SCHEMA_MATCH = "schema_match"
    SUMMARIZE = "summarize"
    CUSTOM = "custom"
    DEDUP_CANDIDATES = "dedup_candidates"
    QUALITY_FILTER = "quality_filter"
    DECONTAMINATE = "decontaminate"

    ALL = (
        LOAD, SAVE, MATCH_ENTITIES, IMPUTE, TOKENIZE, NOUN_PHRASES, TAG_NAMES,
        DETECT_LANGUAGE, EXTRACT_NAMES, CLASSIFY, DEDUPE, CLEAN_TEXT, FILTER,
        TRANSFORM, SCHEMA_MATCH, SUMMARIZE, CUSTOM, DEDUP_CANDIDATES,
        QUALITY_FILTER, DECONTAMINATE,
    )


#: Human descriptions used by template search and the UI.
OPERATOR_CATALOGUE: dict[str, str] = {
    OperatorKind.LOAD: "Load a table from CSV/JSON or an in-memory source",
    OperatorKind.SAVE: "Save a table or values to CSV/JSON",
    OperatorKind.MATCH_ENTITIES: "Decide whether record pairs refer to the same entity",
    OperatorKind.IMPUTE: "Fill in missing attribute values",
    OperatorKind.TOKENIZE: "Split text into tokens",
    OperatorKind.NOUN_PHRASES: "Extract candidate noun phrases from text",
    OperatorKind.TAG_NAMES: "Tag which phrases are person names",
    OperatorKind.DETECT_LANGUAGE: "Detect the language of a text",
    OperatorKind.EXTRACT_NAMES: "Extract person names from text end-to-end",
    OperatorKind.CLASSIFY: "Classify an input into one of a set of labels",
    OperatorKind.DEDUPE: "Remove duplicate records",
    OperatorKind.CLEAN_TEXT: "Normalise text values",
    OperatorKind.FILTER: "Keep records matching a predicate",
    OperatorKind.TRANSFORM: "Apply a function to each record",
    OperatorKind.SCHEMA_MATCH: "Match columns between two schemas",
    OperatorKind.SUMMARIZE: "Summarise a text",
    OperatorKind.CUSTOM: "A user-provided operator",
    OperatorKind.DEDUP_CANDIDATES: (
        "Generate candidate duplicate pairs via exact digests and MinHash/LSH"
    ),
    OperatorKind.QUALITY_FILTER: (
        "Judge document quality via a rule/LLM classifier cascade"
    ),
    OperatorKind.DECONTAMINATE: (
        "Flag documents that leak held-out benchmark items"
    ),
}


@dataclass
class LogicalOperator:
    """One node of a logical pipeline.

    ``params`` hold operator-specific configuration, including compiler
    hints: ``impl`` (which physical strategy to use: ``custom`` / ``llm`` /
    ``llmgc``), ``validator`` (attach the optimizer's validator), and
    ``simulate`` (attach the optimizer's simulator).
    """

    name: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in OperatorKind.ALL:
            raise ValueError(
                f"unknown operator kind {self.kind!r}; known: {OperatorKind.ALL}"
            )
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"operator name must be an identifier, got {self.name!r}")

    def describe(self) -> str:
        """Short description for EXPLAIN output and the UI."""
        hints = []
        for hint in ("impl", "validator", "simulate"):
            if hint in self.params:
                hints.append(f"{hint}={self.params[hint]}")
        suffix = f" [{', '.join(hints)}]" if hints else ""
        return f"{self.name}: {self.kind}{suffix}"
