"""Textual DSL for Lingua Manga pipelines.

Grammar (line oriented)::

    pipeline "entity resolution demo":
      pairs  = load(source="pairs")
      match  = match_entities(input=pairs, impl="llm", examples=3)
      save(input=match, path="out.csv")

- The header names the pipeline.
- Each body line is ``[alias =] kind(key=value, ...)``.
- ``input=alias`` / ``inputs=[a, b]`` wire the DAG; every other key becomes
  an operator parameter.
- Values: single/double-quoted strings, numbers, ``true``/``false``,
  ``null``, bare identifiers (operator references), and ``[...]`` lists.
- ``#`` starts a comment.
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.dsl.pipeline import Pipeline

__all__ = ["DslParseError", "parse_pipeline"]


class DslParseError(ValueError):
    """Raised on malformed DSL text (message includes the line number)."""


_HEADER_RE = re.compile(r'^pipeline\s+(?:"([^"]*)"|\'([^\']*)\'|(\w+))\s*:\s*$')
_STATEMENT_RE = re.compile(r"^(?:(\w+)\s*=\s*)?(\w+)\s*\((.*)\)\s*$")
_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<word>[A-Za-z_]\w*)
      | (?P<punct>[=,\[\]])
    )""",
    re.VERBOSE,
)


def _tokenize_args(text: str, line_number: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None or match.start() != position:
            raise DslParseError(
                f"line {line_number}: cannot tokenise arguments near {text[position:position + 12]!r}"
            )
        for kind in ("string", "number", "word", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
        position = match.end()
    return tokens


def _parse_value(tokens: list[tuple[str, str]], index: int, line_number: int) -> tuple[Any, int]:
    kind, value = tokens[index]
    if kind == "string":
        body = value[1:-1]
        return body.replace('\\"', '"').replace("\\'", "'"), index + 1
    if kind == "number":
        return (float(value) if "." in value else int(value)), index + 1
    if kind == "word":
        lowered = value.lower()
        if lowered == "true":
            return True, index + 1
        if lowered == "false":
            return False, index + 1
        if lowered == "null":
            return None, index + 1
        return _Ref(value), index + 1
    if kind == "punct" and value == "[":
        items: list[Any] = []
        index += 1
        while index < len(tokens):
            if tokens[index] == ("punct", "]"):
                return items, index + 1
            item, index = _parse_value(tokens, index, line_number)
            items.append(item)
            if index < len(tokens) and tokens[index] == ("punct", ","):
                index += 1
        raise DslParseError(f"line {line_number}: unterminated list")
    raise DslParseError(f"line {line_number}: unexpected token {value!r}")


class _Ref:
    """A bare-identifier value: a reference to another operator."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"_Ref({self.name!r})"


def _parse_kwargs(text: str, line_number: int) -> dict[str, Any]:
    tokens = _tokenize_args(text, line_number)
    kwargs: dict[str, Any] = {}
    index = 0
    while index < len(tokens):
        kind, key = tokens[index]
        if kind != "word":
            raise DslParseError(f"line {line_number}: expected a keyword, found {key!r}")
        if index + 1 >= len(tokens) or tokens[index + 1] != ("punct", "="):
            raise DslParseError(f"line {line_number}: expected '=' after {key!r}")
        value, index = _parse_value(tokens, index + 2, line_number)
        kwargs[key] = value
        if index < len(tokens):
            if tokens[index] != ("punct", ","):
                raise DslParseError(
                    f"line {line_number}: expected ',' between arguments"
                )
            index += 1
    return kwargs


def parse_pipeline(text: str) -> Pipeline:
    """Parse DSL ``text`` into a validated :class:`Pipeline`."""
    lines = text.splitlines()
    pipeline: Pipeline | None = None
    auto_counter = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if pipeline is None:
            header = _HEADER_RE.match(line)
            if header is None:
                raise DslParseError(
                    f"line {line_number}: expected 'pipeline \"name\":', found {line!r}"
                )
            name = header.group(1) or header.group(2) or header.group(3)
            pipeline = Pipeline(name=name)
            continue
        statement = _STATEMENT_RE.match(line)
        if statement is None:
            raise DslParseError(f"line {line_number}: cannot parse statement {line!r}")
        alias, kind, args_text = statement.groups()
        if kind not in OperatorKind.ALL:
            raise DslParseError(
                f"line {line_number}: unknown operator kind {kind!r}"
            )
        kwargs = _parse_kwargs(args_text, line_number)
        inputs: list[str] = []
        if "input" in kwargs:
            ref = kwargs.pop("input")
            if not isinstance(ref, _Ref):
                raise DslParseError(
                    f"line {line_number}: input= must be an operator reference"
                )
            inputs.append(ref.name)
        if "inputs" in kwargs:
            refs = kwargs.pop("inputs")
            if not isinstance(refs, list) or not all(isinstance(r, _Ref) for r in refs):
                raise DslParseError(
                    f"line {line_number}: inputs= must be a list of operator references"
                )
            inputs.extend(r.name for r in refs)
        # Any remaining _Ref values are plain string parameters.
        params = {
            key: (value.name if isinstance(value, _Ref) else value)
            for key, value in kwargs.items()
        }
        if alias is None:
            auto_counter += 1
            alias = f"{kind}_{auto_counter}"
        pipeline.add(
            LogicalOperator(name=alias, kind=kind, params=params, inputs=inputs)
        )
    if pipeline is None:
        raise DslParseError("empty DSL document")
    pipeline.validate()
    return pipeline
