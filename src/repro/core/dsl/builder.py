"""Fluent Python builder for logical pipelines.

The no-code path in the paper builds pipelines by clicking operators
together (Figure 2a); this builder is the programmatic equivalent: each call
appends an operator wired to the previous one, so a linear pipeline reads as
a chain.  ``add`` with explicit ``inputs`` covers DAG shapes.
"""

from __future__ import annotations

from typing import Any

from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.dsl.pipeline import Pipeline

__all__ = ["PipelineBuilder"]


class PipelineBuilder:
    """Chainable builder: ``PipelineBuilder('er').load(...).save(...).build()``."""

    def __init__(self, name: str, description: str = ""):
        self._pipeline = Pipeline(name=name, description=description)
        self._last_name: str | None = None
        self._counter = 0

    def _auto_name(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}_{self._counter}"

    def add(
        self,
        kind: str,
        name: str | None = None,
        inputs: list[str] | None = None,
        **params: Any,
    ) -> "PipelineBuilder":
        """Append an operator of ``kind``.

        Without explicit ``inputs`` the operator consumes the previously
        added one (linear chaining); the first operator gets no inputs.
        """
        op_name = name or self._auto_name(kind)
        if inputs is None:
            inputs = [self._last_name] if self._last_name is not None else []
        operator = LogicalOperator(name=op_name, kind=kind, params=params, inputs=inputs)
        self._pipeline.add(operator)
        self._last_name = op_name
        return self

    # -- convenience wrappers, one per common operator kind ---------------------

    def load(self, **params: Any) -> "PipelineBuilder":
        """Append a ``load`` source operator."""
        return self.add(OperatorKind.LOAD, inputs=[], **params)

    def save(self, **params: Any) -> "PipelineBuilder":
        """Append a ``save`` sink operator."""
        return self.add(OperatorKind.SAVE, **params)

    def match_entities(self, **params: Any) -> "PipelineBuilder":
        """Append an entity-resolution operator."""
        return self.add(OperatorKind.MATCH_ENTITIES, **params)

    def impute(self, **params: Any) -> "PipelineBuilder":
        """Append a data-imputation operator."""
        return self.add(OperatorKind.IMPUTE, **params)

    def tokenize(self, **params: Any) -> "PipelineBuilder":
        """Append a tokenisation operator."""
        return self.add(OperatorKind.TOKENIZE, **params)

    def noun_phrases(self, **params: Any) -> "PipelineBuilder":
        """Append a noun-phrase extraction operator."""
        return self.add(OperatorKind.NOUN_PHRASES, **params)

    def tag_names(self, **params: Any) -> "PipelineBuilder":
        """Append a person-name tagging operator."""
        return self.add(OperatorKind.TAG_NAMES, **params)

    def detect_language(self, **params: Any) -> "PipelineBuilder":
        """Append a language-detection operator."""
        return self.add(OperatorKind.DETECT_LANGUAGE, **params)

    def dedupe(self, **params: Any) -> "PipelineBuilder":
        """Append a deduplication operator."""
        return self.add(OperatorKind.DEDUPE, **params)

    def clean_text(self, **params: Any) -> "PipelineBuilder":
        """Append a text-normalisation operator."""
        return self.add(OperatorKind.CLEAN_TEXT, **params)

    def filter(self, **params: Any) -> "PipelineBuilder":
        """Append a filtering operator."""
        return self.add(OperatorKind.FILTER, **params)

    def transform(self, **params: Any) -> "PipelineBuilder":
        """Append a per-record transform operator."""
        return self.add(OperatorKind.TRANSFORM, **params)

    def custom(self, **params: Any) -> "PipelineBuilder":
        """Append a custom (user-code) operator."""
        return self.add(OperatorKind.CUSTOM, **params)

    def dedup_candidates(self, **params: Any) -> "PipelineBuilder":
        """Append a duplicate-candidate generation operator (digest + LSH)."""
        return self.add(OperatorKind.DEDUP_CANDIDATES, **params)

    def quality_filter(self, **params: Any) -> "PipelineBuilder":
        """Append a document-quality cascade operator."""
        return self.add(OperatorKind.QUALITY_FILTER, **params)

    def decontaminate(self, **params: Any) -> "PipelineBuilder":
        """Append a benchmark-decontamination cascade operator."""
        return self.add(OperatorKind.DECONTAMINATE, **params)

    def build(self) -> Pipeline:
        """Validate and return the pipeline."""
        self._pipeline.validate()
        return self._pipeline
