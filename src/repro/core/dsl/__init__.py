"""The Lingua Manga DSL: logical operators, pipelines, builder, parser."""

from repro.core.dsl.builder import PipelineBuilder
from repro.core.dsl.operators import OPERATOR_CATALOGUE, LogicalOperator, OperatorKind
from repro.core.dsl.parser import DslParseError, parse_pipeline
from repro.core.dsl.pipeline import Pipeline, PipelineError

__all__ = [
    "PipelineBuilder",
    "OPERATOR_CATALOGUE",
    "LogicalOperator",
    "OperatorKind",
    "DslParseError",
    "parse_pipeline",
    "Pipeline",
    "PipelineError",
]
