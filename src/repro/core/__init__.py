"""Lingua Manga core: DSL, compiler, modules, optimizer, templates, runtime."""

from repro.core.compiler import (
    CompilerContext,
    LinguaMangaCompiler,
    PhysicalPlan,
    RewriteReport,
    RunReport,
    compile_pipeline,
    explain_pipeline,
    explain_plan,
    render_architecture,
    rewrite_pipeline,
)
from repro.core.dsl import (
    LogicalOperator,
    OperatorKind,
    Pipeline,
    PipelineBuilder,
    parse_pipeline,
)
from repro.core.modules import (
    CustomModule,
    DecoratedModule,
    LLMGCModule,
    LLMModule,
    Module,
    RouterModule,
    SequentialModule,
)
from repro.core.optimizer import (
    CostComparison,
    CostTracker,
    CrossCheckedModule,
    ModuleValidator,
    SimulatedModule,
    TabularConnector,
    TestCase,
    make_llm_variants,
)
from repro.core.runtime import LinguaManga
from repro.core.templates import available_templates, get_template, search_templates

__all__ = [
    "CompilerContext",
    "LinguaMangaCompiler",
    "PhysicalPlan",
    "RunReport",
    "compile_pipeline",
    "RewriteReport",
    "rewrite_pipeline",
    "explain_pipeline",
    "explain_plan",
    "render_architecture",
    "LogicalOperator",
    "OperatorKind",
    "Pipeline",
    "PipelineBuilder",
    "parse_pipeline",
    "CustomModule",
    "DecoratedModule",
    "LLMGCModule",
    "LLMModule",
    "Module",
    "RouterModule",
    "SequentialModule",
    "CostComparison",
    "CostTracker",
    "CrossCheckedModule",
    "make_llm_variants",
    "ModuleValidator",
    "SimulatedModule",
    "TabularConnector",
    "TestCase",
    "LinguaManga",
    "available_templates",
    "get_template",
    "search_templates",
]
