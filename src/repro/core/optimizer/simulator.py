"""The optimizer's simulator (paper section 3.2).

"A simulator automatically generates a more efficient and equally effective
alternative to a given module that already functions well. ... Because each
module is treated as a black-box function, an ML-based simulator can
replicate the target module through supervised learning.  The target module
will function as intended during initialization, and a control logic will
decide when the simulated version should take over, such as after achieving
the desired accuracy or reaching a certain level of confidence."

:class:`SimulatedModule` wraps a *teacher* module (typically an expensive
LLM module).  While warming up it forwards every input to the teacher and
records ``(input text, teacher label)`` pairs.  Once enough samples exist and
the student agrees with the teacher on a holdout, the control logic lets the
student answer whenever its confidence clears the threshold; low-confidence
inputs still go to the teacher (and keep training the student — the
"continuously monitors the real data flow" property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from repro.core.modules.base import Module
from repro.ml.features import HashingVectorizer
from repro.ml.logistic import SoftmaxRegression

__all__ = ["SimulatorStats", "SimulatedModule"]


@dataclass
class SimulatorStats:
    """Counters for the takeover control logic."""

    teacher_calls: int = 0
    student_calls: int = 0
    deferrals: int = 0  # student consulted but not confident enough
    refits: int = 0
    degraded_answers: int = 0  # teacher unreachable, student answered anyway

    @property
    def total(self) -> int:
        """All handled inputs."""
        return self.teacher_calls + self.student_calls

    def savings(self) -> float:
        """Fraction of inputs the teacher never saw."""
        if self.total == 0:
            return 0.0
        return self.student_calls / self.total

    def to_text(self) -> str:
        """One-line rendering."""
        text = (
            f"teacher={self.teacher_calls} student={self.student_calls} "
            f"deferrals={self.deferrals} refits={self.refits} "
            f"savings={self.savings():.0%}"
        )
        if self.degraded_answers:
            text += f" degraded={self.degraded_answers}"
        return text


class SimulatedModule(Module):
    """Teacher module + continuously trained student with takeover logic.

    Parameters
    ----------
    teacher:
        The module being simulated (treated as a black box).
    featurize:
        Maps an input value to the text the student model sees.
    min_samples:
        Warm-up length: the student never answers before this many
        teacher-labelled samples exist.
    agreement_threshold:
        Required student/teacher agreement on the trailing holdout before
        takeover is allowed (the "desired accuracy" control).
    confidence_threshold:
        Per-input confidence the student needs to answer on its own.
    refit_every:
        Retrain cadence (in new teacher-labelled samples) after warm-up.
    """

    module_type = "decorated"
    # Online learner: predictions depend on how many samples arrived before
    # each input, so record order must be preserved — never parallelise.
    parallel_safe = False

    def __init__(
        self,
        name: str,
        teacher: Module,
        featurize: Callable[[Any], str] = str,
        min_samples: int = 40,
        agreement_threshold: float = 0.85,
        confidence_threshold: float = 0.8,
        refit_every: int = 25,
        n_features: int = 1024,
    ):
        super().__init__(name)
        self.teacher = teacher
        self.featurize = featurize
        self.min_samples = min_samples
        self.agreement_threshold = agreement_threshold
        self.confidence_threshold = confidence_threshold
        self.refit_every = refit_every
        self.sim_stats = SimulatorStats()
        self._vectorizer = HashingVectorizer(n_features=n_features)
        self._X: list[np.ndarray] = []
        self._y: list[Hashable] = []
        self._model: SoftmaxRegression | None = None
        self._pending_since_fit = 0
        self._holdout_agreement = 0.0

    # -- training ------------------------------------------------------------------

    @staticmethod
    def _new_model() -> SoftmaxRegression:
        # Lightly regularised so the student's confidence is sharp enough to
        # clear the takeover threshold once it genuinely knows the answer.
        return SoftmaxRegression(epochs=300, lr=1.0, l2=1e-4)

    def _record(self, vector: np.ndarray, label: Hashable) -> None:
        self._X.append(vector)
        self._y.append(label)
        self._pending_since_fit += 1
        ready = len(self._y) >= self.min_samples
        due = self._model is None or self._pending_since_fit >= self.refit_every
        if ready and due and len(set(map(repr, self._y))) >= 2:
            self._refit()

    def _refit(self) -> None:
        X = np.stack(self._X)
        model = self._new_model()
        # Holdout agreement: train on the first 80%, measure on the rest.
        cut = max(int(len(self._y) * 0.8), 1)
        if cut < len(self._y):
            model.fit(X[:cut], self._y[:cut])
            predictions = model.predict(X[cut:])
            matches = sum(1 for p, t in zip(predictions, self._y[cut:]) if p == t)
            self._holdout_agreement = matches / (len(self._y) - cut)
        # Final model uses everything.
        self._model = self._new_model().fit(X, self._y)
        self._pending_since_fit = 0
        self.sim_stats.refits += 1

    # -- control logic ----------------------------------------------------------------

    @property
    def takeover_ready(self) -> bool:
        """Whether the student is allowed to answer at all."""
        return (
            self._model is not None
            and len(self._y) >= self.min_samples
            and self._holdout_agreement >= self.agreement_threshold
        )

    def _run(self, value: Any) -> Any:
        vector = self._vectorizer.transform_one(self.featurize(value))
        if self.takeover_ready:
            assert self._model is not None
            label, confidence = self._model.predict_with_confidence(
                vector.reshape(1, -1)
            )[0]
            if confidence >= self.confidence_threshold:
                self.sim_stats.student_calls += 1
                return label
            self.sim_stats.deferrals += 1
        try:
            label = self.teacher.run(value)
        except Exception:
            # The teacher (typically an LLM behind an open breaker or a
            # hard outage) is unreachable.  A trained student is the
            # module's learned degraded path: answer with its best guess,
            # confidence threshold waived.
            if self._model is None:
                raise
            label, _ = self._model.predict_with_confidence(vector.reshape(1, -1))[0]
            self.sim_stats.degraded_answers += 1
            return label
        self.sim_stats.teacher_calls += 1
        self._record(vector, label)
        return label

    def describe(self) -> str:
        """Teacher plus takeover state."""
        state = "active" if self.takeover_ready else "warming up"
        return (
            f"{self.name} <decorated: simulator({self.teacher.name}), {state}, "
            f"{self.sim_stats.to_text()}>"
        )
