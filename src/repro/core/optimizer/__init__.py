"""The Lingua Manga optimizer: validator, simulator, connector, cost model."""

from repro.core.optimizer.autotune import (
    OperatorCostModel,
    PlanTuner,
    ProfileStore,
    TuningDecision,
    TuningPlan,
    fit_cost_model,
    resolve_profile_path,
)
from repro.core.optimizer.connector import (
    ConnectorAnswer,
    ConnectorPolicyError,
    ExposureReport,
    TabularConnector,
)
from repro.core.optimizer.cost import CostComparison, CostSnapshot, CostTracker
from repro.core.optimizer.crosscheck import (
    CrossCheckedModule,
    CrossCheckStats,
    make_llm_variants,
)
from repro.core.optimizer.distill import DistillationRouter, DistillStats
from repro.core.optimizer.simulator import SimulatedModule, SimulatorStats
from repro.core.optimizer.validator import (
    CaseResult,
    ModuleValidator,
    TestCase,
    ValidationReport,
)

__all__ = [
    "OperatorCostModel",
    "PlanTuner",
    "ProfileStore",
    "TuningDecision",
    "TuningPlan",
    "fit_cost_model",
    "resolve_profile_path",
    "ConnectorAnswer",
    "ConnectorPolicyError",
    "ExposureReport",
    "TabularConnector",
    "CrossCheckedModule",
    "CrossCheckStats",
    "make_llm_variants",
    "CostComparison",
    "CostSnapshot",
    "CostTracker",
    "DistillationRouter",
    "DistillStats",
    "SimulatedModule",
    "SimulatorStats",
    "CaseResult",
    "ModuleValidator",
    "TestCase",
    "ValidationReport",
]
