"""Cost model and budget tracking for pipelines.

The paper's "Highly Performant" property is economic: minimise LLM calls.
:class:`CostTracker` snapshots the LLM service ledger around a pipeline run
so every run report can state exactly what it cost, and
:class:`CostComparison` renders the head-to-head numbers the section 4.3
experiment reports (the 1/6-calls claim).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.service import LLMService, UsageSummary

__all__ = ["CostSnapshot", "CostTracker", "CostComparison"]


@dataclass(frozen=True)
class CostSnapshot:
    """Usage delta between two points in time.

    The resilience counters (retries, fallback calls, failed calls) show
    what the reliability layer spent to deliver the run — the "extra cost
    of robustness" number the chaos benchmark reports.
    """

    served_calls: int
    cached_calls: int
    cost: float
    latency_seconds: float
    retries: int = 0
    fallback_calls: int = 0
    failed_calls: int = 0
    near_hits: int = 0
    distilled_calls: int = 0
    #: virtual latency of provider-path calls only; ``latency_seconds``
    #: minus cached/distilled time.  Kept separate so the autotune cost
    #: models can fit per-provider-call rates without distilled local
    #: answers biasing them.
    provider_seconds: float = 0.0
    #: virtual latency spent in distilled local-model answers, under its
    #: own key instead of folded into provider time.
    distilled_seconds: float = 0.0

    def to_text(self) -> str:
        """One-line rendering."""
        text = (
            f"llm_calls={self.served_calls} (+{self.cached_calls} cached) "
            f"cost=${self.cost:.4f} latency={self.latency_seconds:.1f}s"
        )
        if self.near_hits or self.distilled_calls:
            text += f" near_hits={self.near_hits} distilled={self.distilled_calls}"
        if self.retries or self.fallback_calls or self.failed_calls:
            text += (
                f" retries={self.retries} fallbacks={self.fallback_calls} "
                f"failed={self.failed_calls}"
            )
        return text


class CostTracker:
    """Measure the LLM usage of a code region.

    Use as a context manager::

        with CostTracker(service) as tracker:
            plan.execute(data)
        print(tracker.snapshot.to_text())
    """

    def __init__(self, service: LLMService):
        self.service = service
        self._before: UsageSummary | None = None
        self.snapshot: CostSnapshot | None = None

    def __enter__(self) -> "CostTracker":
        self._before = self.service.usage()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        after = self.service.usage()
        assert self._before is not None
        self.snapshot = CostSnapshot(
            served_calls=after.served_calls - self._before.served_calls,
            cached_calls=after.cached_calls - self._before.cached_calls,
            cost=after.cost - self._before.cost,
            latency_seconds=after.latency_seconds - self._before.latency_seconds,
            retries=after.retries - self._before.retries,
            fallback_calls=after.fallback_calls - self._before.fallback_calls,
            failed_calls=after.failed_calls - self._before.failed_calls,
            near_hits=after.near_hits - self._before.near_hits,
            distilled_calls=after.distilled_calls - self._before.distilled_calls,
            provider_seconds=after.provider_seconds - self._before.provider_seconds,
            distilled_seconds=(
                after.distilled_seconds - self._before.distilled_seconds
            ),
        )


@dataclass
class CostComparison:
    """Two named cost snapshots and their ratio (the paper's 1/6 claim)."""

    baseline_name: str
    baseline: CostSnapshot
    optimized_name: str
    optimized: CostSnapshot

    def call_ratio(self) -> float:
        """Optimized LLM calls as a fraction of baseline calls."""
        if self.baseline.served_calls == 0:
            return 0.0
        return self.optimized.served_calls / self.baseline.served_calls

    def to_text(self) -> str:
        """Readable comparison block."""
        ratio = self.call_ratio()
        return "\n".join(
            [
                f"{self.baseline_name}: {self.baseline.to_text()}",
                f"{self.optimized_name}: {self.optimized.to_text()}",
                f"call ratio ({self.optimized_name}/{self.baseline_name}): "
                f"{ratio:.3f} (~1/{round(1 / ratio) if ratio > 0 else 'inf'})",
            ]
        )
