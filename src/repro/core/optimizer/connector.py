"""The optimizer's connector (paper section 3.2).

"Concerning efficiency and data privacy, it is crucial for applications to
reduce the amount of data exposed to LLMs ... a locally-running connector can
be employed to manage the selective data upload to LLMs.  A pre-defined
connector for tabular data enables LLMs to execute SQL commands in local
databases and obtain the resulting data while ensuring that the execution is
limited to the queries specified by the user."

:class:`TabularConnector` implements that contract: the LLM sees only the
schema, proposes SQL, the SQL is checked against an allow-list and executed
*locally*, and only result rows (up to a cap) ever reach a prompt.  Exposure
accounting quantifies the privacy story for the ablation benchmark.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.storage.database import Database
from repro.storage.sql.ast import SelectStatement
from repro.storage.sql.parser import SqlParseError
from repro.storage.table import Table
from repro.llm.service import LLMService

__all__ = ["ConnectorPolicyError", "ConnectorAnswer", "ExposureReport", "TabularConnector"]


class ConnectorPolicyError(RuntimeError):
    """The LLM proposed a statement the connector's policy forbids."""


@dataclass(frozen=True)
class ConnectorAnswer:
    """Result of one connector interaction."""

    question: str
    sql: str
    result: Table
    values_exposed: int  # cell values that were uploaded to the LLM


@dataclass
class ExposureReport:
    """Cumulative privacy accounting for a connector."""

    questions: int = 0
    values_uploaded: int = 0
    rows_uploaded: int = 0
    schema_uploads: int = 0
    rejected_statements: int = 0
    log: list[ConnectorAnswer] = field(default_factory=list)

    def to_text(self) -> str:
        """One-line rendering."""
        return (
            f"questions={self.questions} rows_uploaded={self.rows_uploaded} "
            f"values_uploaded={self.values_uploaded} "
            f"schema_uploads={self.schema_uploads} "
            f"rejected={self.rejected_statements}"
        )


class TabularConnector:
    """Schema-only NL querying over a local database.

    Parameters
    ----------
    database:
        The local store; its contents never enter a prompt wholesale.
    service:
        The LLM service used for NL -> SQL translation.
    max_result_rows:
        Cap on rows a single answer may expose onward.
    allowed_tables:
        Optional allow-list restricting which tables the LLM may query.
    """

    def __init__(
        self,
        database: Database,
        service: LLMService,
        max_result_rows: int = 20,
        allowed_tables: list[str] | None = None,
    ):
        self.database = database
        self.service = service
        self.max_result_rows = max_result_rows
        self.allowed_tables = allowed_tables
        self.report = ExposureReport()

    # -- policy ---------------------------------------------------------------

    def _check_policy(self, sql: str) -> SelectStatement:
        try:
            statement = self.database.parse(sql)
        except SqlParseError as error:
            self.report.rejected_statements += 1
            raise ConnectorPolicyError(f"unparseable SQL from LLM: {error}") from error
        if not isinstance(statement, SelectStatement):
            self.report.rejected_statements += 1
            raise ConnectorPolicyError(
                f"connector policy allows SELECT only, got {type(statement).__name__}"
            )
        if self.allowed_tables is not None and statement.table not in self.allowed_tables:
            self.report.rejected_statements += 1
            raise ConnectorPolicyError(
                f"table {statement.table!r} is not in the connector allow-list"
            )
        return statement

    # -- the NL question path ------------------------------------------------------

    def ask(self, question: str, purpose: str = "connector") -> ConnectorAnswer:
        """Answer an NL question: schema -> LLM SQL -> local execution.

        Only the schema text goes up; only capped result rows come back into
        scope for any downstream prompt.  Raises
        :class:`ConnectorPolicyError` when the LLM proposes non-SELECT SQL.
        """
        schema = self.database.schema_text()
        self.report.schema_uploads += 1
        prompt = (
            "Translate the question into a single SQL SELECT statement for "
            "this schema. Answer with SQL only.\n"
            f"Schema: {schema}\n"
            f"Question: {question}"
        )
        response = self.service.complete(prompt, purpose=purpose)
        sql = self._extract_sql(response)
        self._check_policy(sql)
        result = self.database.query(sql)
        exposed_rows = min(len(result), self.max_result_rows)
        values = exposed_rows * len(result.schema)
        self.report.questions += 1
        self.report.rows_uploaded += exposed_rows
        self.report.values_uploaded += values
        answer = ConnectorAnswer(
            question=question,
            sql=sql,
            result=result.head(self.max_result_rows),
            values_exposed=values,
        )
        self.report.log.append(answer)
        return answer

    def run_user_sql(self, sql: str) -> Table:
        """Execute user-specified SQL under the same SELECT-only policy."""
        self._check_policy(sql)
        return self.database.query(sql)

    @staticmethod
    def _extract_sql(response: str) -> str:
        """Pull the SQL statement out of the LLM's reply."""
        fenced = re.search(r"```(?:sql)?\s*\n(.*?)```", response, re.DOTALL)
        if fenced:
            return fenced.group(1).strip().rstrip(";")
        match = re.search(r"SELECT\b.*", response, re.IGNORECASE | re.DOTALL)
        if match:
            return match.group().strip().rstrip(";")
        return response.strip().rstrip(";")
