"""Profile-driven self-tuning: close the loop from run profiles to plans.

The rest of the optimizer measures what a run cost (:mod:`cost`), which
tier answered each prompt (:mod:`repro.llm.cache`) and what every operator
spent (:mod:`repro.obs.profile`) — but until now the execution knobs
(worker count, chunk size, batched-vs-single provider path, columnar mode)
were hand-picked per call site.  This module closes the loop:

- :class:`ProfileStore` — a crash-tolerant, append-only JSONL store beside
  the cache journal (same torn-tail truncation and compaction discipline
  as the run journals) persisting per-operator :class:`~repro.obs.profile.
  ProfileRow` slices, provider/cache/distilled time and cost splits, chunk
  latency histograms and coalescing hit rates across runs.  Keyed by the
  plan's chunking-independent fingerprint plus each operator's
  ``config_identity()`` digest, so a re-run of the same app finds its own
  history and a reconfigured operator does not inherit a stale one.
- :func:`fit_cost_model` — simple fitted cost models per operator: linear
  in records for local work (non-negative least squares so predictions are
  monotonic), per-call for provider work, with cache-hit-rate
  extrapolation from the store.  Deterministic given the store contents.
- :class:`PlanTuner` — consulted by ``system.run(autotune=True)`` /
  ``run_stream(autotune=True)`` at plan-build time.  It chooses worker
  count, chunk size, the batched-vs-single provider path, columnar on/off,
  and records cache-tier / distillation-threshold recommendations, writing
  every decision and the predicted-vs-actual delta into the trace and
  ``RunReport.tuning``.

**Tuning never changes outputs.**  Applied decisions are restricted to
knobs proven byte-identical by the determinism suite — scheduler worker
counts (1/2/8) and columnar on/off always; chunk size and prefetch on/off
only on *verified fully-warm* batch runs, where every prompt the plan
will ask is already in the exact cache tier (proved by comparing the
stored key digests of the previous run's ledger against the live cache),
so chunk boundaries and the prime scan are provably output-neutral.
Streaming runs tune the worker count only: their plan key excludes the
input data, so warmth can never be verified, and a resumable shard ledger
is keyed by chunk-size-dependent fingerprints anyway.  Knobs that do
change outputs — the distillation routing threshold (order-dependent) and
the near-duplicate cache tier (changes ledger provenance) — are recorded
as **advisory** decisions with ``applied: false``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.llm.cache import PROVENANCE_DISTILLED, CacheKey, key_digest

__all__ = [
    "PROFILE_STORE_FORMAT_VERSION",
    "DEFAULT_KEEP",
    "KEY_DIGEST_CAP",
    "LATENCY_BUCKETS",
    "SAFE_WORKER_COUNTS",
    "WARM_CHUNK_SIZE",
    "Observation",
    "RunObservation",
    "ProfileStore",
    "OperatorCostModel",
    "fit_cost_model",
    "PlanPrediction",
    "TuningDecision",
    "TuningPlan",
    "PlanTuner",
    "observe_run",
    "resolve_profile_path",
]

PROFILE_STORE_FORMAT_VERSION = 1

#: Observations kept per (plan, operator, config) key after compaction.
DEFAULT_KEEP = 32

#: Ledger key digests recorded per run for the warm-cache proof; a run
#: touching more keys than this is marked warm-unverifiable (never tuned
#: on the warm-only knobs) rather than truncated.
KEY_DIGEST_CAP = 4096

#: Fixed per-record latency histogram buckets (virtual seconds).
LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Scheduler worker counts proven byte-identical by the determinism suite.
SAFE_WORKER_COUNTS = (1, 2, 8)

#: Chunk size chosen on verified-warm runs (cache hits only: boundaries
#: are output-neutral, and fewer chunks means less scope/merge overhead).
WARM_CHUNK_SIZE = 64

#: Predicted provider seconds above which a cold streaming run is worth
#: spreading over the full safe worker count.
_PARALLEL_SECONDS_BAR = 1.0

#: Predicted local wall seconds above which columnar kernels are chosen.
_COLUMNAR_SECONDS_BAR = 0.05


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, ensure_ascii=False)


def _content_id(payload: dict) -> str:
    """Deterministic identity of one observation (dedupe + merge order)."""
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()[
        :16
    ]


def op_config_digest(config: Any) -> str:
    """Short digest of a module's ``config_identity()`` payload."""
    return hashlib.sha256(_canonical_json(config).encode("utf-8")).hexdigest()[:16]


def latency_histogram(latencies: Iterable[float]) -> list[int]:
    """Fixed-bucket per-record latency histogram (last bucket = overflow)."""
    counts = [0] * (len(LATENCY_BUCKETS) + 1)
    for value in latencies:
        for index, bound in enumerate(LATENCY_BUCKETS):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return counts


@dataclass(frozen=True)
class Observation:
    """One operator's profile slice from one run."""

    plan: str
    op: str
    op_config: str
    engine: str  # "batch" | "stream"
    records_in: int
    row: dict[str, Any]  # ProfileRow.to_dict()
    wall_seconds: float
    knobs: dict[str, Any]

    def key(self) -> tuple[str, str, str]:
        return (self.plan, self.op, self.op_config)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "op",
            "v": PROFILE_STORE_FORMAT_VERSION,
            "plan": self.plan,
            "op": self.op,
            "op_config": self.op_config,
            "engine": self.engine,
            "records_in": self.records_in,
            "row": self.row,
            "wall_seconds": self.wall_seconds,
            "knobs": self.knobs,
        }

    @property
    def obs_id(self) -> str:
        return _content_id(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict) -> "Observation":
        return cls(
            plan=str(payload["plan"]),
            op=str(payload["op"]),
            op_config=str(payload["op_config"]),
            engine=str(payload.get("engine", "batch")),
            records_in=int(payload["records_in"]),
            row=dict(payload["row"]),
            wall_seconds=float(payload["wall_seconds"]),
            knobs=dict(payload.get("knobs", {})),
        )


@dataclass(frozen=True)
class RunObservation:
    """One whole run: knobs used, totals, and the warm-cache evidence."""

    plan: str
    engine: str
    seq: int
    records_in: int
    totals: dict[str, Any]
    wall_seconds: float
    knobs: dict[str, Any]
    coalesced: int
    latency_hist: list[int]
    key_digests: list[str]
    warm_eligible: bool
    decisions: list[dict[str, Any]] = field(default_factory=list)
    predicted: dict[str, Any] = field(default_factory=dict)
    actual: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "run",
            "v": PROFILE_STORE_FORMAT_VERSION,
            "plan": self.plan,
            "engine": self.engine,
            "seq": self.seq,
            "records_in": self.records_in,
            "totals": self.totals,
            "wall_seconds": self.wall_seconds,
            "knobs": self.knobs,
            "coalesced": self.coalesced,
            "latency_hist": list(self.latency_hist),
            "key_digests": list(self.key_digests),
            "warm_eligible": self.warm_eligible,
            "decisions": self.decisions,
            "predicted": self.predicted,
            "actual": self.actual,
        }

    @property
    def obs_id(self) -> str:
        return _content_id(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict) -> "RunObservation":
        return cls(
            plan=str(payload["plan"]),
            engine=str(payload.get("engine", "batch")),
            seq=int(payload.get("seq", 0)),
            records_in=int(payload.get("records_in", 0)),
            totals=dict(payload.get("totals", {})),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            knobs=dict(payload.get("knobs", {})),
            coalesced=int(payload.get("coalesced", 0)),
            latency_hist=[int(x) for x in payload.get("latency_hist", [])],
            key_digests=[str(x) for x in payload.get("key_digests", [])],
            warm_eligible=bool(payload.get("warm_eligible", False)),
            decisions=list(payload.get("decisions", [])),
            predicted=dict(payload.get("predicted", {})),
            actual=dict(payload.get("actual", {})),
        )


class ProfileStore:
    """Crash-tolerant append-only JSONL store of run profiles.

    Persistence rides the same :class:`~repro.core.runtime.checkpoint.
    CheckpointJournal` machinery as the run journals: appends are flushed
    lines with group-committed fsync, and :meth:`load` (run at
    construction) truncates a torn or corrupt tail instead of failing —
    ``torn_bytes`` reports how much a crash cost.  ``path=None`` keeps the
    store purely in memory (tuning works within one process, nothing
    persists).

    Only the last ``keep`` observations per (plan, operator, config) key —
    and per plan for run lines — are retained in memory; :meth:`compact`
    rewrites the file down to that same retained state via a tmp file and
    an atomic replace, exactly like the cache journal's compaction.
    """

    def __init__(
        self, path: str | Path | None = None, keep: int = DEFAULT_KEEP
    ):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.path = Path(path) if path is not None else None
        self.keep = keep
        self.torn_bytes = 0
        self.lines_loaded = 0
        self._lock = threading.RLock()
        self._ops: "OrderedDict[tuple[str, str, str], list[Observation]]" = (
            OrderedDict()
        )
        self._runs: "OrderedDict[str, list[RunObservation]]" = OrderedDict()
        self._ids: set[str] = set()
        self._journal = None
        if self.path is not None:
            from repro.core.runtime.checkpoint import CheckpointJournal

            self._journal = CheckpointJournal(self.path)
            for record in self._journal.load():
                self._ingest(record)
                self.lines_loaded += 1
            self.torn_bytes = self._journal.torn_bytes

    # -- state -----------------------------------------------------------------

    def _ingest(self, record: dict) -> bool:
        kind = record.get("kind")
        try:
            if kind == "op":
                observation = Observation.from_dict(record)
            elif kind == "run":
                observation = RunObservation.from_dict(record)
            else:
                return False  # forward compatible: unknown kinds are skipped
        except (KeyError, TypeError, ValueError):
            return False
        return self._add(observation)

    def _add(self, observation: "Observation | RunObservation") -> bool:
        obs_id = observation.obs_id
        if obs_id in self._ids:
            return False
        self._ids.add(obs_id)
        if isinstance(observation, Observation):
            bucket = self._ops.setdefault(observation.key(), [])
        else:
            bucket = self._runs.setdefault(observation.plan, [])
        bucket.append(observation)
        while len(bucket) > self.keep:
            dropped = bucket.pop(0)
            self._ids.discard(dropped.obs_id)
        return True

    def append(self, observation: "Observation | RunObservation") -> bool:
        """Add one observation; journalled durably when persistent.

        Returns whether the observation was new (duplicates — identical
        content — are dropped, which is what makes merging runs of two
        stores commutative).
        """
        with self._lock:
            added = self._add(observation)
            if added and self._journal is not None:
                self._journal.append(observation.to_dict(), durable=True)
            return added

    def observations(
        self, plan: str, op: str | None = None, op_config: str | None = None
    ) -> list[Observation]:
        """Stored operator observations, oldest first."""
        with self._lock:
            out: list[Observation] = []
            for (p, o, c), bucket in self._ops.items():
                if p != plan:
                    continue
                if op is not None and o != op:
                    continue
                if op_config is not None and c != op_config:
                    continue
                out.extend(bucket)
            return out

    def runs(self, plan: str) -> list[RunObservation]:
        """Stored run observations for ``plan``, oldest first."""
        with self._lock:
            return list(self._runs.get(plan, []))

    def last_run(self, plan: str) -> RunObservation | None:
        runs = self.runs(plan)
        return runs[-1] if runs else None

    def state_dict(self) -> dict[str, Any]:
        """Canonical retained state (tests compare stores through this)."""
        with self._lock:
            return {
                "ops": {
                    "/".join(key): [obs.to_dict() for obs in bucket]
                    for key, bucket in sorted(self._ops.items())
                },
                "runs": {
                    plan: [run.to_dict() for run in bucket]
                    for plan, bucket in sorted(self._runs.items())
                },
            }

    def merge(self, other: "ProfileStore") -> "ProfileStore":
        """A new in-memory store holding both stores' observations.

        Observations are united by content identity and re-ordered by
        ``obs_id`` inside each key, so ``a.merge(b)`` and ``b.merge(a)``
        produce equal :meth:`state_dict` regardless of which run wrote
        which store first (merge commutativity, pinned by hypothesis).
        """
        merged = ProfileStore(keep=max(self.keep, other.keep))
        everything: list[Any] = []
        for store in (self, other):
            with store._lock:
                for bucket in store._ops.values():
                    everything.extend(bucket)
                for bucket in store._runs.values():
                    everything.extend(bucket)
        for observation in sorted(everything, key=lambda o: o.obs_id):
            merged._add(observation)
        return merged

    # -- persistence -----------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the journal from retained state; returns lines written.

        Same crash discipline as the cache journal: the survivors are
        written to a ``.compact`` sibling first and atomically renamed over
        the journal, so a crash mid-compaction leaves either the old or
        the new file intact, never a hybrid.
        """
        if self.path is None:
            return 0
        with self._lock:
            lines = [
                obs.to_dict()
                for bucket in self._ops.values()
                for obs in bucket
            ]
            lines.extend(
                run.to_dict()
                for bucket in self._runs.values()
                for run in bucket
            )
            if self._journal is not None:
                self._journal.close()
            tmp = self.path.with_suffix(self.path.suffix + ".compact")
            with tmp.open("w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(_canonical_json(line) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(self.path)
            from repro.core.runtime.checkpoint import CheckpointJournal

            self._journal = CheckpointJournal(self.path)
            return len(lines)

    def close(self) -> None:
        """Settle pending fsyncs and release the journal handle."""
        with self._lock:
            if self._journal is not None:
                self._journal.close()


def resolve_profile_path(
    profile_path: str | Path | None, service: Any
) -> Path | None:
    """Where the profile store lives: explicit path, else beside the cache
    journal (``<cache>.autotune.jsonl``), else nowhere (memory only)."""
    if profile_path is not None:
        return Path(profile_path)
    journal = getattr(getattr(service, "cache", None), "journal", None)
    if journal is not None:
        cache_path = Path(journal.path)
        return cache_path.parent / (cache_path.stem + ".autotune" + cache_path.suffix)
    return None


# -- cost models ---------------------------------------------------------------


@dataclass(frozen=True)
class OperatorCostModel:
    """A fitted per-operator cost model.

    Every coefficient is clamped non-negative at fit time, which is what
    makes :meth:`predict` monotonic in ``records`` by construction (the
    hypothesis suite pins this): more records can never be predicted
    cheaper or faster.
    """

    op: str
    observations: int = 0
    #: ledger records issued per input record (map ops ~1, local ops 0)
    calls_per_record: float = 0.0
    #: mean dollar cost of one paid provider call
    per_call_cost: float = 0.0
    #: mean virtual seconds of one provider-path call (paid or failed)
    per_call_seconds: float = 0.0
    #: mean virtual seconds of one distilled local answer
    per_distilled_seconds: float = 0.0
    #: host wall seconds per record of local (non-ledger) work
    per_record_wall: float = 0.0
    #: host wall seconds intercept
    base_wall: float = 0.0
    #: observed fraction of calls answered without paying the provider
    hit_rate: float = 0.0

    def predict(
        self, records: int, hit_rate: float | None = None
    ) -> dict[str, float]:
        """Predicted cost/latency/wall for a run over ``records`` records."""
        rate = self.hit_rate if hit_rate is None else hit_rate
        rate = min(1.0, max(0.0, rate))
        calls = records * self.calls_per_record
        paid = calls * (1.0 - rate)
        return {
            "provider_calls": paid,
            "cost": paid * self.per_call_cost,
            "provider_seconds": paid * self.per_call_seconds,
            "wall_seconds": self.base_wall + records * self.per_record_wall,
        }


def fit_cost_model(op: str, observations: list[Observation]) -> OperatorCostModel:
    """Fit one operator's cost model from its stored observations.

    Provider work is per-call (total cost / total paid calls); local work
    is linear in records (least squares over ``(records_in,
    wall_seconds)`` with slope and intercept clamped to zero or above);
    the cache hit rate is the observed zero-cost fraction, which the tuner
    extrapolates to 1.0 when the live cache provably holds every key.
    Deterministic given the observations (sums run in stored order).
    """
    if not observations:
        return OperatorCostModel(op=op)
    total_records = sum(o.records_in for o in observations)
    total_calls = sum(int(o.row.get("calls", 0)) for o in observations)
    total_paid = sum(int(o.row.get("provider_calls", 0)) for o in observations)
    # provider_seconds accumulates every non-cached record's latency —
    # failures and fallbacks included — so the per-call rate divides by
    # the provider-path record count (paid successes + failures), not by
    # paid successes alone, or retried runs would bias latency upward.
    total_provider_path = total_paid + sum(
        int(o.row.get("failures", 0)) for o in observations
    )
    total_cached = sum(
        int(o.row.get("cache_exact", 0))
        + int(o.row.get("cache_near", 0))
        + int(o.row.get("distilled", 0))
        for o in observations
    )
    total_distilled = sum(int(o.row.get("distilled", 0)) for o in observations)
    total_cost = sum(float(o.row.get("cost", 0.0)) for o in observations)
    total_provider_seconds = sum(
        float(o.row.get("provider_seconds", 0.0)) for o in observations
    )
    total_distilled_seconds = sum(
        float(o.row.get("distilled_seconds", 0.0)) for o in observations
    )
    # Non-negative least squares (slope then intercept, both clamped).
    points = [(o.records_in, max(0.0, o.wall_seconds)) for o in observations]
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    if var_x > 0:
        slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / var_x
    elif mean_x > 0:
        slope = mean_y / mean_x
    else:
        slope = 0.0
    slope = max(0.0, slope)
    intercept = max(0.0, mean_y - slope * mean_x)
    return OperatorCostModel(
        op=op,
        observations=n,
        calls_per_record=(total_calls / total_records) if total_records else 0.0,
        per_call_cost=(total_cost / total_paid) if total_paid else 0.0,
        per_call_seconds=(
            total_provider_seconds / total_provider_path
            if total_provider_path
            else 0.0
        ),
        per_distilled_seconds=(
            total_distilled_seconds / total_distilled if total_distilled else 0.0
        ),
        per_record_wall=slope,
        base_wall=intercept,
        hit_rate=(total_cached / total_calls) if total_calls else 0.0,
    )


@dataclass
class PlanPrediction:
    """Summed per-operator predictions for one upcoming run."""

    provider_calls: float = 0.0
    cost: float = 0.0
    provider_seconds: float = 0.0
    wall_seconds: float = 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "provider_calls": round(self.provider_calls, 6),
            "cost": round(self.cost, 10),
            "provider_seconds": round(self.provider_seconds, 9),
            "wall_seconds": round(self.wall_seconds, 6),
        }


# -- the tuner -----------------------------------------------------------------


@dataclass
class TuningDecision:
    """One knob choice, applied or advisory, with its audit trail."""

    op: str  # operator name, or "*" for a run-wide knob
    knob: str
    default: Any
    chosen: Any
    basis: str
    applied: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "knob": self.knob,
            "default": self.default,
            "chosen": self.chosen,
            "basis": self.basis,
            "applied": self.applied,
        }


@dataclass
class TuningPlan:
    """What the tuner decided for one run: effective knobs + audit trail."""

    plan_key: str
    engine: str
    verified_warm: bool
    workers: int | None
    chunk_size: int | None
    columnar: bool | None
    decisions: list[TuningDecision] = field(default_factory=list)
    pinned: dict[str, Any] = field(default_factory=dict)
    predicted: PlanPrediction = field(default_factory=PlanPrediction)
    #: per-op (module attr, value, restore value) applied around execute
    module_knobs: list[tuple[Any, str, Any, Any]] = field(default_factory=list)

    def decisions_dict(self) -> list[dict[str, Any]]:
        return [decision.to_dict() for decision in self.decisions]

    @contextmanager
    def applied(self) -> Iterator["TuningPlan"]:
        """Set the per-module knobs for one run and restore them after."""
        for module, attr, value, _restore in self.module_knobs:
            setattr(module, attr, value)
        try:
            yield self
        finally:
            for module, attr, _value, restore in self.module_knobs:
                setattr(module, attr, restore)


class PlanTuner:
    """Chooses execution knobs for one plan from its profile history.

    The decision surface is a pure function of (store contents, plan
    identity, caller-pinned knobs, live cache warmth): same store, same
    plan, same pins — same decisions, at any worker count.  That is the
    autotune determinism contract CI pins.
    """

    def __init__(
        self,
        store: ProfileStore,
        plan: Any,
        service: Any,
        engine: str = "batch",
    ):
        self.store = store
        self.plan = plan
        self.service = service
        self.engine = engine
        self._plan_key: str | None = None
        self._ledger_mark = 0
        self._coalesced_mark = 0
        self._wall_marks: dict[str, float] = {}
        self._records_in = 0
        self._tuning: TuningPlan | None = None

    # -- identity ----------------------------------------------------------------

    def plan_key(self, inputs: dict | None) -> str:
        """Chunking-independent plan identity (the store's primary key)."""
        if self._plan_key is None:
            if self.engine == "stream":
                from repro.core.runtime.checkpoint import fingerprint_payload

                self._plan_key = fingerprint_payload(
                    {
                        "mode": "autotune-stream",
                        "plan": self.plan.fingerprint(None, chunk_size=None),
                    }
                )
            else:
                self._plan_key = self.plan.fingerprint(inputs, chunk_size=None)
        return self._plan_key

    def _op_models(self, plan_key: str) -> dict[str, OperatorCostModel]:
        models: dict[str, OperatorCostModel] = {}
        for binding in self.plan.bound:
            op = binding.operator.name
            config = op_config_digest(binding.module.config_identity())
            models[op] = fit_cost_model(
                op, self.store.observations(plan_key, op, config)
            )
        return models

    def _verify_warm(self, plan_key: str) -> bool:
        """Whether the live exact tier provably answers every prompt.

        True only when the last stored run was warm-eligible (every ledger
        record succeeded, none distilled, under the digest cap) and every
        key digest it recorded is present in the live exact tier.

        Streaming runs are never warm-verifiable: their plan key is built
        from ``fingerprint(None)`` — it excludes the input data — so a
        previous run's key digests prove nothing about the records the
        incoming iterable will actually ask about.  Declaring a different
        dataset "warm" would apply the warm-only knobs to what is really a
        cold run and change its ledger.
        """
        if self.engine == "stream":
            return False
        last = self.store.last_run(plan_key)
        if last is None or not last.warm_eligible or not last.key_digests:
            return False
        cache = getattr(self.service, "cache", None)
        if cache is None or not getattr(self.service, "cache_enabled", True):
            return False
        live = cache.exact_digests()
        return all(digest in live for digest in last.key_digests)

    # -- decisions ---------------------------------------------------------------

    def tune(
        self,
        inputs: dict | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        columnar: bool | None = None,
        checkpointed: bool = False,
        records_in: int = 0,
    ) -> TuningPlan:
        """Choose knobs for the upcoming run; never changes outputs."""
        plan_key = self.plan_key(inputs)
        records = records_in or _count_records(inputs)
        if records == 0:
            # Streaming sources are opaque iterables; size the prediction
            # from the last stored run of the same plan instead.
            last = self.store.last_run(plan_key)
            if last is not None:
                records = last.records_in
        self._records_in = records
        models = self._op_models(plan_key)
        verified_warm = self._verify_warm(plan_key)
        hit_rate = 1.0 if verified_warm else None
        predicted = PlanPrediction()
        for model in models.values():
            estimate = model.predict(records, hit_rate=hit_rate)
            predicted.provider_calls += estimate["provider_calls"]
            predicted.cost += estimate["cost"]
            predicted.provider_seconds += estimate["provider_seconds"]
            predicted.wall_seconds += estimate["wall_seconds"]
        tuning = TuningPlan(
            plan_key=plan_key,
            engine=self.engine,
            verified_warm=verified_warm,
            workers=workers,
            chunk_size=chunk_size,
            columnar=columnar,
            predicted=predicted,
        )
        have_history = any(m.observations for m in models.values())
        if workers is not None:
            tuning.pinned["workers"] = workers
        if chunk_size is not None:
            tuning.pinned["chunk_size"] = chunk_size
        if columnar is not None:
            tuning.pinned["columnar"] = columnar
        if have_history:
            self._decide_workers(tuning, checkpointed)
            self._decide_columnar(tuning, models, records)
            self._decide_chunking(tuning, checkpointed)
            self._advise_cache_tier(tuning, plan_key)
            self._advise_distillation(tuning, plan_key)
        self._tuning = tuning
        self._mark()
        return tuning

    def _decide_workers(self, tuning: TuningPlan, checkpointed: bool) -> None:
        if "workers" in tuning.pinned:
            return
        if self.engine == "stream":
            # Streaming is byte-identical at any worker count, cold or
            # warm (the streaming crash matrix pins it), so the knob is
            # always applicable.
            chosen = (
                SAFE_WORKER_COUNTS[0]
                if tuning.predicted.provider_seconds < _PARALLEL_SECONDS_BAR
                else SAFE_WORKER_COUNTS[-1]
            )
            tuning.decisions.append(
                TuningDecision(
                    op="*",
                    knob="workers",
                    default=None,
                    chosen=chosen,
                    basis=(
                        f"predicted provider latency "
                        f"{tuning.predicted.provider_seconds:.2f}s; streaming "
                        "reports are byte-identical at any worker count"
                    ),
                    applied=True,
                )
            )
            tuning.workers = chosen
            return
        if checkpointed:
            tuning.decisions.append(
                TuningDecision(
                    op="*",
                    knob="workers",
                    default=None,
                    chosen=1,
                    basis=(
                        "checkpointed run: journal replay defaults workers=1; "
                        "resume may change workers, tuning defers to it"
                    ),
                    applied=False,
                )
            )
            return
        if tuning.verified_warm:
            # A verified fully-warm run answers everything from the exact
            # tier in input order, so the sequential path and the
            # scheduler produce identical ledgers — switching engines is
            # output-neutral *here* (and only here).
            tuning.decisions.append(
                TuningDecision(
                    op="*",
                    knob="workers",
                    default=None,
                    chosen=1,
                    basis=(
                        "verified warm cache: zero provider latency to "
                        "overlap, scheduler at 1 worker avoids pool overhead"
                    ),
                    applied=True,
                )
            )
            tuning.workers = 1
        else:
            tuning.decisions.append(
                TuningDecision(
                    op="*",
                    knob="workers",
                    default=None,
                    chosen=SAFE_WORKER_COUNTS[-1],
                    basis=(
                        "cold run: sequential and scheduler ledgers differ "
                        "(prefetch priming), so the engine switch is advisory; "
                        "pass workers= to opt in"
                    ),
                    applied=False,
                )
            )

    def _decide_columnar(
        self,
        tuning: TuningPlan,
        models: dict[str, OperatorCostModel],
        records: int,
    ) -> None:
        if "columnar" in tuning.pinned:
            return
        from repro.storage.columnar import resolve_columnar

        ambient = resolve_columnar(None)
        local_wall = sum(
            model.base_wall + records * model.per_record_wall
            for model in models.values()
            if model.calls_per_record == 0.0
        )
        chosen = ambient or local_wall >= _COLUMNAR_SECONDS_BAR
        tuning.decisions.append(
            TuningDecision(
                op="*",
                knob="columnar",
                default=ambient,
                chosen=chosen,
                basis=(
                    f"predicted local (non-provider) wall {local_wall:.3f}s; "
                    "columnar and scalar reports are byte-identical"
                ),
                applied=chosen != ambient,
            )
        )
        if chosen != ambient:
            tuning.columnar = chosen

    def _decide_chunking(self, tuning: TuningPlan, checkpointed: bool) -> None:
        if self.engine == "stream":
            # Streaming tunes workers only: a resumable ledger keys its
            # replay prefix on shard fingerprints cut at chunk_size, so a
            # tuned chunk size (or a disabled prime scan) would orphan the
            # prefix of any later run without the same tuning.
            return
        if checkpointed:
            basis = (
                "checkpointed run: chunk boundaries are journaled identity, "
                "changing them would orphan the replay prefix"
            )
            warm_ok = False
        elif not tuning.verified_warm:
            basis = (
                "cold or unverifiable cache: chunk size changes batch prime "
                "groups and prefetch changes the ledger, so both stay default"
            )
            warm_ok = False
        else:
            basis = (
                "verified warm cache: every prompt exact-hits in input order, "
                "so chunk boundaries and the prime scan are output-neutral"
            )
            warm_ok = True
        chunk_pinned = "chunk_size" in tuning.pinned
        for binding in self.plan.bound:
            module = binding.module
            if not module.chunk_capable:
                continue
            op = binding.operator.name
            if not chunk_pinned:
                tuning.decisions.append(
                    TuningDecision(
                        op=op,
                        knob="chunk_size",
                        default=None,
                        chosen=WARM_CHUNK_SIZE if warm_ok else None,
                        basis=basis,
                        applied=warm_ok,
                    )
                )
                if warm_ok:
                    tuning.module_knobs.append(
                        (module, "tuned_chunk_size", WARM_CHUNK_SIZE,
                         module.tuned_chunk_size)
                    )
            tuning.decisions.append(
                TuningDecision(
                    op=op,
                    knob="prefetch",
                    default=True,
                    chosen=not warm_ok,
                    basis=basis,
                    applied=warm_ok,
                )
            )
            if warm_ok:
                tuning.module_knobs.append(
                    (module, "prefetch_enabled", False, module.prefetch_enabled)
                )

    def _advise_cache_tier(self, tuning: TuningPlan, plan_key: str) -> None:
        observations = self.store.observations(plan_key)
        near = sum(int(o.row.get("cache_near", 0)) for o in observations)
        if observations and near == 0:
            tuning.decisions.append(
                TuningDecision(
                    op="*",
                    knob="cache.near_enabled",
                    default=True,
                    chosen=False,
                    basis=(
                        "near tier never hit for this plan; disabling would "
                        "skip the TF-IDF lookup but changes ledger provenance "
                        "if it ever did hit — advisory only"
                    ),
                    applied=False,
                )
            )

    def _advise_distillation(self, tuning: TuningPlan, plan_key: str) -> None:
        for binding in self.plan.bound:
            module = _find_distillation_router(binding.module)
            if module is None:
                continue
            observations = self.store.observations(
                plan_key, binding.operator.name
            )
            distilled = sum(
                int(o.row.get("distilled", 0)) for o in observations
            )
            calls = sum(int(o.row.get("calls", 0)) for o in observations)
            threshold = getattr(module, "confidence_threshold", None)
            if threshold is None or not calls:
                continue
            if distilled == 0:
                chosen = round(max(0.5, threshold - 0.05), 4)
            else:
                chosen = threshold
            tuning.decisions.append(
                TuningDecision(
                    op=binding.operator.name,
                    knob="distill.confidence_threshold",
                    default=threshold,
                    chosen=chosen,
                    basis=(
                        f"{distilled}/{calls} answers distilled; routing is "
                        "order-dependent (parallel_safe=False) so the "
                        "threshold changes outputs — recorded as a "
                        "recommendation only"
                    ),
                    applied=False,
                )
            )

    # -- recording ---------------------------------------------------------------

    def _mark(self) -> None:
        """Snapshot ledger/wall marks so :meth:`record` can slice the run."""
        self._ledger_mark = len(self.service.records)
        self._coalesced_mark = self.service.coalesced_calls
        self._wall_marks = {
            binding.operator.name: binding.module.stats.total_seconds
            for binding in self.plan.bound
        }

    def record(self, report: Any, wall_seconds: float) -> dict[str, Any]:
        """Persist the finished run's profile and the prediction audit.

        Appends one ``op`` observation per operator and one ``run`` line,
        computes the predicted-vs-actual deltas, attaches the audit dict
        to ``report.tuning`` and returns it.
        """
        tuning = self._tuning
        if tuning is None:
            raise RuntimeError("tune() must run before record()")
        plan_key = tuning.plan_key
        knobs = {
            "workers": tuning.workers,
            "chunk_size": tuning.chunk_size,
            "columnar": tuning.columnar,
            "engine": self.engine,
        }
        rows = {row.module: row for row in report.profile.rows}
        records_in = self._records_in or (
            max((row.calls for row in rows.values()), default=0)
        )
        for binding in self.plan.bound:
            op = binding.operator.name
            row = rows.get(op)
            if row is None:
                continue
            wall = max(
                0.0,
                binding.module.stats.total_seconds
                - self._wall_marks.get(op, 0.0),
            )
            self.store.append(
                Observation(
                    plan=plan_key,
                    op=op,
                    op_config=op_config_digest(binding.module.config_identity()),
                    engine=self.engine,
                    records_in=records_in,
                    row=row.to_dict(),
                    wall_seconds=wall,
                    knobs=knobs,
                )
            )
        slice_ = self.service.records[self._ledger_mark :]
        # Streaming runs are never warm-eligible: their plan key excludes
        # the input data, so stored digests could "prove" warmth for a
        # different dataset (see :meth:`_verify_warm`).
        warm_eligible = (
            self.engine != "stream"
            and bool(slice_)
            and len(slice_) <= KEY_DIGEST_CAP
        )
        digests: list[str] = []
        provider_identity = self.service.provider.cache_identity()
        for record in slice_:
            if not record.succeeded or record.provenance == PROVENANCE_DISTILLED:
                warm_eligible = False
                break
            digests.append(
                key_digest(
                    CacheKey(
                        provider=provider_identity,
                        version=record.version,
                        prompt=record.prompt,
                        max_tokens=record.max_tokens,
                    )
                )
            )
        if not warm_eligible:
            digests = []
        totals = report.profile.totals()
        actual = {
            "provider_calls": totals.provider_calls,
            "cost": round(totals.cost, 10),
            "provider_seconds": round(totals.provider_seconds, 9),
            "wall_seconds": round(wall_seconds, 6),
        }
        predicted = tuning.predicted.to_dict()
        delta = {
            key: round(actual[key] - predicted[key], 10) for key in actual
        }
        audit = {
            "enabled": True,
            "engine": self.engine,
            "plan_key": plan_key,
            "verified_warm": tuning.verified_warm,
            "pinned": dict(tuning.pinned),
            "decisions": tuning.decisions_dict(),
            "predicted": predicted,
            "actual": actual,
            "delta": delta,
        }
        last_run = self.store.last_run(plan_key)
        self.store.append(
            RunObservation(
                plan=plan_key,
                engine=self.engine,
                # Continue from the last retained run's seq, not the bucket
                # length: the store keeps at most `keep` runs, so counting
                # the bucket would saturate at keep+1 instead of growing.
                seq=(last_run.seq if last_run is not None else 0) + 1,
                records_in=records_in,
                totals=totals.to_dict(),
                wall_seconds=wall_seconds,
                knobs=knobs,
                coalesced=self.service.coalesced_calls - self._coalesced_mark,
                latency_hist=latency_histogram(
                    record.latency_seconds for record in slice_
                ),
                key_digests=sorted(set(digests)),
                warm_eligible=warm_eligible,
                decisions=audit["decisions"],
                predicted=predicted,
                actual=actual,
            )
        )
        report.tuning = audit
        self._trace(audit)
        return audit

    def _trace(self, audit: dict[str, Any]) -> None:
        """Mirror the decision audit into the trace (autotune runs only)."""
        obs = getattr(self.service, "obs", None)
        tracer = getattr(obs, "tracer", None) if obs is not None else None
        if tracer is None or not tracer.enabled:
            return
        applied = sum(1 for d in audit["decisions"] if d["applied"])
        tracer.add_span(
            "autotune",
            kind="tuning",
            start=float(self.service.clock.now),
            decisions=len(audit["decisions"]),
            applied=applied,
            verified_warm=audit["verified_warm"],
            predicted_cost=audit["predicted"]["cost"],
            actual_cost=audit["actual"]["cost"],
        )


def _count_records(inputs: dict | None) -> int:
    """Size of the dominant list input (the demo pipelines' record count)."""
    if not isinstance(inputs, dict):
        return 0
    return max(
        (len(value) for value in inputs.values() if isinstance(value, list)),
        default=0,
    )


def _find_distillation_router(module: Any):
    """The DistillationRouter inside a module tree, if any."""
    from repro.core.optimizer.distill import DistillationRouter

    if isinstance(module, DistillationRouter):
        return module
    for attribute in ("inner", "stage", "fallback", "teacher"):
        child = getattr(module, attribute, None)
        if child is not None and hasattr(child, "run"):
            found = _find_distillation_router(child)
            if found is not None:
                return found
    return None


@contextmanager
def observe_run() -> Iterator[dict[str, float]]:
    """Measure one run's wall clock (the only host-time the tuner stores)."""
    import time

    marks = {"wall_seconds": 0.0}
    started = time.perf_counter()
    try:
        yield marks
    finally:
        marks["wall_seconds"] = time.perf_counter() - started
