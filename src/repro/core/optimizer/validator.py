"""The optimizer's validator (paper section 3.2).

"It checks whether the target module behaves correctly on a few example test
cases.  It then uses the failed test cases to trigger the LLM to improve the
target module and fix the errors.  Specifically, the validator first calls an
LLM to generate the suggestion by reading the code and the failure cases.
Then, the code, failure cases, and the generated suggestion are sent to
another LLM to generate a new version of the code.  This validation cycle
repeats until either all test cases are executed successfully, or a timeout
ensues, leading to a re-generation of the LLMGC module until an additional
timeout."

The implementation follows that paragraph exactly; "timeout" is expressed in
repair rounds rather than wall-clock so runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.modules.base import Module
from repro.core.modules.llmgc import LLMGCModule
from repro.llm.service import LLMService

__all__ = ["TestCase", "CaseResult", "ValidationReport", "ModuleValidator"]


@dataclass(frozen=True)
class TestCase:
    """One example: input plus expected output (or a custom comparator)."""

    __test__ = False  # not a pytest class, despite the name

    input: Any
    expected: Any = None
    comparator: Callable[[Any, Any], bool] | None = None
    name: str = ""

    def passes(self, actual: Any) -> bool:
        """Whether ``actual`` satisfies this case."""
        if self.comparator is not None:
            return bool(self.comparator(actual, self.expected))
        return actual == self.expected

    def describe(self) -> str:
        """Short label for failure reports."""
        return self.name or f"input={self.input!r}"


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one test case in one round."""

    case: TestCase
    passed: bool
    actual: Any = None
    error: str = ""


@dataclass
class ValidationReport:
    """Outcome of a full validate-and-repair session."""

    module_name: str
    passed: bool
    rounds: int = 0
    regenerations: int = 0
    final_results: list[CaseResult] = field(default_factory=list)
    history: list[tuple[int, int]] = field(default_factory=list)  # (round, failures)

    @property
    def failures(self) -> list[CaseResult]:
        """Failed cases of the final round."""
        return [r for r in self.final_results if not r.passed]

    def to_text(self) -> str:
        """Human-readable summary."""
        status = "PASSED" if self.passed else "FAILED"
        lines = [
            f"validation of {self.module_name!r}: {status} after "
            f"{self.rounds} repair round(s), {self.regenerations} regeneration(s)"
        ]
        for result in self.failures:
            lines.append(
                f"  still failing: {result.case.describe()} -> "
                f"{result.error or repr(result.actual)}"
            )
        return "\n".join(lines)


class ModuleValidator:
    """Run test cases against a module; repair LLMGC modules that fail.

    ``max_rounds`` is the repair-loop timeout and ``max_regenerations`` the
    additional from-scratch timeout, matching the paper's two-stage cycle.
    Non-LLMGC modules are validated but cannot be repaired — the report
    simply says whether they pass.
    """

    def __init__(
        self,
        service: LLMService,
        cases: list[TestCase],
        max_rounds: int = 4,
        max_regenerations: int = 1,
    ):
        if not cases:
            raise ValueError("validator needs at least one test case")
        self.service = service
        self.cases = list(cases)
        self.max_rounds = max_rounds
        self.max_regenerations = max_regenerations

    # -- case execution -----------------------------------------------------------

    def run_cases(self, module: Module) -> list[CaseResult]:
        """Execute every case; failures never abort the sweep."""
        results = []
        for case in self.cases:
            try:
                actual = module.run(case.input)
            except Exception as error:
                results.append(CaseResult(case, False, error=repr(error)))
                continue
            results.append(CaseResult(case, case.passes(actual), actual=actual))
        return results

    # -- the validation cycle --------------------------------------------------------

    def validate_and_repair(self, module: Module) -> ValidationReport:
        """The full cycle: test -> suggest -> regenerate -> repeat."""
        report = ValidationReport(module_name=module.name, passed=False)
        if isinstance(module, LLMGCModule):
            module.ensure_generated()
        results = self.run_cases(module)
        report.final_results = results
        report.history.append((0, sum(1 for r in results if not r.passed)))
        if all(r.passed for r in results):
            report.passed = True
            return report
        if not isinstance(module, LLMGCModule):
            return report  # nothing to repair

        for regeneration in range(self.max_regenerations + 1):
            for round_index in range(1, self.max_rounds + 1):
                failures = [r for r in results if not r.passed]
                suggestion = self._ask_suggestion(module, failures)
                module.repair(suggestion)
                report.rounds += 1
                results = self.run_cases(module)
                report.final_results = results
                report.history.append(
                    (report.rounds, sum(1 for r in results if not r.passed))
                )
                if all(r.passed for r in results):
                    report.passed = True
                    return report
            if regeneration < self.max_regenerations:
                module.regenerate_from_scratch()
                report.regenerations += 1
                results = self.run_cases(module)
                report.final_results = results
                report.history.append(
                    (report.rounds, sum(1 for r in results if not r.passed))
                )
                if all(r.passed for r in results):
                    report.passed = True
                    return report
        return report

    def _ask_suggestion(self, module: LLMGCModule, failures: list[CaseResult]) -> str:
        """First LLM call of the cycle: read code + failures, suggest a fix."""
        failure_lines = "\n".join(
            f"- {result.case.describe()}: got {result.error or repr(result.actual)}, "
            f"expected {result.case.expected!r}"
            for result in failures[:5]
        )
        prompt = (
            "Why does this code fail the test cases? Read the code and the "
            "failures, then suggest a fix.\n"
            f"Task: {module.task_description}\n"
            f"Revision: {module.revision}\n"
            f"Code:\n{module.source}\n"
            f"Failures:\n{failure_lines}"
        )
        return self.service.complete(prompt, purpose=f"{module.name}-validator")
