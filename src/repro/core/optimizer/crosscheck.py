"""Hallucination mitigation by cross-checked prompting.

The paper's conclusion lists "implementing robust mitigation strategies to
tackle LLM-induced hallucinations" as the next step for Lingua Manga.  This
module implements the standard mitigation: ask the same question through
independently phrased prompts and act on the (dis)agreement.

- :class:`CrossCheckedModule` runs N variant modules and majority-votes.
  Unstable answers — the signature of a hallucination — get out-voted; a
  full disagreement can optionally fall back to a designated value instead
  of guessing.
- :func:`make_llm_variants` clones an :class:`LLMModule` under paraphrased
  task descriptions, which is how independent phrasings are produced
  without the user writing three prompts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.modules.base import Module
from repro.core.modules.llm_module import LLMModule

__all__ = ["CrossCheckStats", "CrossCheckedModule", "make_llm_variants"]

_SENTINEL = object()


@dataclass
class CrossCheckStats:
    """Agreement accounting across cross-checked runs."""

    unanimous: int = 0
    majority: int = 0
    disagreements: int = 0  # no majority at all

    @property
    def total(self) -> int:
        """All handled inputs."""
        return self.unanimous + self.majority + self.disagreements

    def flag_rate(self) -> float:
        """Fraction of inputs where at least one variant dissented."""
        if self.total == 0:
            return 0.0
        return (self.majority + self.disagreements) / self.total

    def to_text(self) -> str:
        """One-line rendering."""
        return (
            f"unanimous={self.unanimous} majority={self.majority} "
            f"disagreements={self.disagreements} "
            f"flag_rate={self.flag_rate():.0%}"
        )


class CrossCheckedModule(Module):
    """Majority vote over independently phrased variant modules.

    Parameters
    ----------
    variants:
        The modules to consult (typically paraphrased LLM modules).  An odd
        count avoids ties.
    fallback:
        Value returned when *no* answer reaches a majority.  Left unset, the
        first variant's answer wins ties (the "trust the primary" policy).
    """

    module_type = "decorated"

    def __init__(
        self,
        name: str,
        variants: Sequence[Module],
        fallback: Any = _SENTINEL,
    ):
        super().__init__(name)
        if len(variants) < 2:
            raise ValueError("cross-checking needs at least two variants")
        self.variants = list(variants)
        self.fallback = fallback
        self.check_stats = CrossCheckStats()

    def _run(self, value: Any) -> Any:
        answers = [variant.run(value) for variant in self.variants]
        counts = Counter(repr(answer) for answer in answers)
        top_repr, top_count = counts.most_common(1)[0]
        if top_count == len(answers):
            self.check_stats.unanimous += 1
            return answers[0]
        if top_count > len(answers) / 2:
            self.check_stats.majority += 1
            return next(a for a in answers if repr(a) == top_repr)
        self.check_stats.disagreements += 1
        if self.fallback is not _SENTINEL:
            return self.fallback
        return answers[0]

    def describe(self) -> str:
        """Variant count plus agreement stats."""
        return (
            f"{self.name} <decorated: cross-check x{len(self.variants)}, "
            f"{self.check_stats.to_text()}>"
        )


def make_llm_variants(
    module: LLMModule, paraphrases: Sequence[str]
) -> list[LLMModule]:
    """Clone an LLM module under paraphrased task descriptions.

    The original module is always the first variant; each paraphrase
    produces an independent prompt (and therefore an independent judgement
    from the provider) while sharing the parser, renderer, examples and
    validators.
    """
    variants: list[LLMModule] = [module]
    for index, description in enumerate(paraphrases, start=1):
        variants.append(
            LLMModule(
                name=f"{module.name}_v{index}",
                service=module.service,
                task_description=description,
                parser=module.parser,
                render=module.render,
                payload_label=module.payload_label,
                examples=list(module.examples),
                validators=list(module.validators),
                instructions=module.instructions,
                max_attempts=module.max_attempts,
                purpose=module.purpose,
            )
        )
    return variants
