"""Cost-minimizing distillation router (tier 3 of the call-avoidance stack).

Caching (tiers 1–2, :mod:`repro.llm.cache`) only avoids paying for a prompt
the system has *already* paid for.  Distillation goes further: as teacher
answers accumulate, a cheap local classifier (:mod:`repro.ml`) is
shadow-trained on ``(featurized input, teacher label)`` pairs, and once its
held-out accuracy clears a configurable bar the router starts answering
high-confidence records locally — reserving provider calls for the
low-confidence tail.

The router differs from the optimizer's :class:`SimulatedModule` in the two
ways that make it a *cost* instrument rather than a latency one:

- **ledger provenance** — every locally answered record is written to the
  LLM service ledger via :meth:`LLMService.record_distilled` with
  provenance ``distilled`` and zero cost, so run reports account for every
  answered prompt and the savings are auditable, not inferred;
- **audited promotion** — after promotion every ``audit_every``-th
  student-confident record is *also* sent to the teacher; rolling
  agreement below ``demote_below`` demotes the student back to shadow
  training.  Promotion is therefore reversible when the data distribution
  drifts (or the provider's answers change under injected faults).

Like every online learner in this codebase the router is
``parallel_safe = False``: its predictions depend on how many samples
arrived before each input, so the scheduler runs it whole-input sequential
and the determinism contract is preserved by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.core.modules.base import Module
from repro.llm.service import LLMService
from repro.ml.features import HashingVectorizer
from repro.ml.forest import RandomForest
from repro.ml.logistic import SoftmaxRegression

__all__ = ["DistillStats", "DistillationRouter"]


@dataclass
class DistillStats:
    """Counters for the routing control logic."""

    teacher_calls: int = 0
    student_calls: int = 0
    deferrals: int = 0  # student consulted but not confident enough
    refits: int = 0
    audits: int = 0
    audit_disagreements: int = 0
    promotions: int = 0
    demotions: int = 0
    degraded_answers: int = 0  # teacher unreachable, student answered anyway

    @property
    def total(self) -> int:
        """All handled inputs."""
        return self.teacher_calls + self.student_calls

    def savings(self) -> float:
        """Fraction of inputs the teacher never saw."""
        if self.total == 0:
            return 0.0
        return self.student_calls / self.total

    def to_text(self) -> str:
        """One-line rendering."""
        text = (
            f"teacher={self.teacher_calls} student={self.student_calls} "
            f"deferrals={self.deferrals} refits={self.refits} "
            f"audits={self.audits} savings={self.savings():.0%}"
        )
        if self.promotions or self.demotions:
            text += f" promotions={self.promotions} demotions={self.demotions}"
        if self.degraded_answers:
            text += f" degraded={self.degraded_answers}"
        return text


class _ForestStudent:
    """Adapter giving :class:`RandomForest` the softmax student's interface.

    The forest is binary (0/1); labels are mapped through a fitted
    two-class vocabulary.  ``predict_with_confidence`` reports the averaged
    tree probability of the winning class.
    """

    def __init__(self, seed: int = 0):
        self._forest = RandomForest(seed=seed)
        self._labels: list[Hashable] = []

    def fit(self, X: np.ndarray, y: Sequence[Hashable]) -> "_ForestStudent":
        self._labels = sorted(set(y), key=repr)
        if len(self._labels) > 2:
            raise ValueError(
                "student='forest' supports binary tasks only; "
                f"saw {len(self._labels)} classes (use student='logistic')"
            )
        index = {label: i for i, label in enumerate(self._labels)}
        self._forest.fit(X, [index[label] for label in y])
        return self

    def predict(self, X: np.ndarray) -> list[Hashable]:
        return [label for label, _ in self.predict_with_confidence(X)]

    def predict_with_confidence(
        self, X: np.ndarray
    ) -> list[tuple[Hashable, float]]:
        if len(self._labels) == 1:
            return [(self._labels[0], 1.0)] * len(np.atleast_2d(X))
        out = []
        for p in self._forest.predict_proba(X):
            winner = 1 if p >= 0.5 else 0
            out.append((self._labels[winner], float(max(p, 1.0 - p))))
        return out


class DistillationRouter(Module):
    """Teacher module + shadow-trained student with audited cost routing.

    Parameters
    ----------
    teacher:
        The expensive module being distilled (typically an LLM module).
    service:
        The LLM service whose ledger receives ``distilled`` provenance
        records for every locally answered input.
    featurize:
        Maps an input value to the text the student model sees.
    vectorize:
        Optional direct feature map ``value -> np.ndarray``, replacing the
        hashed-text pipeline entirely.  Task-aware features (e.g. a
        :class:`repro.ml.features.PairFeatureExtractor` for record pairs)
        give the student far better calibration than bag-of-hashed-tokens.
    student:
        ``"logistic"`` (softmax regression, any label set) or ``"forest"``
        (random forest, binary tasks).
    min_samples:
        Warm-up length: the student never answers before this many
        teacher-labelled samples exist.
    accuracy_bar:
        Required held-out accuracy (trailing 20% of the shadow set) before
        the student is promoted.
    confidence_threshold:
        Per-input confidence the promoted student needs to answer locally.
    refit_every:
        Retrain cadence (in new teacher-labelled samples).
    audit_every:
        After promotion, every Nth student-confident record is also sent
        to the teacher and the two answers compared.
    audit_window / demote_below / min_audits:
        Demotion control: once ``min_audits`` audits exist in the rolling
        window, agreement below ``demote_below`` demotes the student.
    """

    module_type = "decorated"
    # Online learner: predictions depend on how many samples arrived before
    # each input, so record order must be preserved — never parallelise.
    parallel_safe = False

    def __init__(
        self,
        name: str,
        teacher: Module,
        service: LLMService,
        featurize: Callable[[Any], str] = str,
        vectorize: Callable[[Any], np.ndarray] | None = None,
        student: str = "logistic",
        min_samples: int = 40,
        accuracy_bar: float = 0.9,
        confidence_threshold: float = 0.85,
        refit_every: int = 25,
        audit_every: int = 10,
        audit_window: int = 20,
        demote_below: float = 0.7,
        min_audits: int = 5,
        n_features: int = 1024,
        purpose: str | None = None,
    ):
        super().__init__(name)
        if student not in ("logistic", "forest"):
            raise ValueError("student must be 'logistic' or 'forest'")
        if not 0.0 < accuracy_bar <= 1.0:
            raise ValueError("accuracy_bar must be in (0, 1]")
        self.teacher = teacher
        self.service = service
        self.featurize = featurize
        self.student = student
        self.min_samples = min_samples
        self.accuracy_bar = accuracy_bar
        self.confidence_threshold = confidence_threshold
        self.refit_every = max(1, refit_every)
        self.audit_every = max(2, audit_every)
        self.demote_below = demote_below
        self.min_audits = min_audits
        self.purpose = purpose or name
        self.distill_stats = DistillStats()
        self._vectorize = vectorize
        self._vectorizer = HashingVectorizer(n_features=n_features)
        self._X: list[np.ndarray] = []
        self._y: list[Hashable] = []
        self._model: SoftmaxRegression | _ForestStudent | None = None
        self._pending_since_fit = 0
        self._holdout_accuracy = 0.0
        self._promoted = False
        self._since_audit = 0
        self._audit_results: deque[bool] = deque(maxlen=max(audit_window, min_audits))

    def _bump(self, name: str) -> None:
        """Mirror one router event into the service's metrics, when attached."""
        obs = getattr(self.service, "obs", None)
        if obs is not None:
            obs.metrics.counter(f"distill.{name}").inc()

    # -- training -------------------------------------------------------------

    def _new_model(self) -> SoftmaxRegression | _ForestStudent:
        if self.student == "forest":
            return _ForestStudent(seed=0)
        # Lightly regularised so the student's confidence is sharp enough
        # to clear the routing threshold once it genuinely knows the answer.
        return SoftmaxRegression(epochs=300, lr=1.0, l2=1e-4)

    def _record_sample(self, vector: np.ndarray, label: Hashable) -> None:
        self._X.append(vector)
        self._y.append(label)
        self._pending_since_fit += 1
        ready = len(self._y) >= self.min_samples
        due = self._model is None or self._pending_since_fit >= self.refit_every
        if ready and due and len(set(map(repr, self._y))) >= 2:
            self._refit()

    def _refit(self) -> None:
        X = np.stack(self._X)
        # Held-out accuracy: train on the first 80%, measure on the rest.
        cut = max(int(len(self._y) * 0.8), 1)
        if cut < len(self._y):
            model = self._new_model().fit(X[:cut], self._y[:cut])
            predictions = model.predict(X[cut:])
            matches = sum(1 for p, t in zip(predictions, self._y[cut:]) if p == t)
            self._holdout_accuracy = matches / (len(self._y) - cut)
        self._model = self._new_model().fit(X, self._y)
        self._pending_since_fit = 0
        self.distill_stats.refits += 1
        self._bump("refits")
        if not self._promoted and self._holdout_accuracy >= self.accuracy_bar:
            self._promoted = True
            self._audit_results.clear()
            self.distill_stats.promotions += 1
            self._bump("promotions")

    # -- control logic -------------------------------------------------------

    @property
    def promoted(self) -> bool:
        """Whether the student currently answers high-confidence records."""
        return self._promoted and self._model is not None

    @property
    def holdout_accuracy(self) -> float:
        """Latest held-out accuracy measured at refit time."""
        return self._holdout_accuracy

    def _demote(self) -> None:
        self._promoted = False
        self._holdout_accuracy = 0.0
        self._audit_results.clear()
        # Force a fresh refit (and a fresh promotion decision) only after
        # refit_every more teacher-labelled samples arrive.
        self._pending_since_fit = 0
        self.distill_stats.demotions += 1
        self._bump("demotions")

    def _prompt_for(self, value: Any) -> str:
        build_prompt = getattr(self.teacher, "build_prompt", None)
        if callable(build_prompt):
            try:
                return build_prompt(value)
            except TypeError:
                pass
        return self.featurize(value)

    def _teach(self, value: Any, vector: np.ndarray) -> Any:
        try:
            label = self.teacher.run(value)
        except Exception:
            # Teacher unreachable (outage, open breaker, exhausted budget).
            # A trained student is the learned degraded path: answer with
            # its best guess, confidence threshold waived.
            if self._model is None:
                raise
            label, _ = self._model.predict_with_confidence(vector.reshape(1, -1))[0]
            self.distill_stats.degraded_answers += 1
            self._bump("degraded_answers")
            self.service.record_distilled(
                self._prompt_for(value),
                str(label),
                purpose=self.purpose,
                skill="distilled-degraded",
            )
            return label
        self.distill_stats.teacher_calls += 1
        self._bump("teacher_calls")
        self._record_sample(vector, label)
        return label

    def _vector_for(self, value: Any) -> np.ndarray:
        if self._vectorize is not None:
            return np.asarray(self._vectorize(value), dtype=np.float64)
        return self._vectorizer.transform_one(self.featurize(value))

    def _run(self, value: Any) -> Any:
        vector = self._vector_for(value)
        if self.promoted:
            assert self._model is not None
            label, confidence = self._model.predict_with_confidence(
                vector.reshape(1, -1)
            )[0]
            if confidence >= self.confidence_threshold:
                self._since_audit += 1
                if self._since_audit >= self.audit_every:
                    # Audit: pay the teacher for this one and compare.
                    self._since_audit = 0
                    self.distill_stats.audits += 1
                    self._bump("audits")
                    teacher_label = self._teach(value, vector)
                    agreed = teacher_label == label
                    if not agreed:
                        self.distill_stats.audit_disagreements += 1
                    self._audit_results.append(agreed)
                    if (
                        self._promoted
                        and len(self._audit_results) >= self.min_audits
                        and (
                            sum(self._audit_results) / len(self._audit_results)
                            < self.demote_below
                        )
                    ):
                        self._demote()
                    return teacher_label
                self.distill_stats.student_calls += 1
                self._bump("student_calls")
                self.service.record_distilled(
                    self._prompt_for(value), str(label), purpose=self.purpose
                )
                return label
            self.distill_stats.deferrals += 1
            self._bump("deferrals")
        return self._teach(value, vector)

    def describe(self) -> str:
        """Teacher plus routing state."""
        state = "promoted" if self.promoted else "shadow-training"
        return (
            f"{self.name} <decorated: distill({self.teacher.name}, "
            f"{self.student}), {state}, {self.distill_stats.to_text()}>"
        )
