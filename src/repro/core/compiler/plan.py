"""Physical plans: bound modules in execution order, plus run reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.compiler.context import CompilerContext
from repro.core.dsl.operators import LogicalOperator
from repro.core.dsl.pipeline import Pipeline
from repro.core.modules.base import Module
from repro.core.optimizer.cost import CostSnapshot, CostTracker

__all__ = ["BoundOperator", "RunReport", "PhysicalPlan"]


@dataclass
class BoundOperator:
    """A logical operator bound to its physical module."""

    operator: LogicalOperator
    module: Module

    def describe(self) -> str:
        """EXPLAIN line: logical kind and physical binding."""
        return f"{self.operator.describe()}  =>  {self.module.describe()}"


@dataclass
class RunReport:
    """What one plan execution did and what it cost."""

    pipeline_name: str
    outputs: dict[str, Any] = field(default_factory=dict)
    module_stats: dict[str, str] = field(default_factory=dict)
    cost: CostSnapshot | None = None

    def to_text(self) -> str:
        """Readable execution summary."""
        lines = [f"run of {self.pipeline_name!r}:"]
        for name, stats in self.module_stats.items():
            lines.append(f"  {name}: {stats}")
        if self.cost is not None:
            lines.append(f"  llm: {self.cost.to_text()}")
        return "\n".join(lines)


class PhysicalPlan:
    """An executable plan produced by the compiler.

    ``execute`` evaluates the DAG in topological order.  Operators with no
    inputs (sources) receive the caller's ``inputs`` dict; single-input
    operators receive their upstream value; multi-input operators receive a
    tuple of upstream values in declaration order.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        bound: list[BoundOperator],
        context: CompilerContext,
    ):
        self.pipeline = pipeline
        self.bound = bound
        self.context = context
        self._by_name = {b.operator.name: b for b in bound}

    def module(self, operator_name: str) -> Module:
        """The physical module bound to ``operator_name``."""
        return self._by_name[operator_name].module

    def execute(self, inputs: dict[str, Any] | None = None) -> RunReport:
        """Run the plan; returns a :class:`RunReport` with sink outputs."""
        inputs = inputs or {}
        values: dict[str, Any] = {}
        report = RunReport(pipeline_name=self.pipeline.name)
        with CostTracker(self.context.service) as tracker:
            for binding in self.bound:
                operator = binding.operator
                if not operator.inputs:
                    argument: Any = inputs
                elif len(operator.inputs) == 1:
                    argument = values[operator.inputs[0]]
                else:
                    argument = tuple(values[name] for name in operator.inputs)
                values[operator.name] = binding.module.run(argument)
        report.cost = tracker.snapshot
        for sink in self.pipeline.sinks():
            report.outputs[sink.name] = values[sink.name]
        for binding in self.bound:
            report.module_stats[binding.operator.name] = binding.module.stats.to_text()
        return report

    def to_text(self) -> str:
        """EXPLAIN rendering of the full plan."""
        lines = [f"physical plan for {self.pipeline.name!r}:"]
        for binding in self.bound:
            lines.append(f"  {binding.describe()}")
        return "\n".join(lines)
