"""Physical plans: bound modules in execution order, plus run reports.

Execution is resilient by construction: operators whose modules run with a
non-``fail`` :class:`~repro.core.modules.base.ErrorPolicy` quarantine
poisoned records instead of aborting the DAG, and the run report always
carries the work that succeeded (``partial`` flags whether anything was
lost, ``quarantine`` says exactly what and why).

Execution is also **concurrent on demand**: ``execute(workers=N)`` routes
each operator through the :class:`~repro.core.runtime.scheduler.Scheduler`,
which splits list inputs into record chunks, runs them on a bounded worker
pool and merges results in deterministic chunk order.  ``workers=None``
(the default) keeps the legacy strictly sequential path.  The determinism
contract — same seed, same fault spec, byte-identical results at any worker
count — is expressed through :meth:`RunReport.canonical_json`, which
excludes wall-clock measurements (they are observations about the run, not
results of it).
"""

from __future__ import annotations

import json
import re
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.core.compiler.context import CompilerContext
from repro.core.dsl.operators import LogicalOperator
from repro.core.dsl.pipeline import Pipeline
from repro.core.modules.base import Module, QuarantinedRecord
from repro.core.optimizer.cost import CostSnapshot, CostTracker
from repro.obs.profile import RunProfile, profile_records

__all__ = ["BoundOperator", "OperatorResilience", "RunReport", "PhysicalPlan"]

# Wall-clock fragment of ModuleStats.to_text(); stripped from canonical
# reports because host timing is nondeterministic by nature.
_WALL_TIME_RE = re.compile(r" time=\d+(?:\.\d+)?s")


@dataclass
class BoundOperator:
    """A logical operator bound to its physical module."""

    operator: LogicalOperator
    module: Module

    def describe(self) -> str:
        """EXPLAIN line: logical kind and physical binding."""
        return f"{self.operator.describe()}  =>  {self.module.describe()}"


@dataclass
class OperatorResilience:
    """What one operator absorbed during a run."""

    quarantined: int = 0
    degraded: int = 0
    llm_retries: int = 0
    llm_fallbacks: int = 0
    llm_failures: int = 0

    @property
    def any(self) -> bool:
        """Whether anything noteworthy happened."""
        return bool(
            self.quarantined
            or self.degraded
            or self.llm_retries
            or self.llm_fallbacks
            or self.llm_failures
        )

    def to_text(self) -> str:
        """One-line rendering."""
        return (
            f"quarantined={self.quarantined} degraded={self.degraded} "
            f"llm_retries={self.llm_retries} llm_fallbacks={self.llm_fallbacks} "
            f"llm_failures={self.llm_failures}"
        )


@dataclass
class RunReport:
    """What one plan execution did, what it cost, and what it absorbed."""

    pipeline_name: str
    outputs: dict[str, Any] = field(default_factory=dict)
    module_stats: dict[str, str] = field(default_factory=dict)
    cost: CostSnapshot | None = None
    partial: bool = False
    quarantine: list[QuarantinedRecord] = field(default_factory=list)
    resilience: dict[str, OperatorResilience] = field(default_factory=dict)
    profile: RunProfile | None = None
    #: Operational recovery counters (checkpoint replay, torn tails, lease
    #: churn).  Deliberately **excluded** from :meth:`canonical_dict`: a
    #: resumed run must produce a byte-identical canonical report, and these
    #: counters are exactly what differs between the crashed and the
    #: uninterrupted execution.
    recovery: dict[str, Any] | None = None
    #: The autotune audit trail (``system.run(autotune=True)``): the
    #: PlanTuner's per-knob decisions, its cost-model predictions and the
    #: predicted-vs-actual deltas.  **Excluded** from
    #: :meth:`canonical_dict` like ``recovery``: tuning must never change
    #: outputs, so a tuned and an untuned run of the same plan are
    #: byte-identical — the decisions themselves are observations *about*
    #: the run, not results of it.
    tuning: dict[str, Any] | None = None

    def to_text(self) -> str:
        """Readable execution summary."""
        lines = [f"run of {self.pipeline_name!r}:"]
        if self.partial:
            lines[0] += f"  [PARTIAL: {len(self.quarantine)} record(s) quarantined]"
        for name, stats in self.module_stats.items():
            lines.append(f"  {name}: {stats}")
        for name, counters in self.resilience.items():
            if counters.any:
                lines.append(f"  {name} resilience: {counters.to_text()}")
        if self.cost is not None:
            lines.append(f"  llm: {self.cost.to_text()}")
        if self.profile is not None and self.profile.rows:
            lines.append("  profile:")
            for row_line in self.profile.to_table().splitlines():
                lines.append(f"    {row_line}")
        if self.recovery:
            interesting = {k: v for k, v in self.recovery.items() if v}
            if interesting:
                rendered = ", ".join(
                    f"{key}={value}" for key, value in sorted(interesting.items())
                )
                lines.append(f"  recovery: {rendered}")
        if self.tuning:
            decisions = self.tuning.get("decisions", [])
            applied = sum(1 for d in decisions if d.get("applied"))
            lines.append(
                f"  tuning: {applied}/{len(decisions)} decision(s) applied"
            )
            for decision in decisions:
                marker = "*" if decision.get("applied") else " "
                lines.append(
                    f"   {marker} {decision.get('op', '*')}."
                    f"{decision.get('knob')}: "
                    f"{decision.get('default')!r} -> {decision.get('chosen')!r} "
                    f"({decision.get('basis', '')})"
                )
        return "\n".join(lines)

    def canonical_dict(self) -> dict[str, Any]:
        """The run's *results*, with wall-clock measurements stripped.

        This is the determinism contract of the parallel scheduler: two
        runs of the same plan on the same inputs (same seed, same fault
        spec) must produce equal canonical dicts at any worker count.
        Wall-clock module timings are excluded because they measure the
        host machine, not the computation; virtual-clock latency totals
        *are* included (they are part of the simulated semantics).
        """
        return {
            "pipeline": self.pipeline_name,
            "outputs": self.outputs,
            "partial": self.partial,
            "quarantine": [
                {
                    "module": q.module_name,
                    "record": repr(q.record),
                    "error": q.error,
                }
                for q in self.quarantine
            ],
            "resilience": {
                name: {
                    "quarantined": c.quarantined,
                    "degraded": c.degraded,
                    "llm_retries": c.llm_retries,
                    "llm_fallbacks": c.llm_fallbacks,
                    "llm_failures": c.llm_failures,
                }
                for name, c in self.resilience.items()
            },
            "module_stats": {
                name: _WALL_TIME_RE.sub("", stats)
                for name, stats in self.module_stats.items()
            },
            "cost": None
            if self.cost is None
            else {
                "served_calls": self.cost.served_calls,
                "cached_calls": self.cost.cached_calls,
                "cost": round(self.cost.cost, 10),
                "latency_seconds": round(self.cost.latency_seconds, 9),
                "retries": self.cost.retries,
                "fallback_calls": self.cost.fallback_calls,
                "failed_calls": self.cost.failed_calls,
                "near_hits": self.cost.near_hits,
                "distilled_calls": self.cost.distilled_calls,
                "provider_seconds": round(self.cost.provider_seconds, 9),
                "distilled_seconds": round(self.cost.distilled_seconds, 9),
            },
            # Derived from canonicalized ledger slices, so deterministic at
            # any worker count — safe inside the determinism contract.
            "profile": None if self.profile is None else self.profile.to_dict(),
        }

    def canonical_json(self) -> str:
        """Byte-comparable JSON rendering of :meth:`canonical_dict`."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, ensure_ascii=False, default=repr
        )


class PhysicalPlan:
    """An executable plan produced by the compiler.

    ``execute`` evaluates the DAG in topological order.  Operators with no
    inputs (sources) receive the caller's ``inputs`` dict; single-input
    operators receive their upstream value; multi-input operators receive a
    tuple of upstream values in declaration order.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        bound: list[BoundOperator],
        context: CompilerContext,
    ):
        self.pipeline = pipeline
        self.bound = bound
        self.context = context
        self._by_name = {b.operator.name: b for b in bound}

    def module(self, operator_name: str) -> Module:
        """The physical module bound to ``operator_name``."""
        return self._by_name[operator_name].module

    def fingerprint(
        self,
        inputs: dict[str, Any] | None = None,
        chunk_size: int | None = None,
    ) -> str:
        """Stable identity of (plan, inputs, chunking) for checkpoint resume.

        Built from identity-stable parts only — operator names/kinds/
        wiring, module names/types, the provider's cache identity, the
        requested ``chunk_size`` and a digest of the caller's inputs.
        Deliberately *not* from ``describe()`` strings, which embed mutable
        counters (e.g. a fallback count) and would change between the
        original run and the recompiled resume.  The worker count is
        excluded: the determinism contract makes it immaterial to results,
        so a run checkpointed at 8 workers may resume at 1.
        """
        from repro.core.runtime.checkpoint import digest_inputs, fingerprint_payload

        service = self.context.service
        identity = {
            "pipeline": self.pipeline.name,
            "operators": [
                {
                    "name": binding.operator.name,
                    "kind": binding.operator.kind,
                    "inputs": list(binding.operator.inputs),
                    "module": binding.module.name,
                    "module_type": type(binding.module).__name__,
                    "config": binding.module.config_identity(),
                }
                for binding in self.bound
            ],
            "provider": service.provider.cache_identity(),
            "chunk_size": chunk_size,
            "inputs": digest_inputs(inputs),
        }
        return fingerprint_payload(identity)

    def execute(
        self,
        inputs: dict[str, Any] | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        checkpoint: "Any | None" = None,
        cancel: "Any | None" = None,
    ) -> RunReport:
        """Run the plan; returns a :class:`RunReport` with sink outputs.

        Records a module quarantined (under a ``skip_record``/``degrade``
        error policy) are collected into ``report.quarantine`` and flagged
        via ``report.partial`` — callers always receive the work that
        succeeded rather than an exception that discards it.

        ``workers`` selects the execution engine: ``None`` (default) is
        the legacy strictly sequential path; any integer >= 1 routes
        operators through the concurrent scheduler, which chunks list
        inputs (``chunk_size`` records per chunk) and merges results in
        deterministic chunk order — ``workers=1`` and ``workers=8``
        produce identical :meth:`RunReport.canonical_json` output.

        ``checkpoint`` (a :class:`~repro.core.runtime.checkpoint.
        RunCheckpoint`) turns execution crash-safe: every finished chunk
        and operator is journalled write-ahead, and a resume replays the
        journalled prefix verbatim — zero provider calls for completed
        work — before executing only what remains, producing a report
        byte-identical to an uninterrupted run.  Checkpointed execution
        always rides the scheduler (``workers`` defaults to 1 here) so
        chunk boundaries exist to journal.

        ``cancel`` (a :class:`~repro.core.runtime.cancel.CancelToken`)
        enables cooperative cancellation: the token is checked between
        operators and before every chunk, and raises
        :class:`~repro.core.runtime.cancel.JobCancelled` at the first
        boundary after it fires — so a checkpointed run that is cancelled
        leaves a valid replayable journal prefix behind (it is resumable,
        not lost).
        """
        scheduler = None
        if workers is not None or checkpoint is not None:
            # Imported lazily: the runtime package imports the system
            # facade, which imports this module.
            from repro.core.runtime.scheduler import Scheduler

            scheduler = Scheduler(
                workers=workers or 1, chunk_size=chunk_size, cancel=cancel
            )
        inputs = inputs or {}
        values: dict[str, Any] = {}
        report = RunReport(pipeline_name=self.pipeline.name)
        service = self.context.service
        if checkpoint is not None:
            # Before any spans or cost marks: validates the fingerprint
            # and the clock, rewinds the cache to the journalled run-start
            # state, and indexes the replayable prefix.
            checkpoint.begin(
                self.fingerprint(inputs, chunk_size=chunk_size), service
            )
        obs = getattr(service, "obs", None)
        tracer = obs.tracer if obs is not None and obs.tracer.enabled else None
        profile = RunProfile()
        run_span = (
            tracer.span(self.pipeline.name, "run", clock=service.clock)
            if tracer is not None
            else nullcontext()
        )
        with CostTracker(service) as tracker, run_span:
            for op_index, binding in enumerate(self.bound):
                if cancel is not None:
                    cancel.raise_if_cancelled()
                operator = binding.operator
                if not operator.inputs:
                    argument: Any = inputs
                elif len(operator.inputs) == 1:
                    argument = values[operator.inputs[0]]
                else:
                    argument = tuple(values[name] for name in operator.inputs)
                ledger_mark = len(service.records)
                degraded_before = _tree_degraded(binding.module)
                stats_before = _stats_snapshot(binding.module)
                module_start = service.clock.now
                replay = None
                op_ctx = None
                if checkpoint is not None:
                    replay = checkpoint.operator_replay(op_index, operator.name)
                    if replay is None:
                        op_ctx = checkpoint.operator_context(
                            op_index, operator.name
                        )
                phase_span = (
                    tracer.span(
                        operator.name,
                        "phase",
                        clock=service.clock,
                        operator_kind=operator.kind,
                    )
                    if tracer is not None
                    else nullcontext()
                )
                with phase_span:
                    module_span = (
                        tracer.span(
                            binding.module.name,
                            "module",
                            clock=service.clock,
                            module_type=type(binding.module).__name__,
                        )
                        if tracer is not None
                        else nullcontext()
                    )
                    with module_span as span:
                        if replay is not None:
                            # Committed operator: re-apply its journalled
                            # effects verbatim — outputs, ledger slice,
                            # clock, stats, cache warmth — at zero
                            # provider cost.
                            values[operator.name] = replay.outputs
                            checkpoint.apply_operator_replay(
                                binding.module, replay, service
                            )
                            if tracer is not None:
                                for summary in replay.chunk_summaries:
                                    tracer.add_span(
                                        f"chunk[{summary['chunk']}]",
                                        kind="chunk",
                                        start=module_start,
                                        records=summary["records"],
                                        outputs=summary["outputs"],
                                        quarantined=summary["quarantined"],
                                        degraded=summary["degraded"],
                                    )
                            drained = list(replay.quarantine)
                            degraded = replay.tree_degraded
                        else:
                            if scheduler is not None:
                                values[operator.name] = scheduler.run_operator(
                                    binding.module, argument, service,
                                    op_ctx=op_ctx,
                                )
                            else:
                                values[operator.name] = binding.module.run(
                                    argument
                                )
                            drained = binding.module.drain_quarantine()
                            degraded = (
                                _tree_degraded(binding.module) - degraded_before
                            )
                        # The slice is canonical here (the scheduler merged
                        # and canonicalized; the sequential path is ordered
                        # by construction; replay re-inserts the canonical
                        # slice), so spans and profile rows are
                        # deterministic at any worker count.
                        slice_ = service.records[ledger_mark:]
                        if tracer is not None:
                            span.set("quarantined", len(drained))
                            span.set("degraded", degraded)
                    if tracer is not None:
                        _add_call_spans(span, slice_, module_start)
                report.quarantine.extend(drained)
                row = profile_records(
                    operator.name, slice_, quarantined=len(drained)
                )
                profile.rows.append(row)
                report.resilience[operator.name] = OperatorResilience(
                    quarantined=len(drained),
                    degraded=degraded,
                    llm_retries=row.retries,
                    llm_fallbacks=row.fallbacks,
                    llm_failures=row.failures,
                )
                if checkpoint is not None and replay is None:
                    checkpoint.commit_operator(
                        op_index,
                        operator.name,
                        records=list(slice_),
                        clock_end=service.clock.now,
                        outputs=values[operator.name],
                        quarantine=drained,
                        stats_delta=_stats_delta(
                            stats_before, _stats_snapshot(binding.module)
                        ),
                        tree_degraded=degraded,
                        chunk_summaries=(
                            op_ctx.chunk_summaries if op_ctx is not None else None
                        )
                        or None,
                        service=service,
                        records_in_chunks=(
                            op_ctx.records_in_chunks if op_ctx is not None else False
                        ),
                        outputs_in_chunks=(
                            op_ctx.outputs_in_chunks if op_ctx is not None else False
                        ),
                    )
        report.partial = bool(report.quarantine)
        report.cost = tracker.snapshot
        report.profile = profile
        if checkpoint is not None:
            stats = checkpoint.stats
            report.recovery = {
                "mode": "checkpoint",
                "resumed": stats.resumed,
                "replayed_operators": stats.replayed_operators,
                "replayed_chunks": stats.replayed_chunks,
                "journaled_chunks": stats.journaled_chunks,
                "replayed_records": stats.replayed_records,
                "cache_entries_pruned": stats.cache_entries_pruned,
                "torn_bytes": stats.torn_bytes,
            }
        for sink in self.pipeline.sinks():
            report.outputs[sink.name] = values[sink.name]
        for binding in self.bound:
            report.module_stats[binding.operator.name] = binding.module.stats.to_text()
        return report

    def to_text(self) -> str:
        """EXPLAIN rendering of the full plan."""
        lines = [f"physical plan for {self.pipeline.name!r}:"]
        for binding in self.bound:
            lines.append(f"  {binding.describe()}")
        return "\n".join(lines)


def _add_call_spans(parent, records, module_start: float) -> None:
    """Attach one ``llm_call`` span per canonical ledger record.

    Calls are not traced live — request coalescing makes the winning thread
    racy — but derived from the operator's canonicalized ledger slice, laid
    out on the sequential virtual timeline under the (already closed)
    module span: each span starts where the previous one's latency ended.
    Intervals are clamped to the parent's: the scheduler sums per-scope
    elapsed times first, so the module's clock total can differ from the
    cumulative per-record sum by float-rounding epsilons.
    """
    from repro.obs.trace import Span

    cursor = module_start
    for record in records:
        start = min(cursor, parent.end)
        cursor += record.latency_seconds
        parent.children.append(
            Span(
                name=f"llm[{record.purpose or record.skill or 'call'}]",
                kind="llm_call",
                start=start,
                end=min(cursor, parent.end),
                attributes={
                    "provenance": record.provenance,
                    "outcome": record.outcome,
                    "cached": record.cached,
                    "cost": record.cost,
                    "prompt_tokens": record.prompt_tokens,
                    "completion_tokens": record.completion_tokens,
                    "latency_seconds": record.latency_seconds,
                    "retries": record.retries,
                    "skill": record.skill,
                },
            )
        )


def _stats_snapshot(module: Module) -> dict[str, int]:
    """The module's deterministic counters (wall time deliberately excluded)."""
    stats = module.stats
    return {
        "invocations": stats.invocations,
        "failures": stats.failures,
        "quarantined": stats.quarantined,
        "degraded": stats.degraded,
    }


def _stats_delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    """Per-counter change over one operator, journalled for stats replay."""
    return {key: after[key] - before[key] for key in after}


def _tree_degraded(module: Module) -> int:
    """Sum ``stats.degraded`` over a module and its wrapped children."""
    total = module.stats.degraded
    for attribute in ("inner", "stage", "fallback", "teacher"):
        child = getattr(module, attribute, None)
        if isinstance(child, Module):
            total += _tree_degraded(child)
    return total
