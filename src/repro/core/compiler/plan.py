"""Physical plans: bound modules in execution order, plus run reports.

Execution is resilient by construction: operators whose modules run with a
non-``fail`` :class:`~repro.core.modules.base.ErrorPolicy` quarantine
poisoned records instead of aborting the DAG, and the run report always
carries the work that succeeded (``partial`` flags whether anything was
lost, ``quarantine`` says exactly what and why).

Execution is also **concurrent on demand**: ``execute(workers=N)`` routes
each operator through the :class:`~repro.core.runtime.scheduler.Scheduler`,
which splits list inputs into record chunks, runs them on a bounded worker
pool and merges results in deterministic chunk order.  ``workers=None``
(the default) keeps the legacy strictly sequential path.  The determinism
contract — same seed, same fault spec, byte-identical results at any worker
count — is expressed through :meth:`RunReport.canonical_json`, which
excludes wall-clock measurements (they are observations about the run, not
results of it).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.compiler.context import CompilerContext
from repro.core.dsl.operators import LogicalOperator
from repro.core.dsl.pipeline import Pipeline
from repro.core.modules.base import Module, QuarantinedRecord
from repro.core.optimizer.cost import CostSnapshot, CostTracker
from repro.resilience.policy import OUTCOME_FALLBACK

__all__ = ["BoundOperator", "OperatorResilience", "RunReport", "PhysicalPlan"]

# Wall-clock fragment of ModuleStats.to_text(); stripped from canonical
# reports because host timing is nondeterministic by nature.
_WALL_TIME_RE = re.compile(r" time=\d+(?:\.\d+)?s")


@dataclass
class BoundOperator:
    """A logical operator bound to its physical module."""

    operator: LogicalOperator
    module: Module

    def describe(self) -> str:
        """EXPLAIN line: logical kind and physical binding."""
        return f"{self.operator.describe()}  =>  {self.module.describe()}"


@dataclass
class OperatorResilience:
    """What one operator absorbed during a run."""

    quarantined: int = 0
    degraded: int = 0
    llm_retries: int = 0
    llm_fallbacks: int = 0
    llm_failures: int = 0

    @property
    def any(self) -> bool:
        """Whether anything noteworthy happened."""
        return bool(
            self.quarantined
            or self.degraded
            or self.llm_retries
            or self.llm_fallbacks
            or self.llm_failures
        )

    def to_text(self) -> str:
        """One-line rendering."""
        return (
            f"quarantined={self.quarantined} degraded={self.degraded} "
            f"llm_retries={self.llm_retries} llm_fallbacks={self.llm_fallbacks} "
            f"llm_failures={self.llm_failures}"
        )


@dataclass
class RunReport:
    """What one plan execution did, what it cost, and what it absorbed."""

    pipeline_name: str
    outputs: dict[str, Any] = field(default_factory=dict)
    module_stats: dict[str, str] = field(default_factory=dict)
    cost: CostSnapshot | None = None
    partial: bool = False
    quarantine: list[QuarantinedRecord] = field(default_factory=list)
    resilience: dict[str, OperatorResilience] = field(default_factory=dict)

    def to_text(self) -> str:
        """Readable execution summary."""
        lines = [f"run of {self.pipeline_name!r}:"]
        if self.partial:
            lines[0] += f"  [PARTIAL: {len(self.quarantine)} record(s) quarantined]"
        for name, stats in self.module_stats.items():
            lines.append(f"  {name}: {stats}")
        for name, counters in self.resilience.items():
            if counters.any:
                lines.append(f"  {name} resilience: {counters.to_text()}")
        if self.cost is not None:
            lines.append(f"  llm: {self.cost.to_text()}")
        return "\n".join(lines)

    def canonical_dict(self) -> dict[str, Any]:
        """The run's *results*, with wall-clock measurements stripped.

        This is the determinism contract of the parallel scheduler: two
        runs of the same plan on the same inputs (same seed, same fault
        spec) must produce equal canonical dicts at any worker count.
        Wall-clock module timings are excluded because they measure the
        host machine, not the computation; virtual-clock latency totals
        *are* included (they are part of the simulated semantics).
        """
        return {
            "pipeline": self.pipeline_name,
            "outputs": self.outputs,
            "partial": self.partial,
            "quarantine": [
                {
                    "module": q.module_name,
                    "record": repr(q.record),
                    "error": q.error,
                }
                for q in self.quarantine
            ],
            "resilience": {
                name: {
                    "quarantined": c.quarantined,
                    "degraded": c.degraded,
                    "llm_retries": c.llm_retries,
                    "llm_fallbacks": c.llm_fallbacks,
                    "llm_failures": c.llm_failures,
                }
                for name, c in self.resilience.items()
            },
            "module_stats": {
                name: _WALL_TIME_RE.sub("", stats)
                for name, stats in self.module_stats.items()
            },
            "cost": None
            if self.cost is None
            else {
                "served_calls": self.cost.served_calls,
                "cached_calls": self.cost.cached_calls,
                "cost": round(self.cost.cost, 10),
                "latency_seconds": round(self.cost.latency_seconds, 9),
                "retries": self.cost.retries,
                "fallback_calls": self.cost.fallback_calls,
                "failed_calls": self.cost.failed_calls,
                "near_hits": self.cost.near_hits,
                "distilled_calls": self.cost.distilled_calls,
            },
        }

    def canonical_json(self) -> str:
        """Byte-comparable JSON rendering of :meth:`canonical_dict`."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, ensure_ascii=False, default=repr
        )


class PhysicalPlan:
    """An executable plan produced by the compiler.

    ``execute`` evaluates the DAG in topological order.  Operators with no
    inputs (sources) receive the caller's ``inputs`` dict; single-input
    operators receive their upstream value; multi-input operators receive a
    tuple of upstream values in declaration order.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        bound: list[BoundOperator],
        context: CompilerContext,
    ):
        self.pipeline = pipeline
        self.bound = bound
        self.context = context
        self._by_name = {b.operator.name: b for b in bound}

    def module(self, operator_name: str) -> Module:
        """The physical module bound to ``operator_name``."""
        return self._by_name[operator_name].module

    def execute(
        self,
        inputs: dict[str, Any] | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
    ) -> RunReport:
        """Run the plan; returns a :class:`RunReport` with sink outputs.

        Records a module quarantined (under a ``skip_record``/``degrade``
        error policy) are collected into ``report.quarantine`` and flagged
        via ``report.partial`` — callers always receive the work that
        succeeded rather than an exception that discards it.

        ``workers`` selects the execution engine: ``None`` (default) is
        the legacy strictly sequential path; any integer >= 1 routes
        operators through the concurrent scheduler, which chunks list
        inputs (``chunk_size`` records per chunk) and merges results in
        deterministic chunk order — ``workers=1`` and ``workers=8``
        produce identical :meth:`RunReport.canonical_json` output.
        """
        scheduler = None
        if workers is not None:
            # Imported lazily: the runtime package imports the system
            # facade, which imports this module.
            from repro.core.runtime.scheduler import Scheduler

            scheduler = Scheduler(workers=workers, chunk_size=chunk_size)
        inputs = inputs or {}
        values: dict[str, Any] = {}
        report = RunReport(pipeline_name=self.pipeline.name)
        service = self.context.service
        with CostTracker(service) as tracker:
            for binding in self.bound:
                operator = binding.operator
                if not operator.inputs:
                    argument: Any = inputs
                elif len(operator.inputs) == 1:
                    argument = values[operator.inputs[0]]
                else:
                    argument = tuple(values[name] for name in operator.inputs)
                ledger_mark = len(service.records)
                degraded_before = _tree_degraded(binding.module)
                if scheduler is not None:
                    values[operator.name] = scheduler.run_operator(
                        binding.module, argument, service
                    )
                else:
                    values[operator.name] = binding.module.run(argument)
                drained = binding.module.drain_quarantine()
                report.quarantine.extend(drained)
                counters = OperatorResilience(
                    quarantined=len(drained),
                    degraded=_tree_degraded(binding.module) - degraded_before,
                )
                for record in service.records[ledger_mark:]:
                    counters.llm_retries += record.retries
                    if record.outcome == OUTCOME_FALLBACK:
                        counters.llm_fallbacks += 1
                    if not record.succeeded:
                        counters.llm_failures += 1
                report.resilience[operator.name] = counters
        report.partial = bool(report.quarantine)
        report.cost = tracker.snapshot
        for sink in self.pipeline.sinks():
            report.outputs[sink.name] = values[sink.name]
        for binding in self.bound:
            report.module_stats[binding.operator.name] = binding.module.stats.to_text()
        return report

    def to_text(self) -> str:
        """EXPLAIN rendering of the full plan."""
        lines = [f"physical plan for {self.pipeline.name!r}:"]
        for binding in self.bound:
            lines.append(f"  {binding.describe()}")
        return "\n".join(lines)


def _tree_degraded(module: Module) -> int:
    """Sum ``stats.degraded`` over a module and its wrapped children."""
    total = module.stats.degraded
    for attribute in ("inner", "stage", "fallback", "teacher"):
        child = getattr(module, attribute, None)
        if isinstance(child, Module):
            total += _tree_degraded(child)
    return total
