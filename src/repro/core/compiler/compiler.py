"""The Lingua Manga compiler: logical pipeline -> physical plan.

"Like a relational database, it auto-compiles each logical operator into a
physical, executable module" (paper section 3).  Beyond strategy selection
the compiler also honours the optimizer attachments declared on operators:

- ``validator_cases=[TestCase, ...]`` — run the validator's test-and-repair
  cycle on the bound module at compile time (LLMGC modules get repaired).
- ``simulate=True`` (plus optional ``simulate_config={...}``) — wrap the
  per-item module with the optimizer's ML simulator.
- ``distill=True`` (plus optional ``distill_config={...}``) — wrap the
  per-item module with the optimizer's cost-minimizing distillation
  router, which answers high-confidence records with a shadow-trained
  local model and ledgers them with ``distilled`` provenance.
"""

from __future__ import annotations

from typing import Any

from repro.core.compiler.context import CompilerContext
from repro.core.compiler.plan import BoundOperator, PhysicalPlan
from repro.core.compiler.registry import CompileError, build_module
from repro.core.compiler.rewriter import RewriteReport, rewrite_pipeline
from repro.core.dsl.operators import LogicalOperator
from repro.core.dsl.pipeline import Pipeline
from repro.core.modules.base import Module
from repro.core.modules.cascade import CascadeModule
from repro.core.modules.llmgc import LLMGCModule
from repro.core.modules.mapping import EnrichModule, MapModule
from repro.core.optimizer.distill import DistillationRouter
from repro.core.optimizer.simulator import SimulatedModule
from repro.core.optimizer.validator import ModuleValidator, TestCase, ValidationReport

__all__ = ["CompileError", "LinguaMangaCompiler", "compile_pipeline"]


def _innermost(module: Module) -> Module:
    """Follow map/enrich wrappers down to the item-level module."""
    current = module
    while True:
        if isinstance(current, MapModule):
            current = current.inner
        elif isinstance(current, EnrichModule) and isinstance(current.stage, Module):
            current = current.stage
        else:
            return current


def _default_featurize(value: Any) -> str:
    if isinstance(value, dict):
        return " ".join(f"{k}={value[k]}" for k in sorted(value))
    return str(value)


class LinguaMangaCompiler:
    """Compile pipelines against a :class:`CompilerContext`."""

    def __init__(self, context: CompilerContext | None = None):
        self.context = context or CompilerContext()
        self.validation_reports: list[ValidationReport] = []
        self.last_rewrite: RewriteReport | None = None

    def compile(self, pipeline: Pipeline, optimize: bool = False) -> PhysicalPlan:
        """Bind every operator, applying optimizer attachments.

        With ``optimize=True`` the logical rewriter runs first (fuse
        duplicate stages, push filters early); the rewrite report is kept
        on ``last_rewrite``.
        """
        pipeline.validate()
        if optimize:
            pipeline, self.last_rewrite = rewrite_pipeline(pipeline)
        bound: list[BoundOperator] = []
        obs = getattr(self.context.service, "obs", None)
        for operator in pipeline.topological_order():
            module = build_module(operator, self.context)
            module = self._apply_validator(operator, module)
            module = self._apply_simulator(operator, module)
            module = self._apply_distill(operator, module)
            if obs is not None:
                _attach_obs(module, obs)
            bound.append(BoundOperator(operator=operator, module=module))
        return PhysicalPlan(pipeline=pipeline, bound=bound, context=self.context)

    # -- optimizer attachments -------------------------------------------------

    def _apply_validator(self, operator: LogicalOperator, module: Module) -> Module:
        cases = operator.params.get("validator_cases")
        if not cases:
            return module
        if not all(isinstance(case, TestCase) for case in cases):
            raise CompileError(
                f"operator {operator.name!r}: validator_cases must be TestCase objects"
            )
        target = _innermost(module)
        # The validator repairs LLMGC modules in place; for other module
        # types it simply reports.
        validator = ModuleValidator(
            self.context.service,
            list(cases),
            max_rounds=int(operator.params.get("validator_rounds", 4)),
            max_regenerations=int(operator.params.get("validator_regenerations", 1)),
        )
        if isinstance(target, LLMGCModule):
            report = validator.validate_and_repair(target)
        else:
            # Modules reachable through a tagger holder can still be validated.
            holder = getattr(target, "tagger_holder", None)
            if holder is not None:
                report = validator.validate_and_repair(holder["tagger"])
            else:
                report = validator.validate_and_repair(target)
        self.validation_reports.append(report)
        return module

    def _apply_simulator(self, operator: LogicalOperator, module: Module) -> Module:
        if not operator.params.get("simulate", False):
            return module
        config = dict(operator.params.get("simulate_config", {}))
        config.setdefault("featurize", _default_featurize)

        def wrap(teacher: Module) -> SimulatedModule:
            return SimulatedModule(
                name=f"{operator.name}_simulated", teacher=teacher, **config
            )

        target = _innermost(module)
        holder = getattr(target, "tagger_holder", None)
        if holder is not None:
            holder["tagger"] = wrap(holder["tagger"])
            return module
        if isinstance(module, MapModule):
            module.inner = wrap(module.inner)
            return module
        if isinstance(module, EnrichModule) and isinstance(module.stage, Module):
            module.stage = wrap(module.stage)
            return module
        return wrap(module)

    def _apply_distill(self, operator: LogicalOperator, module: Module) -> Module:
        if not operator.params.get("distill", False):
            return module
        config = dict(operator.params.get("distill_config", {}))
        config.setdefault("featurize", _default_featurize)

        def wrap(teacher: Module) -> DistillationRouter:
            return DistillationRouter(
                name=f"{operator.name}_distilled",
                teacher=teacher,
                service=self.context.service,
                purpose=getattr(teacher, "purpose", None),
                **config,
            )

        target = _innermost(module)
        holder = getattr(target, "tagger_holder", None)
        if holder is not None:
            holder["tagger"] = wrap(holder["tagger"])
            return module
        if isinstance(module, MapModule):
            # A classifier cascade distills its *teacher* rung: the router
            # sits between the cheap rules and the LLM, so high-confidence
            # escalations are answered by the student model.
            if isinstance(module.inner, CascadeModule):
                module.inner.teacher = wrap(module.inner.teacher)
            else:
                module.inner = wrap(module.inner)
            return module
        if isinstance(module, EnrichModule) and isinstance(module.stage, Module):
            module.stage = wrap(module.stage)
            return module
        if isinstance(module, CascadeModule):
            module.teacher = wrap(module.teacher)
            return module
        return wrap(module)


#: Attribute names under which wrapper modules expose wrapped children
#: (mirrors the scheduler's traversal, plus list-valued containers).
_CHILD_ATTRIBUTES = ("inner", "stage", "fallback", "teacher", "primary", "wrapper")


def _attach_obs(module: Module, obs) -> None:
    """Point a module tree at the system's observability hub."""
    module.obs = obs
    for attribute in _CHILD_ATTRIBUTES:
        child = getattr(module, attribute, None)
        if isinstance(child, Module):
            _attach_obs(child, obs)
    for attribute in ("stages", "variants"):
        children = getattr(module, attribute, None)
        if isinstance(children, (list, tuple)):
            for child in children:
                if isinstance(child, Module):
                    _attach_obs(child, obs)


def compile_pipeline(
    pipeline: Pipeline, context: CompilerContext | None = None
) -> PhysicalPlan:
    """One-shot convenience: compile ``pipeline`` with a fresh compiler."""
    return LinguaMangaCompiler(context).compile(pipeline)
