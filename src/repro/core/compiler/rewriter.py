"""Logical pipeline rewriting (paper conclusion: "pipeline optimizations").

A small rule-based rewriter in the spirit of a relational optimizer's
rewrite phase.  Rules are conservative — they only fire when the
transformation is semantics-preserving by construction:

- **fuse duplicate dedupes** — ``dedupe . dedupe == dedupe``.
- **fuse duplicate clean_text** — normalisation is idempotent.
- **push filter below dedupe** — a pure per-record predicate commutes with
  duplicate removal and shrinks the dedupe's input.
- **push filter below clean/transform stages marked pure** — only when the
  operator was explicitly declared ``pure=True`` (the rewriter cannot prove
  purity of arbitrary user code, so the user asserts it).

The rewriter works on *linear chains* inside the DAG (single input, single
consumer), the only place these rules are unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.dsl.pipeline import Pipeline

__all__ = ["RewriteReport", "rewrite_pipeline"]


@dataclass
class RewriteReport:
    """What the rewriter did."""

    applied: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        """One line per applied rule."""
        if not self.applied:
            return "no rewrites applied"
        return "\n".join(f"- {rule}" for rule in self.applied)


def _consumers(pipeline: Pipeline) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {op.name: [] for op in pipeline.operators}
    for op in pipeline.operators:
        for ref in op.inputs:
            out[ref].append(op.name)
    return out


def _linear_chain(pipeline: Pipeline) -> list[LogicalOperator] | None:
    """The operators as a single chain, or None when the DAG branches."""
    consumers = _consumers(pipeline)
    if any(len(c) > 1 for c in consumers.values()):
        return None
    if any(len(op.inputs) > 1 for op in pipeline.operators):
        return None
    return pipeline.topological_order()


def _rebuild(name: str, description: str, chain: list[LogicalOperator]) -> Pipeline:
    pipeline = Pipeline(name=name, description=description)
    previous: str | None = None
    for op in chain:
        inputs = [] if previous is None else [previous]
        pipeline.add(
            LogicalOperator(
                name=op.name, kind=op.kind, params=dict(op.params), inputs=inputs
            )
        )
        previous = op.name
    pipeline.validate()
    return pipeline


_FUSABLE = {OperatorKind.DEDUPE, OperatorKind.CLEAN_TEXT}
_FILTER_PUSH_TARGETS = {OperatorKind.DEDUPE}


def _is_pure(op: LogicalOperator) -> bool:
    return bool(op.params.get("pure", False))


def rewrite_pipeline(pipeline: Pipeline) -> tuple[Pipeline, RewriteReport]:
    """Apply the rewrite rules; returns ``(new_pipeline, report)``.

    Pipelines the rewriter cannot reason about (branching DAGs) are
    returned unchanged.
    """
    report = RewriteReport()
    chain = _linear_chain(pipeline)
    if chain is None:
        return pipeline, report

    changed = True
    while changed:
        changed = False
        # Rule 1: fuse adjacent identical fusable kinds.
        for i in range(len(chain) - 1):
            a, b = chain[i], chain[i + 1]
            if a.kind == b.kind and a.kind in _FUSABLE and a.params == b.params:
                report.applied.append(
                    f"fused duplicate {a.kind} ({b.name} removed, {a.name} kept)"
                )
                del chain[i + 1]
                changed = True
                break
        if changed:
            continue
        # Rule 2: push a filter below dedupe (and pure stages).
        for i in range(len(chain) - 1):
            a, b = chain[i], chain[i + 1]
            pushable = b.kind == OperatorKind.FILTER and (
                a.kind in _FILTER_PUSH_TARGETS
                or (a.kind in (OperatorKind.CLEAN_TEXT, OperatorKind.TRANSFORM) and _is_pure(b))
            )
            if pushable:
                report.applied.append(f"pushed filter {b.name} before {a.name}")
                chain[i], chain[i + 1] = b, a
                changed = True
                break

    if not report.applied:
        return pipeline, report
    return _rebuild(pipeline.name, pipeline.description, chain), report
