"""EXPLAIN-style rendering of pipelines and plans (Figures 1-4 in text)."""

from __future__ import annotations

from repro.core.compiler.plan import PhysicalPlan
from repro.core.dsl.pipeline import Pipeline

__all__ = ["explain_pipeline", "explain_plan", "render_architecture"]


def explain_pipeline(pipeline: Pipeline) -> str:
    """Boxed ASCII rendering of a logical pipeline (Figure 2/3/4 style)."""
    operators = pipeline.topological_order()
    boxes = []
    for op in operators:
        label = f" {op.name} [{op.kind}] "
        hints = [
            f"{key}={op.params[key]}"
            for key in ("impl", "simulate")
            if key in op.params
        ]
        if "validator_cases" in op.params:
            hints.append(f"validator({len(op.params['validator_cases'])} cases)")
        hint_line = f" {', '.join(hints)} " if hints else ""
        width = max(len(label), len(hint_line))
        lines = ["+" + "-" * width + "+", "|" + label.ljust(width) + "|"]
        if hint_line:
            lines.append("|" + hint_line.ljust(width) + "|")
        lines.append("+" + "-" * width + "+")
        boxes.append(lines)
    out = [f"Pipeline: {pipeline.name}"]
    if pipeline.description:
        out.append(f"  ({pipeline.description})")
    for index, box in enumerate(boxes):
        out.extend(box)
        if index < len(boxes) - 1:
            out.append("      |")
            out.append("      v")
    return "\n".join(out)


def explain_plan(plan: PhysicalPlan) -> str:
    """Logical-to-physical binding table."""
    return plan.to_text()


def render_architecture() -> str:
    """ASCII rendering of the system architecture (paper Figure 1)."""
    return "\n".join(
        [
            "+---------------------------------------------------------------+",
            "|                       LINGUA MANGA                            |",
            "|                                                               |",
            "|  user (NL / DSL / templates)                                  |",
            "|        |                                                      |",
            "|        v                                                      |",
            "|  +-----------+    +------------+    +----------------------+  |",
            "|  |   DSL     |--->|  Compiler  |--->|   Physical plan      |  |",
            "|  | pipelines |    | (registry) |    | custom/llm/llmgc/    |  |",
            "|  +-----------+    +------------+    | decorated modules    |  |",
            "|        ^                |           +----------------------+  |",
            "|        |                v                      |              |",
            "|  +-----------+    +------------+               v              |",
            "|  | Templates |    | Optimizer  |     +------------------+     |",
            "|  +-----------+    | validator  |<--->|   LLM service    |     |",
            "|                   | simulator  |     | (cache, budget,  |     |",
            "|                   | connector  |     |  ledger, retry)  |     |",
            "|                   +------------+     +------------------+     |",
            "|                         |                      |              |",
            "|                         v                      v              |",
            "|                  +--------------+      +--------------+       |",
            "|                  | local store  |      |  knowledge   |       |",
            "|                  | (SQL subset) |      |  (simulated) |       |",
            "|                  +--------------+      +--------------+       |",
            "+---------------------------------------------------------------+",
        ]
    )
