"""Compilation context: the shared services physical modules bind to."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.llm.knowledge import KnowledgeBase
from repro.llm.providers import SimulatedProvider
from repro.llm.service import LLMService
from repro.storage.database import Database

__all__ = ["CompilerContext"]


@dataclass
class CompilerContext:
    """Everything a physical module may need at bind time.

    ``tools`` are capabilities granted to LLMGC modules (external tool APIs,
    other modules); ``options`` carry application-level settings the
    strategies read (e.g. default few-shot examples for matching).
    """

    service: LLMService = field(default_factory=lambda: LLMService(SimulatedProvider()))
    database: Database = field(default_factory=Database)
    tools: dict[str, Any] = field(default_factory=dict)
    options: dict[str, Any] = field(default_factory=dict)

    @property
    def knowledge(self) -> KnowledgeBase | None:
        """The simulated provider's knowledge base, when available."""
        provider = self.service.provider
        return getattr(provider, "knowledge", None)

    def with_options(self, **options: Any) -> "CompilerContext":
        """A shallow copy with extra options (shares service and database)."""
        merged = dict(self.options)
        merged.update(options)
        return CompilerContext(
            service=self.service,
            database=self.database,
            tools=dict(self.tools),
            options=merged,
        )
