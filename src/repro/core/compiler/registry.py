"""Physical strategy registry: logical operator kind -> module factories.

Like a relational optimizer's implementation rules, each logical operator
kind maps to one or more *strategies* ("custom", "llm", "llmgc").  The
compiler picks a strategy (operator param ``impl`` overrides the default)
and calls its factory with the operator and the compilation context.
Programmers extend the system by registering their own strategies
(paper: "Lingua Manga is extensible").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.core.compiler.context import CompilerContext
from repro.core.dsl.operators import LogicalOperator, OperatorKind
from repro.core.modules.base import ErrorPolicy, Module
from repro.core.modules.custom import CustomModule
from repro.core.modules.llm_module import (
    LLMModule,
    parse_leading_word,
    parse_yes_no,
)
from repro.core.modules.llmgc import LLMGCModule
from repro.core.modules.mapping import EnrichModule, MapModule
from repro.core.modules.validation import ChoiceValidator, NonEmptyValidator
from repro.datasets.catalog import BRANDS
from repro.storage.table import Table
from repro.text.language import detect_language
from repro.text.normalize import normalize_text
from repro.text.phrases import noun_phrases
from repro.text.similarity import jaccard_similarity, jaro_winkler_similarity
from repro.text.tokenize import word_tokenize

__all__ = [
    "CompileError",
    "ModuleFactory",
    "register_strategy",
    "strategies_for",
    "default_strategy",
    "build_module",
    "render_pair",
    "make_pair_matcher",
    "make_name_tagger",
]

ModuleFactory = Callable[[LogicalOperator, CompilerContext], Module]


class CompileError(ValueError):
    """Raised when an operator cannot be bound to a physical module."""


_REGISTRY: dict[str, dict[str, ModuleFactory]] = {}
_DEFAULTS: dict[str, str] = {}


def register_strategy(
    kind: str, strategy: str, factory: ModuleFactory, default: bool = False
) -> None:
    """Register ``factory`` as implementation ``strategy`` of ``kind``."""
    _REGISTRY.setdefault(kind, {})[strategy] = factory
    if default or kind not in _DEFAULTS:
        _DEFAULTS[kind] = strategy


def strategies_for(kind: str) -> list[str]:
    """Names of the registered strategies for ``kind``."""
    return sorted(_REGISTRY.get(kind, {}))


def default_strategy(kind: str) -> str:
    """The strategy used when the operator does not pin one."""
    if kind not in _DEFAULTS:
        raise CompileError(f"no strategies registered for kind {kind!r}")
    return _DEFAULTS[kind]


def build_module(operator: LogicalOperator, context: CompilerContext) -> Module:
    """Bind ``operator`` to a physical module via its (chosen) strategy."""
    strategies = _REGISTRY.get(operator.kind)
    if not strategies:
        raise CompileError(f"no strategies registered for kind {operator.kind!r}")
    wanted = operator.params.get("impl", default_strategy(operator.kind))
    factory = strategies.get(wanted)
    if factory is None:
        raise CompileError(
            f"operator {operator.name!r}: no strategy {wanted!r} for kind "
            f"{operator.kind!r}; have {sorted(strategies)}"
        )
    return factory(operator, context)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def render_pair(pair: Any) -> str:
    """Render a record pair as the two labelled JSON lines the skills parse."""
    if isinstance(pair, dict) and "left" in pair and "right" in pair:
        left, right = pair["left"], pair["right"]
    elif isinstance(pair, (tuple, list)) and len(pair) == 2:
        left, right = pair
    else:
        raise TypeError(f"cannot interpret {pair!r} as a record pair")
    return (
        "Record A: " + json.dumps(left, ensure_ascii=False, sort_keys=True, default=str)
        + "\nRecord B: " + json.dumps(right, ensure_ascii=False, sort_keys=True, default=str)
    )


def make_pair_matcher(
    name: str,
    context: CompilerContext,
    task: str | None = None,
    examples: list[tuple[Any, bool]] | None = None,
    instructions: str = "",
    purpose: str = "match",
) -> LLMModule:
    """Per-pair LLM matcher used by both the compiler and the templates."""
    rendered_examples = [
        (render_pair(pair).replace("\n", "  "), "Yes" if label else "No")
        for pair, label in (examples or [])
    ]
    return LLMModule(
        name=name,
        service=context.service,
        task_description=task
        or (
            "Entity resolution: determine if the following two records refer "
            "to the same entity. Answer Yes or No."
        ),
        parser=parse_yes_no,
        render=render_pair,
        payload_label="Pair",
        examples=rendered_examples,
        instructions=instructions,
        purpose=purpose,
    )


def make_name_tagger(
    name: str,
    context: CompilerContext,
    use_language: bool = False,
    purpose: str = "tag",
) -> LLMModule:
    """Per-phrase person-name tagger; optionally language-aware."""

    def render(value: Any) -> str:
        if isinstance(value, dict):
            phrase = value.get("phrase", "")
            language = value.get("language")
            if use_language and language:
                return f"{phrase}\nLanguage: {language}"
            return str(phrase)
        return str(value)

    return LLMModule(
        name=name,
        service=context.service,
        task_description="Decide whether the following phrase is a person name. Answer Yes or No.",
        parser=parse_yes_no,
        render=render,
        payload_label="Phrase",
        purpose=purpose,
    )


def _maybe_map(module: Module, operator: LogicalOperator) -> Module:
    """Wrap per-item modules in a MapModule unless ``map=False``.

    The operator's ``error_policy`` param (``fail`` | ``skip_record`` |
    ``degrade``) and optional ``degrade_fallback`` module are threaded onto
    the wrapper, giving every mapped operator record-level isolation.
    """
    if operator.params.get("map", True):
        return MapModule(
            f"{operator.name}",
            module,
            error_policy=operator.params.get("error_policy", ErrorPolicy.FAIL),
            fallback=operator.params.get("degrade_fallback"),
        )
    return module


# ---------------------------------------------------------------------------
# load / save
# ---------------------------------------------------------------------------


def _load_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    params = operator.params

    def load(inputs: Any) -> Any:
        if "source" in params:
            key = params["source"]
            if not isinstance(inputs, dict) or key not in inputs:
                raise KeyError(
                    f"load operator {operator.name!r}: no input named {key!r}"
                )
            return inputs[key]
        if "table" in params:
            return context.database.table(params["table"]).records()
        if "path" in params:
            path = str(params["path"])
            if path.endswith(".json"):
                return json.loads(Path(path).read_text(encoding="utf-8"))
            return Table.from_csv(Path(path)).records()
        raise CompileError(
            f"load operator {operator.name!r} needs source=, table= or path="
        )

    return CustomModule(operator.name, load, "data source")


def _save_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    params = operator.params

    def save(value: Any) -> Any:
        path = params.get("path")
        if path:
            path = str(path)
            if path.endswith(".json"):
                Path(path).write_text(
                    json.dumps(value, ensure_ascii=False, indent=2, default=str),
                    encoding="utf-8",
                )
            elif isinstance(value, Table):
                value.to_csv(path)
            elif isinstance(value, list) and value and isinstance(value[0], dict):
                Table.from_records(operator.name, value).to_csv(path)
            else:
                Path(path).write_text(str(value), encoding="utf-8")
        key = params.get("key")
        if key:
            context.options.setdefault("outputs", {})[key] = value
        return value

    return CustomModule(operator.name, save, "data sink")


# ---------------------------------------------------------------------------
# entity matching
# ---------------------------------------------------------------------------


def _match_llm_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    examples = operator.params.get("examples")
    if examples is None:
        examples = context.options.get("match_examples", [])
    matcher = make_pair_matcher(
        f"{operator.name}_llm",
        context,
        task=operator.params.get("task"),
        examples=examples,
        instructions=operator.params.get("instructions", ""),
        purpose=operator.params.get("purpose", operator.name),
    )
    return _maybe_map(matcher, operator)


def _match_llm_batch_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    """Batched LLM matching: ``batch_size`` pairs per prompt."""
    from repro.core.modules.batch_llm import BatchLLMModule
    from repro.core.modules.llm_module import parse_yes_no

    examples = operator.params.get("examples")
    if examples is None:
        examples = context.options.get("match_examples", [])
    single = make_pair_matcher(
        f"{operator.name}_single",
        context,
        task=operator.params.get("task"),
        examples=examples,
        instructions=operator.params.get("instructions", ""),
        purpose=operator.params.get("purpose", operator.name),
    )
    rendered_examples = [
        (render_pair(pair).replace("\n", "  "), "Yes" if label else "No")
        for pair, label in (examples or [])
    ]
    return BatchLLMModule(
        name=f"{operator.name}_batch",
        service=context.service,
        task_description=operator.params.get(
            "task",
            "Entity resolution: determine for each pair whether the two "
            "records refer to the same entity. Answer Yes or No per pair.",
        ),
        render_item=render_pair,
        parse_answer=parse_yes_no,
        batch_size=int(operator.params.get("batch_size", 10)),
        item_label="Pair",
        examples=rendered_examples,
        fallback=single,
        purpose=operator.params.get("purpose", operator.name),
        error_policy=operator.params.get("error_policy", ErrorPolicy.FAIL),
    )


def _match_custom_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    threshold = float(operator.params.get("threshold", 0.5))

    def match(pair: Any) -> bool:
        if isinstance(pair, dict) and "left" in pair:
            left, right = pair["left"], pair["right"]
        else:
            left, right = pair
        scores = []
        for attribute in sorted(set(left) & set(right)):
            a, b = left.get(attribute), right.get(attribute)
            if a is None or b is None:
                continue
            scores.append(
                0.6 * jaccard_similarity(str(a), str(b))
                + 0.4 * jaro_winkler_similarity(str(a).lower(), str(b).lower())
            )
        return bool(scores) and sum(scores) / len(scores) >= threshold

    inner = CustomModule(
        f"{operator.name}_sim", match, f"similarity matcher (threshold {threshold})"
    )
    return _maybe_map(inner, operator)


# ---------------------------------------------------------------------------
# imputation
# ---------------------------------------------------------------------------


def _impute_llm_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    validators = []
    if operator.params.get("validate_choices", False):
        validators.append(ChoiceValidator([b.name for b in BRANDS] + ["Unknown"]))
    module = LLMModule(
        name=f"{operator.name}_llm",
        service=context.service,
        task_description=operator.params.get(
            "task",
            "Which company is the manufacturer of this product? Answer with "
            "the company name only, or Unknown.",
        ),
        parser=parse_leading_word,
        payload_label="Product",
        validators=validators,
        instructions=operator.params.get("instructions", ""),
        purpose=operator.params.get("purpose", operator.name),
    )
    return _maybe_map(module, operator)


def _impute_llmgc_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    service = context.service
    purpose = operator.params.get("purpose", operator.name)

    def llm_impute(record: dict) -> str | None:
        payload = json.dumps(
            {k: v for k, v in record.items() if v is not None},
            ensure_ascii=False,
            sort_keys=True,
        )
        text = service.complete(
            "Which company is the manufacturer of this product? Answer with "
            f"the company name only, or Unknown.\nProduct: {payload}",
            purpose=f"{purpose}-escalation",
        )
        head = text.strip().split(".")[0].strip()
        return None if head.lower() == "unknown" else head

    tools = dict(context.tools)
    tools.setdefault("brand_names", [b.name for b in BRANDS])
    tools.setdefault("llm_impute", llm_impute)
    module = LLMGCModule(
        name=f"{operator.name}_llmgc",
        service=service,
        task_description=operator.params.get(
            "task", "Impute the missing manufacturer of a product record."
        ),
        tools=tools,
        guidelines=operator.params.get("guidelines", ""),
        purpose=f"{purpose}-codegen",
    )
    return _maybe_map(module, operator)


# ---------------------------------------------------------------------------
# text stages (document-enrichment protocol)
# ---------------------------------------------------------------------------


def _tools_for_text(context: CompilerContext) -> dict[str, Any]:
    tools = dict(context.tools)
    tools.setdefault("noun_phrases", noun_phrases)
    tools.setdefault("detect_language", detect_language)
    tools.setdefault("normalize_text", normalize_text)
    tools.setdefault("string_similarity", jaro_winkler_similarity)
    return tools


def _text_stage_factory(
    kind_task: str, in_key: str, out_key: str, custom_fn: Callable[[Any], Any]
) -> tuple[ModuleFactory, ModuleFactory]:
    """Build (llmgc_factory, custom_factory) for a document text stage."""

    def llmgc_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
        inner = LLMGCModule(
            name=f"{operator.name}_llmgc",
            service=context.service,
            task_description=operator.params.get("task", kind_task),
            tools=_tools_for_text(context),
            guidelines=operator.params.get("guidelines", ""),
            purpose=operator.params.get("purpose", f"{operator.name}-codegen"),
        )
        stage = EnrichModule(operator.name, inner, in_key=in_key, out_key=out_key)
        return _maybe_map(stage, operator)

    def custom_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
        stage = EnrichModule(operator.name, custom_fn, in_key=in_key, out_key=out_key)
        return _maybe_map(stage, operator)

    return llmgc_factory, custom_factory


def _tag_names_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    use_language = bool(operator.params.get("use_language", False))
    tagger = make_name_tagger(
        f"{operator.name}_llm",
        context,
        use_language=use_language,
        purpose=operator.params.get("purpose", operator.name),
    )

    # The per-phrase tagger lives in a mutable holder so the optimizer can
    # swap in a simulator-wrapped version after compilation.
    holder: dict[str, Module] = {"tagger": tagger}

    def tag_document(doc: dict) -> list[str]:
        names = []
        for phrase in doc.get("phrases", []):
            payload = {"phrase": phrase, "language": doc.get("language")}
            if holder["tagger"].run(payload):
                names.append(phrase)
        return names

    stage = EnrichModule(
        operator.name, tag_document, in_key="phrases", out_key="names", whole_doc=True
    )
    stage.tagger_holder = holder
    return _maybe_map(stage, operator)


def _detect_language_llm_factory(
    operator: LogicalOperator, context: CompilerContext
) -> Module:
    inner = LLMModule(
        name=f"{operator.name}_llm",
        service=context.service,
        task_description="Detect the language of the text. Answer with a two-letter code.",
        parser=lambda text: parse_leading_word(text).lower()[:2],
        payload_label="Text",
        purpose=operator.params.get("purpose", operator.name),
    )
    stage = EnrichModule(operator.name, inner, in_key="text", out_key="language")
    return _maybe_map(stage, operator)


def _detect_language_custom_factory(
    operator: LogicalOperator, context: CompilerContext
) -> Module:
    stage = EnrichModule(
        operator.name,
        lambda text: detect_language(text).language,
        in_key="text",
        out_key="language",
    )
    return _maybe_map(stage, operator)


# ---------------------------------------------------------------------------
# generic operators
# ---------------------------------------------------------------------------


def _classify_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    choices = operator.params.get("choices")
    if not choices:
        raise CompileError(f"classify operator {operator.name!r} needs choices=")
    module = LLMModule(
        name=f"{operator.name}_llm",
        service=context.service,
        task_description=(
            "Classify the input into exactly one of the choices.\n"
            "Choices: " + " | ".join(str(c) for c in choices)
        ),
        parser=parse_leading_word,
        validators=[ChoiceValidator(choices)],
        purpose=operator.params.get("purpose", operator.name),
    )
    return _maybe_map(module, operator)


def _dedupe_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    inner = LLMGCModule(
        name=f"{operator.name}_llmgc",
        service=context.service,
        task_description="Remove duplicate records from a list.",
        tools=_tools_for_text(context),
        purpose=operator.params.get("purpose", f"{operator.name}-codegen"),
    )
    return inner  # dedupe consumes the whole list


def _dedupe_custom_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    def dedupe(records: list) -> list:
        seen: set = set()
        out = []
        for record in records:
            key = (
                tuple(sorted(record.items()))
                if isinstance(record, dict)
                else record
            )
            if key not in seen:
                seen.add(key)
                out.append(record)
        return out

    return CustomModule(operator.name, dedupe, "exact dedupe")


def _clean_text_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    inner = LLMGCModule(
        name=f"{operator.name}_llmgc",
        service=context.service,
        task_description="Normalise a text value for comparison (clean it).",
        tools=_tools_for_text(context),
        purpose=operator.params.get("purpose", f"{operator.name}-codegen"),
    )
    return _maybe_map(inner, operator)


def _clean_text_custom_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    inner = CustomModule(f"{operator.name}_fn", lambda v: normalize_text(str(v)), "normalize_text")
    return _maybe_map(inner, operator)


def _filter_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    predicate = operator.params.get("predicate")
    if predicate is None or not callable(predicate):
        raise CompileError(f"filter operator {operator.name!r} needs a callable predicate=")

    def apply(records: list) -> list:
        return [r for r in records if predicate(r)]

    return CustomModule(operator.name, apply, "filter")


def _transform_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    fn = operator.params.get("fn")
    if fn is None or not callable(fn):
        raise CompileError(f"transform operator {operator.name!r} needs a callable fn=")
    inner = CustomModule(f"{operator.name}_fn", fn, "user transform")
    return _maybe_map(inner, operator)


def _custom_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    module = operator.params.get("module")
    if isinstance(module, Module):
        return module
    fn = operator.params.get("fn")
    if callable(fn):
        inner = CustomModule(operator.name, fn, operator.params.get("description", ""))
        return inner if not operator.params.get("map", False) else MapModule(
            f"{operator.name}_map", inner
        )
    raise CompileError(
        f"custom operator {operator.name!r} needs module= (a Module) or fn= (a callable)"
    )


def _schema_match_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    def render(value: Any) -> str:
        return (
            "Left columns: " + ", ".join(value["left"])
            + "\nRight columns: " + ", ".join(value["right"])
        )

    def parse(text: str) -> list[tuple[str, str]]:
        pairs = json.loads(text)
        return [tuple(pair) for pair in pairs]

    return LLMModule(
        name=f"{operator.name}_llm",
        service=context.service,
        task_description="Match the columns of two table schemas by meaning.",
        parser=parse,
        render=render,
        payload_label="Schemas",
        validators=[NonEmptyValidator()],
        purpose=operator.params.get("purpose", operator.name),
    )


def _schema_match_llmgc_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    return LLMGCModule(
        name=f"{operator.name}_llmgc",
        service=context.service,
        task_description="Write a schema matcher: match columns of two schemas by name similarity.",
        tools=_tools_for_text(context),
        purpose=operator.params.get("purpose", f"{operator.name}-codegen"),
    )


def _summarize_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    module = LLMModule(
        name=f"{operator.name}_llm",
        service=context.service,
        task_description="Summarize the text in at most two sentences.",
        parser=lambda text: text.strip(),
        payload_label="Text",
        validators=[NonEmptyValidator()],
        purpose=operator.params.get("purpose", operator.name),
    )
    return _maybe_map(module, operator)


def _extract_names_factory(operator: LogicalOperator, context: CompilerContext) -> Module:
    """Composite: noun phrases (custom) + language (custom) + tagging (LLM)."""
    use_language = bool(operator.params.get("use_language", True))
    holder: dict[str, Module] = {
        "tagger": make_name_tagger(
            f"{operator.name}_tagger", context, use_language=use_language
        )
    }

    def extract(doc: Any) -> dict:
        text = doc["text"] if isinstance(doc, dict) else str(doc)
        enriched: dict[str, Any] = {"text": text}
        enriched["tokens"] = word_tokenize(text)
        if use_language:
            enriched["language"] = detect_language(text).language
        enriched["phrases"] = [span.text for span in noun_phrases(text)]
        enriched["names"] = [
            phrase
            for phrase in enriched["phrases"]
            if holder["tagger"].run(
                {"phrase": phrase, "language": enriched.get("language")}
            )
        ]
        return enriched

    inner = CustomModule(f"{operator.name}_fn", extract, "end-to-end name extraction")
    inner.tagger_holder = holder
    return _maybe_map(inner, operator)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

register_strategy(OperatorKind.LOAD, "custom", _load_factory, default=True)
register_strategy(OperatorKind.SAVE, "custom", _save_factory, default=True)

register_strategy(OperatorKind.MATCH_ENTITIES, "llm", _match_llm_factory, default=True)
register_strategy(OperatorKind.MATCH_ENTITIES, "custom", _match_custom_factory)
register_strategy(OperatorKind.MATCH_ENTITIES, "llm_batch", _match_llm_batch_factory)

register_strategy(OperatorKind.IMPUTE, "llm", _impute_llm_factory, default=True)
register_strategy(OperatorKind.IMPUTE, "llmgc", _impute_llmgc_factory)

_tokenize_llmgc, _tokenize_custom = _text_stage_factory(
    "Tokenize a text into words.", "text", "tokens", word_tokenize
)
register_strategy(OperatorKind.TOKENIZE, "llmgc", _tokenize_llmgc, default=True)
register_strategy(OperatorKind.TOKENIZE, "custom", _tokenize_custom)

_np_llmgc, _np_custom = _text_stage_factory(
    "Extract candidate noun phrases (capitalised spans) from a text.",
    "text",
    "phrases",
    lambda text: [span.text for span in noun_phrases(text)],
)
register_strategy(OperatorKind.NOUN_PHRASES, "llmgc", _np_llmgc, default=True)
register_strategy(OperatorKind.NOUN_PHRASES, "custom", _np_custom)

register_strategy(OperatorKind.TAG_NAMES, "llm", _tag_names_factory, default=True)

register_strategy(OperatorKind.DETECT_LANGUAGE, "llm", _detect_language_llm_factory, default=True)
register_strategy(OperatorKind.DETECT_LANGUAGE, "custom", _detect_language_custom_factory)

register_strategy(OperatorKind.EXTRACT_NAMES, "llm", _extract_names_factory, default=True)

register_strategy(OperatorKind.CLASSIFY, "llm", _classify_factory, default=True)

register_strategy(OperatorKind.DEDUPE, "llmgc", _dedupe_factory)
register_strategy(OperatorKind.DEDUPE, "custom", _dedupe_custom_factory, default=True)

register_strategy(OperatorKind.CLEAN_TEXT, "llmgc", _clean_text_factory)
register_strategy(OperatorKind.CLEAN_TEXT, "custom", _clean_text_custom_factory, default=True)

register_strategy(OperatorKind.FILTER, "custom", _filter_factory, default=True)
register_strategy(OperatorKind.TRANSFORM, "custom", _transform_factory, default=True)
register_strategy(OperatorKind.CUSTOM, "custom", _custom_factory, default=True)

register_strategy(OperatorKind.SCHEMA_MATCH, "llm", _schema_match_factory, default=True)
register_strategy(OperatorKind.SCHEMA_MATCH, "llmgc", _schema_match_llmgc_factory)

register_strategy(OperatorKind.SUMMARIZE, "llm", _summarize_factory, default=True)
