"""Compiler factories for the corpus-curation operator family.

Three operator kinds (paper section 4's "data curation tasks", scaled to
corpus curation):

- ``dedup_candidates`` — a whole-corpus *custom* kernel: exact content
  digests plus MinHash/LSH banding produce the candidate duplicate pairs
  that the downstream ``match_entities`` verifier adjudicates.  The LLM
  wedge lives in candidate **recall**: the candidate scan runs twice, once
  over a knowledge-free canonical form and once over the knowledge
  canonical form (:func:`repro.text.shingle.knowledge_canonical`), so
  disguised near-duplicates whose surface shingles have drifted apart
  still collide in the knowledge pass.
- ``quality_filter`` — a classifier cascade
  (:class:`repro.core.modules.cascade.CascadeModule`): the free surface
  heuristic :func:`repro.text.quality.rule_quality_score` answers documents
  outside its uncertainty band; the band escalates to an LLM teacher (and,
  with ``distill=True``, to the distillation router in front of it).
- ``decontaminate`` — the same cascade shape over an n-gram containment
  scan against a held-out eval set: a *hard* (8-gram) hit is flagged
  without any LLM call, a document with no *soft* (4-gram) hit is cleared
  for free, and only the soft-but-not-hard gray zone is adjudicated by the
  LLM against the specific benchmark item it collided with.

All three factories fold their configuration into module identity (the
kernel parameters via :class:`CorpusKernelModule`, the cascade thresholds
and scan fingerprint via ``CascadeModule.config_identity``), so checkpoint
resume and the prompt-cache ledger notice parameter changes.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable, Sequence

from repro._util import stable_hash
from repro.core.compiler.context import CompilerContext
from repro.core.compiler.registry import (
    CompileError,
    _maybe_map,
    register_strategy,
)
from repro.core.dsl.operators import LogicalOperator
from repro.core.modules.base import Module
from repro.core.modules.cascade import CascadeModule
from repro.core.modules.custom import CustomModule
from repro.core.modules.llm_module import LLMModule, parse_yes_no
from repro.text.minhash import band_keys, minhash_params, minhash_signature
from repro.text.overlap import build_ngram_index, overlap_profile
from repro.text.quality import rule_quality_score
from repro.text.shingle import (
    document_digest,
    exact_jaccard,
    knowledge_canonical,
    shingle_ids,
    simple_canonical,
)

__all__ = [
    "CorpusKernelModule",
    "DEDUP_VERIFY_TASK",
    "DEDUP_VERIFY_LOWER",
    "DEDUP_VERIFY_UPPER",
    "DEDUP_NUM_PERM",
    "DEDUP_BANDS",
    "DEDUP_ROWS",
    "DEDUP_SHINGLE_N",
    "QUALITY_RULE_LOWER",
    "QUALITY_RULE_UPPER",
    "DECONTAM_HARD_N",
    "DECONTAM_SOFT_N",
    "dedup_candidate_pairs",
    "candidate_pair_records",
    "render_document",
    "eval_items_fingerprint",
]


# -- dedup defaults (bands * rows == num_perm) --------------------------------

DEDUP_NUM_PERM = 128
DEDUP_BANDS = 32
DEDUP_ROWS = 4
DEDUP_SHINGLE_N = 3

# -- quality cascade band -----------------------------------------------------

#: Rule-score band escalated to the teacher.  Calibrated on the synthetic
#: corpus: below the band the surface heuristics are confidently right about
#: badness, above it confidently right about goodness (~3% rule error on the
#: covered tails).  The band is wide on purpose — the rule's blind spots
#: (pseudo-word junk it cannot read, ALL-CAPS decoys it wrongly punishes)
#: live in the middle, and the distillation router in front of the teacher
#: absorbs most escalations after warm-up.
QUALITY_RULE_LOWER = 0.72
QUALITY_RULE_UPPER = 0.98

# -- decontamination scan -----------------------------------------------------

#: Raw-token n-gram sizes of the two-tier scan: a *hard* hit (8 tokens
#: verbatim) flags without an LLM call; *soft* hits (4 tokens) only mark the
#: gray zone that escalates.
DECONTAM_HARD_N = 8
DECONTAM_SOFT_N = 4


# ---------------------------------------------------------------------------
# A CustomModule whose configuration participates in plan identity
# ---------------------------------------------------------------------------


class CorpusKernelModule(CustomModule):
    """Whole-corpus custom kernel with parameters folded into its identity.

    Plain :class:`CustomModule` identity is ``{type, name}`` — enough for
    user-provided functions, not for a parameterised kernel whose output
    changes with its knobs.  Checkpoint fingerprints must notice a changed
    band count, so the kernel parameters ride along here.
    """

    def __init__(self, name: str, fn, description: str, identity: dict):
        super().__init__(name, fn, description)
        self._kernel_identity = dict(identity)

    def config_identity(self) -> dict:
        identity = super().config_identity()
        identity["kernel"] = dict(self._kernel_identity)
        return identity


# ---------------------------------------------------------------------------
# Dedup candidate generation (exact digests + dual-pass MinHash/LSH)
# ---------------------------------------------------------------------------


def _doc_text(doc: Any) -> str:
    if isinstance(doc, dict):
        return str(doc.get("text", ""))
    return str(doc)


def _doc_id(doc: Any, index: int) -> Any:
    if isinstance(doc, dict) and "id" in doc:
        return doc["id"]
    return index


def _bucket_pairs(buckets: Iterable[set], pairs: set) -> None:
    for bucket in buckets:
        if len(bucket) < 2:
            continue
        members = sorted(bucket)
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                pairs.add((left, right))


def dedup_candidate_pairs(
    docs: Sequence[Any],
    *,
    num_perm: int = DEDUP_NUM_PERM,
    bands: int = DEDUP_BANDS,
    rows: int = DEDUP_ROWS,
    shingle_n: int = DEDUP_SHINGLE_N,
    dual: bool = True,
    columnar: bool | None = None,
) -> list[tuple]:
    """Candidate duplicate pairs of ``docs``, globally sorted by id.

    Three tiers, unioned:

    1. **exact** — documents with equal content digests;
    2. **simple LSH** — banding over the knowledge-free canonical form;
    3. **knowledge LSH** (``dual=True``) — banding over the knowledge
       canonical form, which is where disguised near-duplicates (variant
       rewrites, typos) still collide.

    Output is a sorted list of ``(left_id, right_id)`` with ``left < right``
    — order-insensitive in the corpus and identical between the scalar and
    columnar kernel paths (their band keys are bitwise-equal).
    """
    if bands * rows != num_perm:
        raise ValueError(f"bands*rows must equal num_perm ({bands}*{rows} != {num_perm})")
    from repro.storage.columnar import resolve_columnar

    use_columnar = resolve_columnar(columnar)
    ids = [_doc_id(doc, index) for index, doc in enumerate(docs)]
    texts = [_doc_text(doc) for doc in docs]

    pairs: set[tuple] = set()

    # Tier 1: exact content digests.
    by_digest: dict[str, set] = {}
    for doc_id, text in zip(ids, texts):
        by_digest.setdefault(document_digest(text), set()).add(doc_id)
    _bucket_pairs(by_digest.values(), pairs)

    # Tiers 2 + 3: LSH banding per canonicaliser.
    params = minhash_params(num_perm)
    canonicals: list[Callable[[str], str]] = [simple_canonical]
    if dual:
        canonicals.append(knowledge_canonical)
    for canonical in canonicals:
        id_rows = [shingle_ids(canonical(text), shingle_n) for text in texts]
        buckets: dict[str, set] = {}
        if use_columnar:
            from repro.storage.columnar import band_keys_many, minhash_signatures_many

            signatures = minhash_signatures_many(id_rows, params.a, params.b)
            doc_keys = band_keys_many(signatures, bands, rows)
        else:
            doc_keys = [
                band_keys(minhash_signature(row, params), bands, rows)
                for row in id_rows
            ]
        for doc_id, keys in zip(ids, doc_keys):
            for key in keys:
                buckets.setdefault(key, set()).add(doc_id)
        _bucket_pairs(buckets.values(), pairs)

    return sorted(pairs)


def candidate_pair_records(docs: Sequence[Any], pairs: Sequence[tuple]) -> list[dict]:
    """Materialise id pairs as the ``{"left", "right"}`` dicts the verifier renders."""
    by_id = {_doc_id(doc, index): doc for index, doc in enumerate(docs)}
    return [{"left": by_id[a], "right": by_id[b]} for a, b in pairs]


def _dedup_candidates_factory(
    operator: LogicalOperator, context: CompilerContext
) -> Module:
    params = operator.params
    config = {
        "num_perm": int(params.get("num_perm", DEDUP_NUM_PERM)),
        "bands": int(params.get("bands", DEDUP_BANDS)),
        "rows": int(params.get("rows", DEDUP_ROWS)),
        "shingle_n": int(params.get("shingle_n", DEDUP_SHINGLE_N)),
        "dual": bool(params.get("dual", True)),
    }
    if config["bands"] * config["rows"] != config["num_perm"]:
        raise CompileError(
            f"operator {operator.name!r}: bands*rows must equal num_perm "
            f"({config['bands']}*{config['rows']} != {config['num_perm']})"
        )
    emit = params.get("emit", "records")
    if emit not in ("records", "ids"):
        raise CompileError(
            f"operator {operator.name!r}: emit must be 'records' or 'ids', got {emit!r}"
        )
    columnar = params.get("columnar")  # None -> follow the global mode

    def candidates(docs: Any) -> list:
        corpus = list(docs)
        pairs = dedup_candidate_pairs(corpus, columnar=columnar, **config)
        if emit == "ids":
            return [{"a": a, "b": b} for a, b in pairs]
        return candidate_pair_records(corpus, pairs)

    return CorpusKernelModule(
        f"{operator.name}_kernel",
        candidates,
        "exact-digest + dual-pass MinHash/LSH duplicate candidate generation",
        identity={**config, "emit": emit},
    )


# ---------------------------------------------------------------------------
# Quality filter (rule / LLM classifier cascade)
# ---------------------------------------------------------------------------


def render_document(value: Any) -> str:
    """Render one document as the labelled JSON line the quality skill parses."""
    if isinstance(value, dict):
        return json.dumps(value, ensure_ascii=False, sort_keys=True, default=str)
    return json.dumps({"text": str(value)}, ensure_ascii=False)


def _quality_rule(doc: Any) -> float:
    return rule_quality_score(_doc_text(doc))


def _quality_filter_factory(
    operator: LogicalOperator, context: CompilerContext
) -> Module:
    params = operator.params
    rendered_examples = [
        (render_document(doc).replace("\n", "  "), "Yes" if label else "No")
        for doc, label in params.get("examples", [])
    ]
    teacher = LLMModule(
        name=f"{operator.name}_teacher",
        service=context.service,
        task_description=(
            "Document quality filtering for a training corpus: decide whether "
            "the following document is high-quality prose worth keeping. "
            "Answer Yes or No."
        ),
        parser=parse_yes_no,
        render=render_document,
        payload_label="Document",
        examples=rendered_examples,
        instructions=params.get("instructions", ""),
        purpose=params.get("purpose", f"{operator.name}-quality"),
    )
    cascade = CascadeModule(
        name=f"{operator.name}_cascade",
        rule=_quality_rule,
        teacher=teacher,
        lower=float(params.get("rule_lower", QUALITY_RULE_LOWER)),
        upper=float(params.get("rule_upper", QUALITY_RULE_UPPER)),
        rule_tag="quality-rules-v1",
        out_key=params.get("out_key", "keep"),
    )
    return _maybe_map(cascade, operator)


# ---------------------------------------------------------------------------
# Decontamination (n-gram scan cascade + per-item LLM adjudication)
# ---------------------------------------------------------------------------


def eval_items_fingerprint(eval_items: Sequence[str]) -> str:
    """Short stable identity of a held-out eval set (for plan fingerprints)."""
    return f"{stable_hash('decontam-eval', *eval_items):012x}"


def _decontaminate_factory(
    operator: LogicalOperator, context: CompilerContext
) -> Module:
    params = operator.params
    eval_items = list(params.get("eval_items", ()))
    if not eval_items:
        raise CompileError(
            f"operator {operator.name!r}: decontaminate requires a non-empty "
            "'eval_items' param (the held-out benchmark sentences)"
        )
    hard_n = int(params.get("hard_n", DECONTAM_HARD_N))
    soft_n = int(params.get("soft_n", DECONTAM_SOFT_N))
    hard_index = build_ngram_index(eval_items, hard_n)
    soft_index = build_ngram_index(eval_items, soft_n)

    def profile(doc: Any):
        return overlap_profile(
            _doc_text(doc), hard_index, soft_index, hard_n=hard_n, soft_n=soft_n
        )

    def rule(doc: Any) -> float:
        scan = profile(doc)
        if scan.hard_hits:
            return 1.0  # verbatim leak: flag without consulting the LLM
        if not scan.soft_hits:
            return 0.0  # no overlap at all: clean for free
        return 0.5  # gray zone: soft echoes only — adjudicate

    def render(doc: Any) -> str:
        scan = profile(doc)
        item = eval_items[scan.best_item if scan.best_item is not None else 0]
        return f"{render_document(doc)}\nBenchmark: {item}"

    rendered_examples = [
        (
            f"{render_document(doc)}  Benchmark: {item}".replace("\n", "  "),
            "Yes" if label else "No",
        )
        for doc, item, label in params.get("examples", [])
    ]
    teacher = LLMModule(
        name=f"{operator.name}_teacher",
        service=context.service,
        task_description=(
            "Decontamination: decide whether the document leaks the held-out "
            "benchmark evaluation item shown (verbatim or lightly reworded). "
            "Answer Yes or No."
        ),
        parser=parse_yes_no,
        render=render,
        payload_label="Document",
        examples=rendered_examples,
        instructions=params.get("instructions", ""),
        purpose=params.get("purpose", f"{operator.name}-decontam"),
    )
    cascade = CascadeModule(
        name=f"{operator.name}_cascade",
        rule=rule,
        teacher=teacher,
        lower=0.25,
        upper=0.75,
        rule_tag=(
            f"decontam-v1:h{hard_n}s{soft_n}:{eval_items_fingerprint(eval_items)}"
        ),
        out_key=params.get("out_key", "contaminated"),
    )
    return _maybe_map(cascade, operator)


# ---------------------------------------------------------------------------
# Dedup pair verification (reuses the entity-match prompt machinery)
# ---------------------------------------------------------------------------

#: Task card of the candidate-pair verifier: the ``match_entities`` factory
#: builds the matcher from this via :func:`make_pair_matcher`, and the
#: wording carries the duplicate-record framing the simulated provider's
#: entity-matching skill keys on.
DEDUP_VERIFY_TASK = (
    "Corpus deduplication: determine if the following two documents are "
    "duplicate records of the same underlying document (one may be a "
    "lightly reworded or damaged copy). Answer Yes or No."
)

#: Knowledge-canonical Jaccard band of the verification cascade.  Calibrated
#: on the synthetic corpus: candidate pairs below the band are bucket
#: coincidences (shared boilerplate sentences), pairs above it are safe
#: duplicates, and the band itself — disguised near-duplicates vs the
#: hardest negatives — is exactly where a fixed similarity threshold is
#: fragile and the LLM adjudicates.
DEDUP_VERIFY_LOWER = 0.30
DEDUP_VERIFY_UPPER = 0.75


def _pair_sides(pair: Any) -> tuple[Any, Any]:
    if isinstance(pair, dict) and "left" in pair and "right" in pair:
        return pair["left"], pair["right"]
    if isinstance(pair, (tuple, list)) and len(pair) == 2:
        return pair[0], pair[1]
    raise TypeError(f"cannot interpret {pair!r} as a record pair")


def _match_cascade_factory(
    operator: LogicalOperator, context: CompilerContext
) -> Module:
    """``match_entities`` with ``impl="cascade"``: similarity rung + LLM.

    The free rung scores each candidate pair by exact Jaccard over
    knowledge-canonical shingles (the same normalisation the columnar
    similarity stack vectorises) and answers pairs outside its uncertainty
    band without a provider call; only the band escalates to the per-pair
    LLM matcher.  Besides cost, this *narrows the provider's noise
    exposure* to the pairs where its judgement genuinely beats a threshold.
    """
    from repro.core.compiler.registry import make_pair_matcher

    params = operator.params
    shingle_n = int(params.get("shingle_n", DEDUP_SHINGLE_N))

    def rule(pair: Any) -> float:
        left, right = _pair_sides(pair)
        ids_a = shingle_ids(knowledge_canonical(_doc_text(left)), shingle_n)
        ids_b = shingle_ids(knowledge_canonical(_doc_text(right)), shingle_n)
        return exact_jaccard(ids_a, ids_b)

    teacher = make_pair_matcher(
        f"{operator.name}_teacher",
        context,
        task=params.get("task", DEDUP_VERIFY_TASK),
        examples=params.get("examples"),
        instructions=params.get("instructions", ""),
        purpose=params.get("purpose", f"{operator.name}-verify"),
    )
    cascade = CascadeModule(
        name=f"{operator.name}_cascade",
        rule=rule,
        teacher=teacher,
        lower=float(params.get("rule_lower", DEDUP_VERIFY_LOWER)),
        upper=float(params.get("rule_upper", DEDUP_VERIFY_UPPER)),
        rule_tag=f"pair-jaccard-v1:n{shingle_n}",
    )
    return _maybe_map(cascade, operator)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

register_strategy(
    "dedup_candidates", "custom", _dedup_candidates_factory, default=True
)
register_strategy("quality_filter", "llm", _quality_filter_factory, default=True)
register_strategy("decontaminate", "llm", _decontaminate_factory, default=True)
# An additional strategy for the existing match_entities kind: cascade
# verification (similarity rung + LLM for the uncertainty band).
register_strategy("match_entities", "cascade", _match_cascade_factory)
