"""The Lingua Manga compiler: registry, context, plans, EXPLAIN."""

from repro.core.compiler.compiler import (
    CompileError,
    LinguaMangaCompiler,
    compile_pipeline,
)
from repro.core.compiler.context import CompilerContext
from repro.core.compiler.explain import (
    explain_pipeline,
    explain_plan,
    render_architecture,
)
from repro.core.compiler.plan import BoundOperator, PhysicalPlan, RunReport
from repro.core.compiler.rewriter import RewriteReport, rewrite_pipeline
from repro.core.compiler.registry import (
    build_module,
    default_strategy,
    make_name_tagger,
    make_pair_matcher,
    register_strategy,
    render_pair,
    strategies_for,
)

# Registers the curation operator strategies (dedup_candidates,
# quality_filter, decontaminate) as an import side effect.
from repro.core.compiler import curation as _curation  # noqa: E402,F401

__all__ = [
    "CompileError",
    "LinguaMangaCompiler",
    "compile_pipeline",
    "CompilerContext",
    "explain_pipeline",
    "explain_plan",
    "render_architecture",
    "RewriteReport",
    "rewrite_pipeline",
    "BoundOperator",
    "PhysicalPlan",
    "RunReport",
    "build_module",
    "default_strategy",
    "make_name_tagger",
    "make_pair_matcher",
    "register_strategy",
    "render_pair",
    "strategies_for",
]
