"""Bagged random forest over :class:`repro.ml.tree.DecisionTree`.

The Magellan baseline in the paper's Table 1 is a classical feature-based
matcher; a random forest over similarity features is the canonical choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._util import seeded_rng
from repro.ml.tree import DecisionTree

__all__ = ["RandomForest"]


@dataclass
class RandomForest:
    """Random forest: bootstrap-sampled trees with feature subsampling."""

    n_trees: int = 25
    max_depth: int = 8
    min_leaf: int = 2
    max_features: float = 0.6
    seed: int = 0
    _trees: list[DecisionTree] = field(default_factory=list, repr=False)

    def fit(self, X: np.ndarray, y: Sequence[int]) -> "RandomForest":
        """Fit on matrix ``X`` and 0/1 labels ``y``; returns self."""
        X = np.asarray(X, dtype=np.float64)
        y_arr = np.asarray(y, dtype=np.int64)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if X.shape[0] != y_arr.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        rng = seeded_rng(self.seed)
        n = X.shape[0]
        self._trees = []
        for t in range(self.n_trees):
            indices = [rng.randrange(n) for _ in range(n)]
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=self.max_features,
                seed=rng.randrange(1 << 30),
            )
            tree.fit(X[indices], y_arr[indices])
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of the trees' leaf probabilities."""
        if not self._trees:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        return np.mean([tree.predict_proba(X) for tree in self._trees], axis=0)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions by averaged probability."""
        return (self.predict_proba(X) >= threshold).astype(int)
