"""L2-regularised logistic regression (binary and multinomial), pure numpy.

This is the workhorse learner of the reproduction: the Ditto- and IMP-style
baselines and the optimizer's simulator students are all logistic models over
rich text features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

__all__ = ["LogisticRegression", "SoftmaxRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticRegression:
    """Binary logistic regression trained by full-batch gradient descent.

    Parameters mirror the scikit-learn conventions where sensible: ``l2`` is
    the regularisation strength (0 disables), ``lr`` the learning rate, and
    training stops early when the loss improvement falls below ``tol``.
    """

    lr: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    tol: float = 1e-7
    weights: np.ndarray | None = field(default=None, repr=False)
    bias: float = 0.0

    def fit(self, X: np.ndarray, y: Sequence[int]) -> "LogisticRegression":
        """Fit on matrix ``X`` and 0/1 labels ``y``; returns self."""
        X = np.asarray(X, dtype=np.float64)
        y_arr = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y_arr.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        n, d = X.shape
        self.weights = np.zeros(d, dtype=np.float64)
        self.bias = 0.0
        previous_loss = np.inf
        for _ in range(self.epochs):
            probs = _sigmoid(X @ self.weights + self.bias)
            error = probs - y_arr
            grad_w = X.T @ error / n + self.l2 * self.weights
            grad_b = float(np.mean(error))
            self.weights -= self.lr * grad_w
            self.bias -= self.lr * grad_b
            eps = 1e-12
            loss = float(
                -np.mean(y_arr * np.log(probs + eps) + (1 - y_arr) * np.log(1 - probs + eps))
                + 0.5 * self.l2 * float(self.weights @ self.weights)
            )
            if previous_loss - loss < self.tol:
                break
            previous_loss = loss
        return self

    def _check_fitted(self) -> None:
        if self.weights is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row of ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return _sigmoid(X @ self.weights + self.bias)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions at the given probability ``threshold``."""
        return (self.predict_proba(X) >= threshold).astype(int)


@dataclass
class SoftmaxRegression:
    """Multinomial logistic regression over arbitrary hashable labels."""

    lr: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    tol: float = 1e-7
    classes_: list[Hashable] = field(default_factory=list)
    weights: np.ndarray | None = field(default=None, repr=False)
    bias: np.ndarray | None = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: Sequence[Hashable]) -> "SoftmaxRegression":
        """Fit on matrix ``X`` and labels ``y``; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != len(y):
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_ = sorted(set(y), key=repr)
        index = {label: i for i, label in enumerate(self.classes_)}
        n, d = X.shape
        k = len(self.classes_)
        onehot = np.zeros((n, k), dtype=np.float64)
        for row, label in enumerate(y):
            onehot[row, index[label]] = 1.0
        self.weights = np.zeros((d, k), dtype=np.float64)
        self.bias = np.zeros(k, dtype=np.float64)
        previous_loss = np.inf
        for _ in range(self.epochs):
            logits = X @ self.weights + self.bias
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probs = exp / exp.sum(axis=1, keepdims=True)
            error = probs - onehot
            grad_w = X.T @ error / n + self.l2 * self.weights
            grad_b = error.mean(axis=0)
            self.weights -= self.lr * grad_w
            self.bias -= self.lr * grad_b
            loss = float(
                -np.mean(np.log((probs * onehot).sum(axis=1) + 1e-12))
                + 0.5 * self.l2 * float((self.weights**2).sum())
            )
            if previous_loss - loss < self.tol:
                break
            previous_loss = loss
        return self

    def _check_fitted(self) -> None:
        if self.weights is None:
            raise RuntimeError("model is not fitted; call fit() first")

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``(n, k)`` class-probability matrix, columns ordered as ``classes_``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        logits = X @ self.weights + self.bias
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> list[Hashable]:
        """Most probable class per row."""
        probs = self.predict_proba(X)
        return [self.classes_[i] for i in probs.argmax(axis=1)]

    def predict_with_confidence(self, X: np.ndarray) -> list[tuple[Hashable, float]]:
        """``(label, probability)`` per row — the simulator's takeover signal."""
        probs = self.predict_proba(X)
        winners = probs.argmax(axis=1)
        return [(self.classes_[i], float(probs[row, i])) for row, i in enumerate(winners)]
