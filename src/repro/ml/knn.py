"""k-nearest-neighbour classifier over dense feature vectors.

Used as the zero-training-cost student candidate in the simulator's model
selection, and by the IMP-style baseline's fallback path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

__all__ = ["KNNClassifier"]


@dataclass
class KNNClassifier:
    """Cosine-distance kNN with majority vote and confidence."""

    k: int = 5
    _X: np.ndarray | None = field(default=None, repr=False)
    _y: list[Hashable] = field(default_factory=list, repr=False)

    def fit(self, X: np.ndarray, y: Sequence[Hashable]) -> "KNNClassifier":
        """Memorise the training set; returns self."""
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if X.shape[0] != len(y):
            raise ValueError("X and y must have the same number of rows")
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._X = X / norms
        self._y = list(y)
        return self

    def _neighbours(self, x: np.ndarray) -> list[tuple[float, Hashable]]:
        if self._X is None:
            raise RuntimeError("model is not fitted; call fit() first")
        norm = np.linalg.norm(x)
        if norm == 0:
            norm = 1.0
        sims = self._X @ (x / norm)
        k = min(self.k, len(self._y))
        top = np.argpartition(-sims, k - 1)[:k]
        ranked = sorted(((float(sims[i]), self._y[i]) for i in top), reverse=True)
        return ranked

    def predict_one(self, x: np.ndarray) -> Hashable:
        """Majority label among the k nearest training points."""
        label, _ = self.predict_with_confidence(x)
        return label

    def predict_with_confidence(self, x: np.ndarray) -> tuple[Hashable, float]:
        """``(label, vote_fraction)`` for one query vector."""
        neighbours = self._neighbours(np.asarray(x, dtype=np.float64))
        votes: dict[Hashable, float] = {}
        for sim, label in neighbours:
            votes[label] = votes.get(label, 0.0) + max(sim, 0.0) + 1e-9
        best = max(sorted(votes, key=repr), key=lambda label: votes[label])
        total = sum(votes.values())
        return best, votes[best] / total if total else 0.0

    def predict(self, X: np.ndarray) -> list[Hashable]:
        """Majority label for each row of ``X``."""
        X = np.asarray(X, dtype=np.float64)
        return [self.predict_one(row) for row in X]
