"""Feature extraction for the ML substrate.

Two families are provided:

- **hashed text features** (:class:`HashingVectorizer`) used by the
  simulator's student models and by the Ditto/IMP-style baselines, and
- **record-pair similarity features** (:class:`PairFeatureExtractor`) used by
  the Magellan-style baseline (paper Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro._util import stable_hash
from repro.storage.columnar import resolve_columnar
from repro.text.normalize import extract_numbers, normalize_text
from repro.text.similarity import (
    jaccard_similarity,
    jaccard_similarity_many,
    jaro_winkler_similarity,
    jaro_winkler_similarity_many,
    levenshtein_similarity,
    levenshtein_similarity_many,
    monge_elkan_similarity,
    monge_elkan_similarity_many,
    numeric_similarity,
    numeric_similarity_many,
    overlap_coefficient,
    overlap_coefficient_many,
    qgram_similarity,
    qgram_similarity_many,
    word_set_stats,
)
from repro.text.tokenize import char_ngrams, word_tokenize

__all__ = ["HashingVectorizer", "PairFeatureExtractor", "PAIR_FEATURE_NAMES"]


@dataclass
class HashingVectorizer:
    """Hash word and character n-grams into a fixed-width dense vector.

    Hashing avoids a vocabulary-fitting pass, so the vectorizer is stateless
    and usable online — exactly what the optimizer's simulator needs while it
    shadows a live module.
    """

    n_features: int = 2048
    word_ngrams: tuple[int, ...] = (1, 2)
    char_ngram_sizes: tuple[int, ...] = (3,)
    lowercase: bool = True
    binary: bool = False

    def transform_one(self, text: str) -> np.ndarray:
        """Vectorise a single string."""
        if self.lowercase:
            text = text.lower()
        vector = np.zeros(self.n_features, dtype=np.float64)
        if not text.strip():
            return vector
        tokens = word_tokenize(text)
        for n in self.word_ngrams:
            for i in range(len(tokens) - n + 1):
                gram = " ".join(tokens[i : i + n])
                vector[stable_hash("w", n, gram) % self.n_features] += 1.0
        for size in self.char_ngram_sizes:
            for gram in char_ngrams(text, size):
                vector[stable_hash("c", size, gram) % self.n_features] += 1.0
        if self.binary:
            vector = (vector > 0).astype(np.float64)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Vectorise a batch of strings into an ``(n, n_features)`` matrix."""
        if not texts:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.stack([self.transform_one(t) for t in texts])


# Per-attribute similarity feature names in the order they are emitted.
PAIR_FEATURE_NAMES = (
    "jaccard",
    "jaro_winkler",
    "levenshtein",
    "overlap",
    "qgram",
    "monge_elkan",
    "numeric",
    "both_present",
)


@dataclass
class PairFeatureExtractor:
    """Magellan-style similarity feature vector for a pair of records.

    For every attribute in ``attributes`` it computes a menu of string
    similarities, plus a numeric-closeness score and a missing-value
    indicator.  ``metrics`` selects a subset of the menu — the classical
    matcher of the paper's Table 1 uses the word/edit family only, while the
    richer typo-robust metrics (qgram, monge_elkan) model what a pretrained
    LM picks up.
    """

    attributes: Sequence[str]
    normalize: bool = True
    metrics: Sequence[str] = PAIR_FEATURE_NAMES
    columnar: bool | None = None
    _cache: dict[int, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        unknown = set(self.metrics) - set(PAIR_FEATURE_NAMES)
        if unknown:
            raise ValueError(f"unknown pair metrics: {sorted(unknown)}")

    @property
    def n_features(self) -> int:
        """Width of the emitted feature vector."""
        return len(self.attributes) * len(self.metrics)

    def feature_names(self) -> list[str]:
        """Flat feature names, ``<attribute>.<metric>``."""
        return [
            f"{attribute}.{metric}"
            for attribute in self.attributes
            for metric in self.metrics
        ]

    def _clean(self, value: object) -> str:
        text = "" if value is None else str(value)
        if not self.normalize:
            return text
        key = id(value) if isinstance(value, str) else None
        if key is not None and key in self._cache:
            return self._cache[key]
        cleaned = normalize_text(text)
        if key is not None:
            self._cache[key] = cleaned
        return cleaned

    def transform_pair(
        self, left: Mapping[str, object], right: Mapping[str, object]
    ) -> np.ndarray:
        """Feature vector for one record pair."""
        values: list[float] = []
        for attribute in self.attributes:
            a = self._clean(left.get(attribute))
            b = self._clean(right.get(attribute))
            if not a and not b:
                # Both missing: neutral similarity, flagged absent.
                values.extend(
                    0.0 if metric == "both_present" else 0.5
                    for metric in self.metrics
                )
                continue
            numbers_a = extract_numbers(a)
            numbers_b = extract_numbers(b)
            computed = {
                "jaccard": lambda: jaccard_similarity(a, b),
                "jaro_winkler": lambda: jaro_winkler_similarity(a, b),
                "levenshtein": lambda: levenshtein_similarity(a, b),
                "overlap": lambda: overlap_coefficient(a, b),
                "qgram": lambda: qgram_similarity(a, b),
                "monge_elkan": lambda: monge_elkan_similarity(a, b),
                "numeric": lambda: numeric_similarity(
                    numbers_a[0] if numbers_a else None,
                    numbers_b[0] if numbers_b else None,
                ),
                "both_present": lambda: 1.0 if a and b else 0.0,
            }
            values.extend(computed[metric]() for metric in self.metrics)
        return np.asarray(values, dtype=np.float64)

    def transform(
        self, pairs: Sequence[tuple[Mapping[str, object], Mapping[str, object]]]
    ) -> np.ndarray:
        """Feature matrix for a batch of pairs.

        The columnar path (``columnar``, ``None`` following the ambient
        mode) computes every metric over the whole batch at once; it is
        bitwise-identical to stacking :meth:`transform_pair` rows.
        """
        if not pairs:
            return np.zeros((0, self.n_features), dtype=np.float64)
        if resolve_columnar(self.columnar):
            return self._transform_columnar(pairs)
        return np.stack([self.transform_pair(left, right) for left, right in pairs])

    def _transform_columnar(
        self, pairs: Sequence[tuple[Mapping[str, object], Mapping[str, object]]]
    ) -> np.ndarray:
        clean_cache: dict[str, str] = {}

        def clean(value: object) -> str:
            text = "" if value is None else str(value)
            if not self.normalize:
                return text
            cached = clean_cache.get(text)
            if cached is None:
                cached = normalize_text(text)
                clean_cache[text] = cached
            return cached

        number_cache: dict[str, float | None] = {}

        def first_number(text: str) -> float | None:
            if text not in number_cache:
                numbers = extract_numbers(text)
                number_cache[text] = numbers[0] if numbers else None
            return number_cache[text]

        batch = {
            "jaccard": jaccard_similarity_many,
            "jaro_winkler": jaro_winkler_similarity_many,
            "levenshtein": levenshtein_similarity_many,
            "overlap": overlap_coefficient_many,
            "qgram": qgram_similarity_many,
            "monge_elkan": monge_elkan_similarity_many,
        }
        columns: list[np.ndarray] = []
        for attribute in self.attributes:
            a = [clean(left.get(attribute)) for left, _ in pairs]
            b = [clean(right.get(attribute)) for _, right in pairs]
            # Every metric is a pure function of the two cleaned texts, so
            # repeated value combinations — the norm for blocking
            # candidates, where each record appears in several pairs —
            # are scored once and scattered back through ``inverse``.
            pair_ids: dict[tuple[str, str], int] = {}
            inverse = np.empty(len(a), dtype=np.int64)
            uniq_a: list[str] = []
            uniq_b: list[str] = []
            for i, key in enumerate(zip(a, b)):
                idx = pair_ids.get(key)
                if idx is None:
                    idx = len(uniq_a)
                    pair_ids[key] = idx
                    uniq_a.append(key[0])
                    uniq_b.append(key[1])
                inverse[i] = idx
            present_a = np.fromiter((bool(t) for t in a), dtype=bool, count=len(a))
            present_b = np.fromiter((bool(t) for t in b), dtype=bool, count=len(b))
            both_empty = ~present_a & ~present_b
            set_stats: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
            for metric in self.metrics:
                if metric == "both_present":
                    column = np.where(present_a & present_b, 1.0, 0.0)
                    columns.append(np.where(both_empty, 0.0, column))
                    continue
                if metric == "numeric":
                    values = numeric_similarity_many(
                        [first_number(t) for t in uniq_a],
                        [first_number(t) for t in uniq_b],
                    )
                elif metric in ("jaccard", "overlap"):
                    # Jaccard and overlap share one tokenize/intersect pass.
                    if set_stats is None:
                        set_stats = word_set_stats(uniq_a, uniq_b)
                    values = batch[metric](uniq_a, uniq_b, stats=set_stats)
                else:
                    values = batch[metric](uniq_a, uniq_b)
                column = values[inverse]
                # Both missing: neutral similarity, matching transform_pair.
                columns.append(np.where(both_empty, 0.5, column))
        return np.stack(columns, axis=1)
