"""Evaluation metrics for the reproduction's experiments.

Every number reported in the paper's Table 1 is an F1 score and every number
in section 4.3 is an accuracy, so these two (plus their building blocks) are
the core of the benchmark harness.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

__all__ = [
    "accuracy",
    "precision_recall_f1",
    "f1_score",
    "confusion_matrix",
    "ClassificationReport",
    "classification_report",
]


def accuracy(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    """Fraction of exactly-matching predictions."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    if not y_true:
        return 0.0
    return sum(1 for t, p in zip(y_true, y_pred) if t == p) / len(y_true)


def precision_recall_f1(
    y_true: Sequence[int], y_pred: Sequence[int], positive: Hashable = 1
) -> tuple[float, float, float]:
    """Binary precision, recall and F1 with respect to ``positive``.

    Follows the usual convention: an undefined ratio (no predicted or no
    actual positives) is reported as 0.0.
    """
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    tp = sum(1 for t, p in zip(y_true, y_pred) if t == positive and p == positive)
    fp = sum(1 for t, p in zip(y_true, y_pred) if t != positive and p == positive)
    fn = sum(1 for t, p in zip(y_true, y_pred) if t == positive and p != positive)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def f1_score(y_true: Sequence[int], y_pred: Sequence[int], positive: Hashable = 1) -> float:
    """Binary F1 (harmonic mean of precision and recall)."""
    return precision_recall_f1(y_true, y_pred, positive)[2]


def confusion_matrix(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable]
) -> dict[tuple[Hashable, Hashable], int]:
    """Sparse confusion matrix keyed by ``(true_label, predicted_label)``."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must have the same length")
    return dict(Counter(zip(y_true, y_pred)))


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class precision/recall/F1 plus overall accuracy."""

    accuracy: float
    per_class: dict[Hashable, tuple[float, float, float]]
    support: dict[Hashable, int]

    def macro_f1(self) -> float:
        """Unweighted mean F1 over classes."""
        if not self.per_class:
            return 0.0
        return sum(f1 for _, _, f1 in self.per_class.values()) / len(self.per_class)

    def to_text(self) -> str:
        """Human-readable table of the report."""
        lines = [f"accuracy: {self.accuracy:.4f}"]
        for label in sorted(self.per_class, key=repr):
            p, r, f1 = self.per_class[label]
            lines.append(
                f"  {label!r}: precision={p:.4f} recall={r:.4f} "
                f"f1={f1:.4f} support={self.support[label]}"
            )
        return "\n".join(lines)


def classification_report(
    y_true: Sequence[Hashable], y_pred: Sequence[Hashable]
) -> ClassificationReport:
    """Full multi-class report (one-vs-rest precision/recall/F1 per label)."""
    labels = sorted(set(y_true), key=repr)
    per_class = {
        label: precision_recall_f1(y_true, y_pred, positive=label) for label in labels
    }
    support = dict(Counter(y_true))
    return ClassificationReport(accuracy(y_true, y_pred), per_class, support)
