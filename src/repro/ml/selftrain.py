"""Self-training with confidence filters.

Paper section 3.2 argues the simulator's student model can *exceed* its LLM
teacher because self-training with filters generalises better than the noisy
teacher (citing Yarowsky 1995, PET, Toolformer, reader-to-retriever
distillation).  This module implements that mechanism: train on
teacher-labelled data, then iteratively re-label and keep only
high-confidence pseudo-labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.ml.logistic import SoftmaxRegression

__all__ = ["SelfTrainingClassifier"]

ModelFactory = Callable[[], SoftmaxRegression]


@dataclass
class SelfTrainingClassifier:
    """Teacher-student distillation with confidence-filtered self-training.

    ``fit`` takes teacher-labelled seed data plus an unlabelled pool.  Each
    round the current student labels the pool; examples above
    ``confidence_threshold`` are adopted as pseudo-labels for the next round.
    High-confidence pseudo-labels act as a filter on teacher noise, which is
    how the student can outperform the teacher.
    """

    rounds: int = 3
    confidence_threshold: float = 0.85
    model_factory: ModelFactory | None = None
    model: SoftmaxRegression | None = None
    adopted_per_round: list[int] | None = None

    def _new_model(self) -> SoftmaxRegression:
        if self.model_factory is not None:
            return self.model_factory()
        return SoftmaxRegression(epochs=200)

    def fit(
        self,
        X_seed: np.ndarray,
        y_seed: Sequence[Hashable],
        X_pool: np.ndarray | None = None,
    ) -> "SelfTrainingClassifier":
        """Train the student; returns self.

        ``X_seed``/``y_seed`` is teacher-labelled data (possibly noisy).
        ``X_pool`` is optional unlabelled data to self-train on.
        """
        X_seed = np.asarray(X_seed, dtype=np.float64)
        labels = list(y_seed)
        self.adopted_per_round = []
        self.model = self._new_model().fit(X_seed, labels)
        if X_pool is None or len(X_pool) == 0:
            return self
        X_pool = np.asarray(X_pool, dtype=np.float64)
        for _ in range(self.rounds):
            confident = self.model.predict_with_confidence(X_pool)
            adopt_idx = [
                i for i, (_, p) in enumerate(confident) if p >= self.confidence_threshold
            ]
            self.adopted_per_round.append(len(adopt_idx))
            if not adopt_idx:
                break
            X_aug = np.vstack([X_seed, X_pool[adopt_idx]])
            y_aug = labels + [confident[i][0] for i in adopt_idx]
            self.model = self._new_model().fit(X_aug, y_aug)
        return self

    def _check_fitted(self) -> SoftmaxRegression:
        if self.model is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self.model

    def predict(self, X: np.ndarray) -> list[Hashable]:
        """Student predictions per row."""
        return self._check_fitted().predict(np.asarray(X, dtype=np.float64))

    def predict_with_confidence(self, X: np.ndarray) -> list[tuple[Hashable, float]]:
        """``(label, probability)`` per row."""
        return self._check_fitted().predict_with_confidence(
            np.asarray(X, dtype=np.float64)
        )
