"""CART-style decision tree classifier (gini impurity), pure numpy.

Building block for the Magellan-style random forest baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._util import seeded_rng

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: float = 0.5  # P(y=1) at a leaf

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(y: np.ndarray) -> float:
    if y.size == 0:
        return 0.0
    p = float(y.mean())
    return 2.0 * p * (1.0 - p)


@dataclass
class DecisionTree:
    """Binary classification tree with depth / leaf-size / feature-sampling knobs.

    ``max_features`` below 1.0 samples a random feature subset per split,
    which is what makes a bagged ensemble of these trees a random forest.
    """

    max_depth: int = 8
    min_leaf: int = 2
    max_features: float = 1.0
    seed: int = 0
    _root: _Node | None = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: Sequence[int]) -> "DecisionTree":
        """Fit on matrix ``X`` and 0/1 labels ``y``; returns self."""
        X = np.asarray(X, dtype=np.float64)
        y_arr = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if X.shape[0] != y_arr.shape[0]:
            raise ValueError("X and y must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = seeded_rng(self.seed)
        self._root = self._build(X, y_arr, depth=0, rng=rng)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        node = _Node(prediction=float(y.mean()) if y.size else 0.5)
        if (
            depth >= self.max_depth
            or y.size < 2 * self.min_leaf
            or _gini(y) == 0.0
        ):
            return node
        n_features = X.shape[1]
        k = max(1, int(round(self.max_features * n_features)))
        candidates = (
            list(range(n_features))
            if k >= n_features
            else sorted(rng.sample(range(n_features), k))
        )
        best_gain = 0.0
        best: tuple[int, float] | None = None
        parent_impurity = _gini(y)
        for feature in candidates:
            column = X[:, feature]
            # Candidate thresholds: midpoints between distinct sorted values.
            values = np.unique(column)
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            if thresholds.size > 16:
                idx = np.linspace(0, thresholds.size - 1, 16).astype(int)
                thresholds = thresholds[idx]
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = y.size - n_left
                if n_left < self.min_leaf or n_right < self.min_leaf:
                    continue
                gain = parent_impurity - (
                    n_left / y.size * _gini(y[mask])
                    + n_right / y.size * _gini(y[~mask])
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best = (feature, float(threshold))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1) per row."""
        if self._root is None:
            raise RuntimeError("model is not fitted; call fit() first")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.float64)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """0/1 predictions."""
        return (self.predict_proba(X) >= threshold).astype(int)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return walk(self._root)
