"""Multinomial naive Bayes over token counts.

A cheap, robust text classifier used as one of the simulator's candidate
student models and by the language-identification fallback.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.text.tokenize import word_tokenize

__all__ = ["MultinomialNaiveBayes"]


@dataclass
class MultinomialNaiveBayes:
    """Multinomial NB on word tokens with Laplace smoothing."""

    alpha: float = 1.0
    _class_counts: Counter = field(default_factory=Counter, repr=False)
    _token_counts: dict = field(default_factory=lambda: defaultdict(Counter), repr=False)
    _total_tokens: Counter = field(default_factory=Counter, repr=False)
    _vocabulary: set = field(default_factory=set, repr=False)

    def fit(self, texts: Sequence[str], labels: Sequence[Hashable]) -> "MultinomialNaiveBayes":
        """Fit from scratch on ``texts``/``labels``; returns self."""
        if len(texts) != len(labels):
            raise ValueError("texts and labels must have the same length")
        if not texts:
            raise ValueError("cannot fit on an empty dataset")
        self._class_counts = Counter()
        self._token_counts = defaultdict(Counter)
        self._total_tokens = Counter()
        self._vocabulary = set()
        for text, label in zip(texts, labels):
            self.partial_fit(text, label)
        return self

    def partial_fit(self, text: str, label: Hashable) -> None:
        """Online update with one labelled example (simulator shadow mode)."""
        tokens = word_tokenize(text.lower())
        self._class_counts[label] += 1
        self._token_counts[label].update(tokens)
        self._total_tokens[label] += len(tokens)
        self._vocabulary.update(tokens)

    @property
    def classes_(self) -> list[Hashable]:
        """Labels seen so far, sorted for determinism."""
        return sorted(self._class_counts, key=repr)

    def _log_scores(self, text: str) -> dict[Hashable, float]:
        if not self._class_counts:
            raise RuntimeError("model is not fitted; call fit() first")
        tokens = word_tokenize(text.lower())
        total_docs = sum(self._class_counts.values())
        vocab_size = max(len(self._vocabulary), 1)
        scores: dict[Hashable, float] = {}
        for label in self.classes_:
            score = math.log(self._class_counts[label] / total_docs)
            denom = self._total_tokens[label] + self.alpha * vocab_size
            counts = self._token_counts[label]
            for token in tokens:
                score += math.log((counts[token] + self.alpha) / denom)
            scores[label] = score
        return scores

    def predict_one(self, text: str) -> Hashable:
        """Most probable label for ``text``."""
        scores = self._log_scores(text)
        return max(self.classes_, key=lambda label: scores[label])

    def predict(self, texts: Sequence[str]) -> list[Hashable]:
        """Most probable label for each text."""
        return [self.predict_one(t) for t in texts]

    def predict_with_confidence(self, text: str) -> tuple[Hashable, float]:
        """``(label, posterior)`` via softmax of the log scores."""
        scores = self._log_scores(text)
        peak = max(scores.values())
        exp = {label: math.exp(score - peak) for label, score in scores.items()}
        total = sum(exp.values())
        best = max(self.classes_, key=lambda label: exp[label])
        return best, exp[best] / total
