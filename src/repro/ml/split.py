"""Seeded dataset splitting utilities."""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Sequence, TypeVar

from repro._util import seeded_rng

T = TypeVar("T")

__all__ = ["train_test_split", "stratified_split", "kfold_indices"]


def train_test_split(
    items: Sequence[T], test_fraction: float = 0.25, seed: int = 0
) -> tuple[list[T], list[T]]:
    """Shuffle ``items`` deterministically and split off ``test_fraction``."""
    if not 0.0 <= test_fraction <= 1.0:
        raise ValueError("test_fraction must be in [0, 1]")
    order = list(items)
    seeded_rng(seed).shuffle(order)
    cut = int(round(len(order) * (1.0 - test_fraction)))
    return order[:cut], order[cut:]


def stratified_split(
    items: Sequence[T],
    labels: Sequence[Hashable],
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[list[T], list[T], list[Hashable], list[Hashable]]:
    """Split preserving the label distribution in both halves."""
    if len(items) != len(labels):
        raise ValueError("items and labels must have the same length")
    by_label: dict[Hashable, list[int]] = defaultdict(list)
    for index, label in enumerate(labels):
        by_label[label].append(index)
    rng = seeded_rng(seed)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for label in sorted(by_label, key=repr):
        indices = by_label[label]
        rng.shuffle(indices)
        cut = int(round(len(indices) * (1.0 - test_fraction)))
        train_idx.extend(indices[:cut])
        test_idx.extend(indices[cut:])
    rng.shuffle(train_idx)
    rng.shuffle(test_idx)
    return (
        [items[i] for i in train_idx],
        [items[i] for i in test_idx],
        [labels[i] for i in train_idx],
        [labels[i] for i in test_idx],
    )


def kfold_indices(n: int, k: int, seed: int = 0) -> list[tuple[list[int], list[int]]]:
    """Return ``k`` deterministic ``(train_indices, test_indices)`` folds."""
    if k < 2:
        raise ValueError("k must be at least 2")
    if n < k:
        raise ValueError("need at least k items")
    order = list(range(n))
    seeded_rng(seed).shuffle(order)
    folds = [order[i::k] for i in range(k)]
    out = []
    for i in range(k):
        test = sorted(folds[i])
        train = sorted(x for j, fold in enumerate(folds) if j != i for x in fold)
        out.append((train, test))
    return out
