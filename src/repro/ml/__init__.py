"""Minimal supervised-learning substrate (pure numpy).

Provides the learners, features and metrics the Lingua Manga optimizer's
simulator and the paper's baselines (Magellan, Ditto, IMP) are built on.
"""

from repro.ml.features import PAIR_FEATURE_NAMES, HashingVectorizer, PairFeatureExtractor
from repro.ml.forest import RandomForest
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
)
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.ml.selftrain import SelfTrainingClassifier
from repro.ml.split import kfold_indices, stratified_split, train_test_split
from repro.ml.tree import DecisionTree

__all__ = [
    "PAIR_FEATURE_NAMES",
    "HashingVectorizer",
    "PairFeatureExtractor",
    "RandomForest",
    "KNNClassifier",
    "LogisticRegression",
    "SoftmaxRegression",
    "ClassificationReport",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
    "MultinomialNaiveBayes",
    "SelfTrainingClassifier",
    "kfold_indices",
    "stratified_split",
    "train_test_split",
    "DecisionTree",
]
