"""Lingua Manga reproduction: a generic LLM-centric system for data curation.

An offline, from-scratch reproduction of "Lingua Manga: A Generic Large
Language Model Centric System for Data Curation" (Chen, Cao, Madden; VLDB
2023 demo).  The public entry point is :class:`repro.LinguaManga`; see
README.md for the architecture tour and DESIGN.md for the reproduction
inventory.
"""

from repro.core.runtime import LinguaManga

__version__ = "1.0.0"

__all__ = ["LinguaManga", "__version__"]
