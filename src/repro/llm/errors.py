"""Error hierarchy for the LLM service layer."""

from __future__ import annotations

__all__ = [
    "LLMError",
    "ProviderError",
    "RateLimitError",
    "CircuitOpenError",
    "BudgetExceededError",
    "MalformedResponseError",
]


class LLMError(Exception):
    """Base class for all LLM-layer errors."""


class ProviderError(LLMError):
    """The provider failed to serve the request (transient outage)."""


class RateLimitError(ProviderError):
    """The provider rejected the request for exceeding its rate limit."""

    def __init__(self, message: str = "rate limit exceeded", retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ProviderError):
    """The service refused the call because the circuit breaker is open.

    Subclasses :class:`ProviderError` so record-level isolation (quarantine)
    treats a fast-failed call exactly like a slow provider failure.
    """


class BudgetExceededError(LLMError):
    """The service refused the call because the cost budget is exhausted.

    Budget enforcement is a Lingua Manga system property ("minimizes the
    frequency of calling the LLM service"), so exceeding it is an error the
    pipeline surfaces rather than silently absorbing.
    """


class MalformedResponseError(LLMError):
    """The LLM's textual response failed the module's output validation."""
