"""The simulated LLM's world knowledge.

The knowledge base is a deliberately *partial and noisy* view of the ground
truth in :mod:`repro.datasets.catalog`.  Gaps and errors are deterministic
functions of the queried item (via :func:`repro._util.stable_unit`), so every
experiment is reproducible while the LLM still behaves like a fallible oracle
— exactly the regime the paper's optimizer (validator / simulator /
connector) is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import stable_choice, stable_unit
from repro.datasets import catalog
from repro.text.language import detect_language
from repro.text.normalize import strip_accents

__all__ = ["KnowledgeBase"]

def _fold(name: str) -> str:
    return strip_accents(name).lower()


_ALL_FIRST = {_fold(name) for names in catalog.FIRST_NAMES.values() for name in names}
_ALL_LAST = {_fold(name) for names in catalog.LAST_NAMES.values() for name in names}
_EN_FIRST = {_fold(name) for name in catalog.FIRST_NAMES["en"]}
_EN_LAST = {_fold(name) for name in catalog.LAST_NAMES["en"]}
_NON_NAMES = {
    _fold(token) for noun in catalog.NON_NAME_PROPER_NOUNS for token in noun.split()
}
_PARTICLES = {"de", "del", "della", "di", "da", "van", "von", "der", "den",
              "la", "le", "bin", "al"}
_BRAND_NAMES = [brand.name for brand in catalog.BRANDS]


@dataclass
class KnowledgeBase:
    """Calibrated, partial world knowledge for the simulated LLM.

    Parameters
    ----------
    brand_gap:
        Fraction of products whose manufacturer the model does not know.
    brand_confusion:
        Of the known products, fraction answered with a *wrong* brand
        (hallucination) rather than "unknown".
    name_noise_native:
        Error rate when judging person names in a language the model was
        told about (or English).
    name_noise_foreign:
        Error rate when judging non-English names *without* a language hint
        — the multilingual degradation of paper section 4.2.
    match_noise:
        Base error rate for borderline entity-match judgements.
    curation_noise:
        Base error rate for borderline corpus-curation judgements (document
        quality, contamination adjudication).
    seed_tag:
        Folded into every stochastic decision so distinct experiment
        configurations can decorrelate their noise.
    """

    brand_gap: float = 0.045
    brand_confusion: float = 0.015
    name_noise_native: float = 0.04
    name_noise_foreign: float = 0.35
    match_noise: float = 0.04
    curation_noise: float = 0.05
    seed_tag: str = "kb-v1"
    _memo: dict = field(default_factory=dict, repr=False)

    # -- product manufacturers ------------------------------------------------

    def manufacturer_for(self, product_text: str) -> tuple[str | None, float]:
        """``(brand, confidence)`` for a product description.

        Returns ``(None, 0.0)`` when the model has no idea.  A small
        calibrated fraction of answers is a confidently wrong brand
        (hallucination), which the paper's validators exist to catch.
        """
        truth, line = catalog.brand_and_line_of_product(product_text)
        if truth is None:
            return None, 0.0
        # Knowledge gaps are keyed on the matched *product line*: either the
        # model knows who makes a line or it does not, regardless of how the
        # particular product is phrased.
        roll_key = line if line is not None else product_text.lower()
        roll = stable_unit(self.seed_tag, "brand", truth, roll_key)
        if roll < self.brand_gap:
            return None, 0.0
        if roll < self.brand_gap + self.brand_confusion:
            wrong = stable_choice(
                [b for b in _BRAND_NAMES if b != truth],
                self.seed_tag,
                "brand-wrong",
                roll_key,
            )
            return wrong, 0.62
        confidence = 0.8 + 0.19 * stable_unit(self.seed_tag, "brand-conf", product_text)
        return truth, confidence

    # -- person names ----------------------------------------------------------

    def is_person_name(
        self, phrase: str, language_hint: str | None = None
    ) -> tuple[bool, float]:
        """Judge whether ``phrase`` is a person name; ``(verdict, confidence)``.

        Without ``language_hint`` the model behaves like a monolingual
        English tagger: it is accurate on English names but noisy on other
        languages — the exact failure mode of paper section 4.2.  With the
        hint, it consults its full multilingual gazetteer.
        """
        tokens = [_fold(t) for t in phrase.replace(".", " ").split()]
        if not tokens:
            return False, 0.9
        content = [t for t in tokens if t not in _PARTICLES]
        if any(token in _NON_NAMES for token in content):
            truth = False
        else:
            known_first = _ALL_FIRST if language_hint else _EN_FIRST
            known_last = _ALL_LAST if language_hint else _EN_LAST
            hits = sum(
                1 for token in content if token in known_first or token in known_last
            )
            truth = bool(content) and hits >= max(1, (len(content) + 1) // 2)
        # Decide whether this particular judgement is corrupted by noise.
        language = language_hint or detect_language(phrase).language
        noise = (
            self.name_noise_native
            if (language_hint or language == "en")
            else self.name_noise_foreign
        )
        if stable_unit(self.seed_tag, "name", phrase, bool(language_hint)) < noise:
            truth = not truth
            confidence = 0.55
        else:
            confidence = 0.85 + 0.14 * stable_unit(self.seed_tag, "name-conf", phrase)
        return truth, confidence

    # -- entity matching --------------------------------------------------------

    def match_flip(self, pair_key: str, margin: float, extra_noise: float = 0.0) -> bool:
        """Whether the model flips its verdict on this record pair.

        ``margin`` is how far the pair sits from the decision boundary in
        ``[0, 1]`` — borderline pairs (small margin) are most error-prone.
        ``extra_noise`` models poor prompt engineering (the FMs baseline).
        """
        hardness = max(0.0, 1.0 - margin * 4.0)
        p_flip = min(0.95, self.match_noise * (0.4 + hardness) + extra_noise * hardness)
        return stable_unit(self.seed_tag, "match", pair_key) < p_flip

    # -- corpus curation --------------------------------------------------------

    def judgement_flip(
        self, kind: str, key: str, margin: float, extra_noise: float = 0.0
    ) -> bool:
        """Whether the model flips a generic borderline yes/no judgement.

        Same error model as :meth:`match_flip` but keyed by judgement
        ``kind`` (``"quality"``, ``"contamination"``, ...) so the curation
        skills decorrelate from entity matching and from each other.
        """
        hardness = max(0.0, 1.0 - margin * 4.0)
        p_flip = min(
            0.95, self.curation_noise * (0.4 + hardness) + extra_noise * hardness
        )
        return stable_unit(self.seed_tag, "judgement", kind, key) < p_flip
