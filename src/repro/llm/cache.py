"""Multi-tier prompt cache: versioned exact match, disk journal, near-dup lookup.

The paper's "Highly Performant" property is economic — avoid paying for an
LLM call whenever a cheaper path can produce the same answer.  This module
is the call-avoidance substrate the :class:`~repro.llm.service.LLMService`
sits on:

- **Tier 1 — exact match** (:class:`PromptCache`): responses keyed on a
  *versioned* :class:`CacheKey` (provider identity, skill/prompt-template
  version, prompt text, ``max_tokens``), so two skills or providers sharing
  a prompt string can never collide.  Entries live in an LRU with a
  ``max_entries`` cap; evictions are counted.
- **Tier 1 persistence** (:class:`CacheJournal`): an append-only JSONL
  journal makes repeated runs of the demo apps warm-start.  Loading
  tolerates a truncated or corrupt tail (a crash mid-append loses at most
  the damaged lines), and the journal is compacted — rewritten from live
  entries — once its dead weight grows past a factor of the live set.
- **Tier 2 — near-duplicate lookup** (:class:`NearDuplicateIndex`): prompts
  are canonicalised via :func:`repro.text.normalize.normalize_text` and
  matched against a **sealed snapshot** of previously journaled answers by
  TF-IDF cosine similarity (with a banded-Levenshtein fast path for
  near-identical strings).  Only the snapshot sealed at load time is
  consulted, never entries added mid-run — that is what keeps near-hits
  byte-identical at any worker count: the candidate set cannot depend on
  thread interleaving.

Provenance strings (``provider`` / ``cache-exact`` / ``cache-near`` /
``distilled``) tag every ledger record with which tier answered it.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from collections import Counter, OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from repro.llm.providers import LLMResponse
from repro.text.normalize import normalize_text
from repro.text.similarity import levenshtein_distance

__all__ = [
    "PROVENANCE_PROVIDER",
    "PROVENANCE_CACHE_EXACT",
    "PROVENANCE_CACHE_NEAR",
    "PROVENANCE_DISTILLED",
    "CacheKey",
    "key_digest",
    "CacheStats",
    "CacheJournal",
    "NearDuplicateIndex",
    "PromptCache",
]

# Ledger provenance values: which call-avoidance tier produced an answer.
PROVENANCE_PROVIDER = "provider"
PROVENANCE_CACHE_EXACT = "cache-exact"
PROVENANCE_CACHE_NEAR = "cache-near"
PROVENANCE_DISTILLED = "distilled"


@dataclass(frozen=True)
class CacheKey:
    """A versioned cache key.

    ``provider`` is the provider's cache identity (its model name),
    ``version`` the caller's skill/prompt-template version tag.  Both are
    part of the key so a provider swap or a prompt-template revision can
    never serve stale answers, and two skills sharing a prompt string
    cannot collide.

    ``namespace`` is the **tenant isolation boundary** the serving layer
    (:mod:`repro.serve`) rides on: every key a tenant's jobs create carries
    that tenant's namespace, so two tenants asking the byte-identical
    prompt can never serve each other's cached answers — isolation is a
    property of the key, not of cache-object plumbing.  The default ``""``
    (single-tenant library use) leaves digests and journal bytes exactly
    as they were before namespaces existed.
    """

    provider: str
    version: str
    prompt: str
    max_tokens: int
    namespace: str = ""


def key_digest(key: CacheKey) -> str:
    """Short stable digest of a cache key (checkpoint cache fingerprints).

    The checkpoint header records the digests of the cache state at run
    start instead of the entries themselves, so resume can reconcile a
    journal polluted by the crashed run's own appends without shipping
    prompt text around.  Namespaced keys append the namespace to the
    digested payload; the un-namespaced payload shape is unchanged, so
    every digest recorded before namespaces existed still verifies.
    """
    parts: list = [key.provider, key.version, key.prompt, key.max_tokens]
    if key.namespace:
        parts.append(key.namespace)
    payload = json.dumps(parts, ensure_ascii=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    exact_hits: int = 0
    near_hits: int = 0
    misses: int = 0
    evictions: int = 0
    loaded: int = 0  # entries restored from the disk journal

    def snapshot(self) -> "CacheStats":
        """A copy safe to hand out while counters keep moving."""
        return CacheStats(**asdict(self))

    def to_text(self) -> str:
        """One-line rendering."""
        return (
            f"exact_hits={self.exact_hits} near_hits={self.near_hits} "
            f"misses={self.misses} evictions={self.evictions} loaded={self.loaded}"
        )


def _encode_entry(key: CacheKey, response: LLMResponse) -> str:
    payload: dict = {
        "provider": key.provider,
        "version": key.version,
        "prompt": key.prompt,
        "max_tokens": key.max_tokens,
    }
    if key.namespace:
        # Written only when set so un-namespaced journals keep their
        # pre-namespace byte format (and digests) exactly.
        payload["namespace"] = key.namespace
    return json.dumps(
        {
            **payload,
            "response": {
                "text": response.text,
                "prompt_tokens": response.prompt_tokens,
                "completion_tokens": response.completion_tokens,
                "model": response.model,
                "skill": response.skill,
                "latency_seconds": response.latency_seconds,
            },
        },
        ensure_ascii=False,
        sort_keys=True,
    )


def _decode_entry(line: str) -> tuple[CacheKey, LLMResponse]:
    payload = json.loads(line)
    key = CacheKey(
        provider=str(payload["provider"]),
        version=str(payload["version"]),
        prompt=str(payload["prompt"]),
        max_tokens=int(payload["max_tokens"]),
        namespace=str(payload.get("namespace", "")),
    )
    raw = payload["response"]
    response = LLMResponse(
        text=str(raw["text"]),
        prompt_tokens=int(raw["prompt_tokens"]),
        completion_tokens=int(raw["completion_tokens"]),
        model=str(raw.get("model", "")),
        skill=str(raw.get("skill", "")),
        latency_seconds=float(raw.get("latency_seconds", 0.0)),
    )
    return key, response


class CacheJournal:
    """Append-only JSONL persistence for the exact-match tier.

    Every ``put`` appends one line; a rerun replays the journal to
    warm-start.  The format is crash tolerant: :meth:`load` skips lines
    that fail to parse (a truncated final line after a crash, editor
    damage, garbage) and counts them in ``corrupt_lines`` instead of
    failing the load.  :meth:`compact` rewrites the file from the live
    entries, dropping superseded duplicates and evicted entries.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.corrupt_lines = 0
        self.lines_appended = 0
        #: optional callable invoked at named internal boundaries
        #: (``compaction:tmp-written``); the crash-injection harness arms a
        #: :class:`repro.llm.faults.CrashPoint` here to simulate process
        #: death in the middle of a compaction.
        self.crash_hook = None

    @property
    def _compact_tmp(self) -> Path:
        return self.path.with_suffix(self.path.suffix + ".compact")

    def recover(self) -> str | None:
        """Repair the on-disk state after a crash mid-compaction.

        A compaction writes the live entries to a ``.compact`` sibling and
        then atomically renames it over the journal.  Process death between
        the two steps leaves *both* files on disk.  Recovery is
        conservative: when the main journal still exists it is authoritative
        (it is a superset of the tmp's live entries, so replaying it loses
        nothing) and the orphaned tmp is deleted; when only the tmp exists
        the rename is completed.  Returns the action taken, if any.
        """
        tmp = self._compact_tmp
        if not tmp.exists():
            return None
        if self.path.exists():
            tmp.unlink()
            return "dropped-orphan-tmp"
        tmp.replace(self.path)
        return "promoted-tmp"

    def load(self) -> list[tuple[CacheKey, LLMResponse]]:
        """Replay the journal; later lines for the same key win.

        Runs :meth:`recover` first, so a journal left mid-compaction by a
        crash loads cleanly instead of silently shadowing the tmp file.
        """
        self.corrupt_lines = 0
        self.recover()
        if not self.path.exists():
            return []
        entries: "OrderedDict[CacheKey, LLMResponse]" = OrderedDict()
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    key, response = _decode_entry(line)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    self.corrupt_lines += 1
                    continue
                entries.pop(key, None)  # re-puts refresh recency order
                entries[key] = response
        return list(entries.items())

    def append(self, key: CacheKey, response: LLMResponse) -> None:
        """Durably record one entry (one line, flushed)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(_encode_entry(key, response) + "\n")
        self.lines_appended += 1

    def compact(self, entries: Iterable[tuple[CacheKey, LLMResponse]]) -> int:
        """Rewrite the journal from ``entries``; returns lines written."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._compact_tmp
        count = 0
        with tmp.open("w", encoding="utf-8") as handle:
            for key, response in entries:
                handle.write(_encode_entry(key, response) + "\n")
                count += 1
            handle.flush()
        if self.crash_hook is not None:
            self.crash_hook("compaction:tmp-written")
        tmp.replace(self.path)
        self.lines_appended = 0
        return count


class NearDuplicateIndex:
    """TF-IDF near-duplicate lookup over a sealed set of cached prompts.

    Prompts are canonicalised with :func:`normalize_text`; lookups return
    the best-scoring donor whose canonical form clears ``threshold`` cosine
    similarity under TF-IDF weights fit on the sealed corpus.  Two fast
    paths keep the hot lookup cheap: a canonical-equality dict (score 1.0
    without any vector math) and a banded Levenshtein check (O(n·d)) that
    accepts near-identical strings before cosine is computed.

    The index is **immutable after build**: determinism of parallel runs
    requires the candidate set to be a pure function of the warm snapshot,
    not of mid-run insertion order.
    """

    def __init__(self, threshold: float = 0.92):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self._entries: list[tuple[CacheKey, LLMResponse, str, Counter, float]] = []
        self._by_canonical: dict[tuple[str, str, int, str], int] = {}
        self._token_index: dict[str, list[int]] = {}
        self._idf: dict[str, float] = {}
        self._default_idf = 1.0

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[CacheKey]:
        """The cache keys of the sealed snapshot, in insertion order."""
        return [key for key, _, _, _, _ in self._entries]

    @staticmethod
    def _scope(key: CacheKey) -> tuple[str, str, int, str]:
        # Near-hits must never cross provider, version, max_tokens or
        # tenant-namespace boundaries — only the prompt text is allowed
        # to be fuzzy.
        return (key.provider, key.version, key.max_tokens, key.namespace)

    def build(self, items: Iterable[tuple[CacheKey, LLMResponse]]) -> None:
        """(Re)build the sealed index from ``items``."""
        self._entries = []
        self._by_canonical = {}
        self._token_index = {}
        document_frequency: Counter = Counter()
        for key, response in items:
            canonical = normalize_text(key.prompt)
            tf = Counter(canonical.split())
            entry_id = len(self._entries)
            self._entries.append((key, response, canonical, tf, 0.0))
            self._by_canonical.setdefault(
                self._scope(key) + (canonical,), entry_id
            )
            document_frequency.update(set(tf))
        n_docs = len(self._entries)
        self._idf = {
            token: math.log((1 + n_docs) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        self._default_idf = math.log(1 + n_docs) + 1.0
        for entry_id, (key, response, canonical, tf, _) in enumerate(self._entries):
            norm = math.sqrt(
                sum((count * self._idf[token]) ** 2 for token, count in tf.items())
            )
            self._entries[entry_id] = (key, response, canonical, tf, norm)
            for token in tf:
                self._token_index.setdefault(token, []).append(entry_id)

    def lookup(self, key: CacheKey) -> tuple[LLMResponse, float] | None:
        """Best sealed donor for ``key`` above the threshold, if any.

        Deterministic: ties break on insertion order.  Returns the donor
        response and its similarity score.
        """
        if not self._entries:
            return None
        canonical = normalize_text(key.prompt)
        exact_id = self._by_canonical.get(self._scope(key) + (canonical,))
        if exact_id is not None:
            return self._entries[exact_id][1], 1.0
        tf = Counter(canonical.split())
        if not tf:
            return None
        weights = {
            token: count * self._idf.get(token, self._default_idf)
            for token, count in tf.items()
        }
        norm = math.sqrt(sum(value * value for value in weights.values()))
        if norm == 0.0:
            return None
        candidate_ids: set[int] = set()
        for token in tf:
            candidate_ids.update(self._token_index.get(token, ()))
        scope = self._scope(key)
        # Banded-Levenshtein fast path: accept a near-identical canonical
        # form (within ~2% edits) before paying for cosine on every
        # candidate.  The band makes this O(len · d), not O(len²).
        edit_budget = max(2, len(canonical) // 50)
        best_id = -1
        best_score = 0.0
        for entry_id in sorted(candidate_ids):
            donor_key, _, donor_canonical, donor_tf, donor_norm = self._entries[
                entry_id
            ]
            if self._scope(donor_key) != scope:
                continue
            if (
                abs(len(donor_canonical) - len(canonical)) <= edit_budget
                and levenshtein_distance(
                    canonical, donor_canonical, max_distance=edit_budget
                )
                <= edit_budget
            ):
                return self._entries[entry_id][1], 1.0
            if donor_norm == 0.0:
                continue
            dot = sum(
                weights[token] * donor_tf[token] * self._idf[token]
                for token in weights.keys() & donor_tf.keys()
            )
            score = dot / (norm * donor_norm)
            if score > best_score:
                best_id, best_score = entry_id, score
        if best_id >= 0 and best_score >= self.threshold:
            return self._entries[best_id][1], min(1.0, best_score)
        return None


@dataclass
class PromptCache:
    """The layered prompt cache the :class:`LLMService` consults.

    Parameters
    ----------
    path:
        Optional JSONL journal location.  When given, previous runs'
        answers are loaded at construction (warm start) and every new
        answer is appended.
    max_entries:
        LRU capacity of the exact tier; the least recently used entry is
        evicted past it (and counted in ``stats.evictions``).
    near_threshold:
        TF-IDF cosine bar for tier-2 near-duplicate hits.
    near_enabled:
        Gate for tier 2 (the sealed snapshot is only consulted when true).
    """

    path: str | Path | None = None
    max_entries: int = 10_000
    near_threshold: float = 0.92
    near_enabled: bool = True
    compact_factor: int = 4

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, LLMResponse]" = OrderedDict()
        self.stats = CacheStats()
        # Optional repro.obs.metrics.MetricsRegistry, attached by
        # LLMService.attach_obs(); mirrored alongside `stats` when set.
        self.metrics = None
        self.journal = CacheJournal(self.path) if self.path is not None else None
        self._near = NearDuplicateIndex(self.near_threshold)
        if self.journal is not None:
            for key, response in self.journal.load():
                self._entries[key] = response
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            self.stats.loaded = len(self._entries)
        self.seal()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- tier 1: exact ---------------------------------------------------------

    def get(self, key: CacheKey) -> LLMResponse | None:
        """Exact-tier lookup; a hit refreshes LRU recency."""
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                self.stats.misses += 1
                if self.metrics is not None:
                    self.metrics.counter("cache.misses").inc()
                return None
            self._entries.move_to_end(key)
            self.stats.exact_hits += 1
            if self.metrics is not None:
                self.metrics.counter("cache.exact_hits").inc()
            return response

    def peek(self, key: CacheKey) -> bool:
        """Whether the exact tier holds ``key`` (no stats, no LRU touch)."""
        with self._lock:
            return key in self._entries

    def exact_digests(self) -> set[str]:
        """Digests of every exact-tier key (no stats, no LRU touch).

        The autotune PlanTuner compares these against the key digests a
        prior run's ledger recorded to *prove* a rerun fully warm before it
        touches knobs that are only output-neutral on warm runs.
        """
        with self._lock:
            return {key_digest(key) for key in self._entries}

    def put(self, key: CacheKey, response: LLMResponse) -> None:
        """Insert/refresh an entry, evicting LRU past ``max_entries``."""
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = response
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self.metrics is not None:
                    self.metrics.counter("cache.evictions").inc()
            if self.metrics is not None:
                self.metrics.gauge("cache.entries").set(len(self._entries))
            if self.journal is not None:
                self.journal.append(key, response)
                if self.journal.lines_appended > max(
                    128, self.compact_factor * len(self._entries)
                ):
                    self.journal.compact(self._entries.items())

    def remove(self, key: CacheKey) -> bool:
        """Drop one exact-tier entry (in-memory only); True if it existed.

        This is the scope-rollback hook: when a streaming shard attempt is
        abandoned (worker killed, lease lost mid-flight), the entries that
        attempt inserted must not survive it, or the retry would find its
        own half-done answers already cached and report a cheaper run than
        an undisturbed execution.  The journal is deliberately left alone —
        a durable resume reconciles it against the run header's
        :meth:`state_digests` snapshot plus the replayed shard records, and
        a warm *later* run may legitimately reuse the answer (the provider
        is deterministic about it).
        """
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            if existed and self.metrics is not None:
                self.metrics.gauge("cache.entries").set(len(self._entries))
        return existed

    # -- tier 2: near duplicates --------------------------------------------------

    def get_near(self, key: CacheKey) -> tuple[LLMResponse, float] | None:
        """Near-duplicate lookup against the sealed snapshot."""
        if not self.near_enabled:
            return None
        with self._lock:
            found = self._near.lookup(key)
            if found is not None:
                self.stats.near_hits += 1
                if self.metrics is not None:
                    self.metrics.counter("cache.near_hits").inc()
            return found

    def has_any(self, key: CacheKey) -> bool:
        """Whether either tier can answer ``key`` (no stats counted).

        Used by the batched prefetch path to keep already-answerable
        prompts out of provider batches.
        """
        with self._lock:
            if key in self._entries:
                return True
            return self.near_enabled and self._near.lookup(key) is not None

    def seal(self) -> int:
        """Snapshot the current exact entries as the tier-2 candidate set.

        Called automatically after a journal load; callers that populate
        the cache programmatically invoke it to enable near lookups over
        what they inserted.  Returns the number of sealed entries.
        """
        with self._lock:
            self._near.build(self._entries.items())
            return len(self._near)

    # -- checkpoint support -----------------------------------------------------

    def state_digests(self) -> tuple[list[str], list[str]]:
        """``(exact, sealed)`` digest lists describing the current state.

        ``exact`` fingerprints the live exact-tier entries, ``sealed`` the
        tier-2 snapshot.  Recorded in a run checkpoint's header so resume
        can rebuild exactly this state via :meth:`restore_state`.
        """
        with self._lock:
            exact = sorted(key_digest(key) for key in self._entries)
            sealed = sorted(key_digest(key) for key in self._near.keys())
        return exact, sealed

    def restore_state(self, exact: Iterable[str], sealed: Iterable[str]) -> int:
        """Reconcile the cache back to a recorded :meth:`state_digests`.

        A crashed checkpointed run keeps appending to the cache journal
        right up to the kill, so a resume loads *more* entries than the
        original run had at its start — and serving those early would make
        the resumed report cheaper than the uninterrupted one instead of
        byte-identical.  This drops exact entries outside the recorded
        ``exact`` set and re-seals the near-duplicate snapshot from the
        subset recorded in ``sealed``.  Returns the number of entries
        dropped.  The journal file is left untouched (dropped entries stay
        replayable for later runs); only the in-memory state rewinds.
        """
        exact_set, sealed_set = set(exact), set(sealed)
        with self._lock:
            dropped = 0
            for key in list(self._entries):
                if key_digest(key) not in exact_set:
                    del self._entries[key]
                    dropped += 1
            self._near.build(
                [
                    (key, response)
                    for key, response in self._entries.items()
                    if key_digest(key) in sealed_set
                ]
            )
            if self.metrics is not None:
                self.metrics.gauge("cache.entries").set(len(self._entries))
        return dropped

    # -- maintenance ----------------------------------------------------------------

    def clear(self) -> None:
        """Drop all entries, the sealed snapshot and the journal contents."""
        with self._lock:
            self._entries.clear()
            self._near.build(())
            if self.journal is not None:
                self.journal.compact(())

    def compact(self) -> int:
        """Force a journal compaction; returns live lines written (0 if no journal)."""
        with self._lock:
            if self.journal is None:
                return 0
            return self.journal.compact(self._entries.items())

    def entries(self) -> list[tuple[CacheKey, LLMResponse]]:
        """A stable copy of the live entries (LRU order, oldest first)."""
        with self._lock:
            return list(self._entries.items())
