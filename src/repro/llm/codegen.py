"""LLM code generation (LLMGC) engine.

Real code-generating LLMs produce a first draft, and improve it when shown
failing test cases and a critique — the loop Lingua Manga's validator drives
(paper section 3.2).  This engine reproduces that behaviour deterministically:
for each code-generation *task* it holds an ordered list of source-code
candidates of increasing quality.  A fresh generation request returns
revision 0; each repair request (which embeds the previous revision number)
returns the next revision.  Early revisions contain the classic bugs an LLM
would make (naive tokenisation, missing fields, unhandled particles), so the
validator genuinely has something to fix.

Generated functions follow one calling convention::

    def run(value, tools):
        ...

``tools`` is a dict of capabilities the *user* granted the module (paper:
"providing external tool APIs ... to optimize the code generation process").
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "CodeCandidate",
    "route_task",
    "candidate_for",
    "max_revision",
    "suggestion_for",
    "KNOWN_TASKS",
]


@dataclass(frozen=True)
class CodeCandidate:
    """One generated implementation of a task."""

    task: str
    revision: int
    source: str
    notes: str


_TOKENIZE_V0 = '''
def run(value, tools):
    """Split a text into tokens."""
    return value.split()
'''

_TOKENIZE_V1 = '''
def run(value, tools):
    """Split a text into word, number and punctuation tokens."""
    import re
    pattern = re.compile(
        r"[^\\W\\d_]+(?:['\\u2019-][^\\W\\d_]+)*"
        r"|\\d+(?:[.,:]\\d+)*"
        r"|\\S"
    )
    return pattern.findall(value)
'''

_NOUN_PHRASES_V0 = '''
def run(value, tools):
    """Extract candidate noun phrases: runs of capitalised words."""
    phrases, current = [], []
    for word in value.split():
        token = word.strip(".,!?;:()\\"'")
        if token[:1].isupper():
            current.append(token)
        else:
            if current:
                phrases.append(" ".join(current))
            current = []
    if current:
        phrases.append(" ".join(current))
    return phrases
'''

_NOUN_PHRASES_V1 = '''
def run(value, tools):
    """Extract noun phrases, skipping sentence-initial function words."""
    function_words = {
        "the", "a", "an", "in", "on", "at", "of", "and", "he", "she", "it",
        "they", "yesterday", "today", "after", "ayer", "hoy", "el", "la",
        "gestern", "heute", "hier", "le", "les", "der", "die", "das",
    }
    phrases, current = [], []
    at_sentence_start = True
    for word in value.split():
        token = word.strip(".,!?;:()\\"'")
        if token[:1].isupper():
            if at_sentence_start and token.lower() in function_words and not current:
                pass
            else:
                current.append(token)
        else:
            if current:
                phrases.append(" ".join(current))
            current = []
        at_sentence_start = word.endswith((".", "!", "?"))
    if current:
        phrases.append(" ".join(current))
    return phrases
'''

_NOUN_PHRASES_V2 = '''
def run(value, tools):
    """Extract noun phrases with particle and honorific handling.

    Uses the noun-phrase chunking tool granted to this module, which bridges
    lowercase name particles ("de", "van") and strips honorifics.
    """
    chunker = tools["noun_phrases"]
    return [span.text for span in chunker(value)]
'''

_IMPUTE_V0 = '''
def run(value, tools):
    """Impute a product's manufacturer from its name."""
    name = (value.get("name") or "")
    for brand in tools["brand_names"]:
        if brand.lower() in name.lower():
            return brand
    return None
'''

_IMPUTE_V1 = '''
def run(value, tools):
    """Impute a product's manufacturer from its name and description."""
    text = ((value.get("name") or "") + " " + (value.get("description") or "")).lower()
    for brand in tools["brand_names"]:
        if brand.lower() in text:
            return brand
    return None
'''

_IMPUTE_V2 = '''
def run(value, tools):
    """Impute a manufacturer: cheap brand-mention rules, LLM for hard cases.

    Straightforward records mention their brand verbatim and are resolved
    locally for free; only records with no brand mention are escalated to
    the LLM tool, which knows product lines (e.g. PlayStation -> Sony).
    """
    import re
    text = ((value.get("name") or "") + " " + (value.get("description") or "")).lower()
    best = None
    for brand in tools["brand_names"]:
        if re.search(r"\\b" + re.escape(brand.lower()) + r"\\b", text):
            if best is None or len(brand) > len(best):
                best = brand
    if best is not None:
        return best
    llm_impute = tools.get("llm_impute")
    if llm_impute is not None:
        return llm_impute(value)
    return None
'''

_LANG_DETECT_V0 = '''
def run(value, tools):
    """Detect the language of a text passage."""
    detect = tools["detect_language"]
    return detect(value).language
'''

_DEDUPE_V0 = '''
def run(value, tools):
    """Drop exact-duplicate records (by full value equality)."""
    seen, out = set(), []
    for record in value:
        key = tuple(sorted(record.items()))
        if key not in seen:
            seen.add(key)
            out.append(record)
    return out
'''

_CLEAN_TEXT_V0 = '''
def run(value, tools):
    """Normalise a text value for comparison."""
    return " ".join(str(value).lower().split())
'''

_CLEAN_TEXT_V1 = '''
def run(value, tools):
    """Normalise a text value: accents, units, abbreviations, whitespace."""
    normalize = tools["normalize_text"]
    return normalize(str(value))
'''

_SCHEMA_MATCH_V0 = '''
def run(value, tools):
    """Match columns of two schemas by name similarity.

    ``value`` is a dict with 'left' and 'right' lists of column names;
    returns a list of (left, right) pairs above a similarity threshold.
    """
    similarity = tools["string_similarity"]
    matches = []
    for left in value["left"]:
        best, best_score = None, 0.0
        for right in value["right"]:
            score = similarity(left.lower(), right.lower())
            if score > best_score:
                best, best_score = right, score
        if best is not None and best_score >= 0.55:
            matches.append((left, best))
    return matches
'''

_LIBRARY: dict[str, list[CodeCandidate]] = {
    "tokenize": [
        CodeCandidate("tokenize", 0, _TOKENIZE_V0, "whitespace split; punctuation glued to words"),
        CodeCandidate("tokenize", 1, _TOKENIZE_V1, "regex tokeniser handling punctuation and numbers"),
    ],
    "noun_phrases": [
        CodeCandidate("noun_phrases", 0, _NOUN_PHRASES_V0, "naive capitalised runs"),
        CodeCandidate("noun_phrases", 1, _NOUN_PHRASES_V1, "skips sentence-initial function words"),
        CodeCandidate("noun_phrases", 2, _NOUN_PHRASES_V2, "particle/honorific aware via granted tool"),
    ],
    "impute_manufacturer": [
        CodeCandidate("impute_manufacturer", 0, _IMPUTE_V0, "brand mention in name only"),
        CodeCandidate("impute_manufacturer", 1, _IMPUTE_V1, "brand mention in name or description"),
        CodeCandidate("impute_manufacturer", 2, _IMPUTE_V2, "rules first, LLM escalation for hard cases"),
    ],
    "detect_language": [
        CodeCandidate("detect_language", 0, _LANG_DETECT_V0, "delegates to granted language tool"),
    ],
    "dedupe": [
        CodeCandidate("dedupe", 0, _DEDUPE_V0, "exact-duplicate removal"),
    ],
    "clean_text": [
        CodeCandidate("clean_text", 0, _CLEAN_TEXT_V0, "lowercase + whitespace"),
        CodeCandidate("clean_text", 1, _CLEAN_TEXT_V1, "full normalisation via granted tool"),
    ],
    "schema_match": [
        CodeCandidate("schema_match", 0, _SCHEMA_MATCH_V0, "name-similarity column matching"),
    ],
}

KNOWN_TASKS = tuple(sorted(_LIBRARY))

_SUGGESTIONS: dict[tuple[str, int], str] = {
    ("tokenize", 0): (
        "The code splits on whitespace only, so punctuation stays attached to "
        "words ('Boston.' instead of 'Boston', '.'). Use a regular expression "
        "that separates words, numbers and punctuation marks."
    ),
    ("noun_phrases", 0): (
        "The code treats every capitalised word as part of a phrase, so "
        "sentence-initial function words like 'The' or 'Yesterday' are "
        "returned as phrases. Skip capitalised function words at sentence "
        "starts."
    ),
    ("noun_phrases", 1): (
        "Names containing lowercase particles such as 'de', 'van' or 'von' "
        "are split into fragments ('Maria' / 'Cruz'). Bridge particles "
        "between capitalised words, or use the provided noun_phrases tool "
        "which already handles particles and honorifics."
    ),
    ("impute_manufacturer", 0): (
        "The code only inspects the 'name' field, but many records mention "
        "the brand in 'description'. Search both fields."
    ),
    ("impute_manufacturer", 1): (
        "Records that never mention the brand verbatim (e.g. 'PlayStation 2 "
        "Memory Card' made by Sony) cannot be resolved by string matching. "
        "Escalate those records to the provided llm_impute tool, keeping the "
        "cheap rule for records that do mention their brand."
    ),
    ("clean_text", 0): (
        "Lowercasing is not enough: accents, measurement units and "
        "abbreviations still differ. Use the provided normalize_text tool."
    ),
}

# Keyword routing: first match wins, so order matters.
_ROUTES: tuple[tuple[str, str], ...] = (
    (r"manufactur|imput|brand|missing value", "impute_manufacturer"),
    (r"noun.?phrase|candidate phrase|capitali[sz]ed span", "noun_phrases"),
    (r"token", "tokenize"),
    (r"language", "detect_language"),
    (r"dedup|duplicate", "dedupe"),
    (r"normali[sz]e|clean", "clean_text"),
    (r"schema|column match", "schema_match"),
)


def route_task(description: str) -> str | None:
    """Map a natural-language task description to a known task key."""
    lowered = description.lower()
    for pattern, task in _ROUTES:
        if re.search(pattern, lowered):
            return task
    return None


def max_revision(task: str) -> int:
    """Highest available revision index for ``task``."""
    return len(_LIBRARY[task]) - 1


def candidate_for(task: str, revision: int) -> CodeCandidate:
    """The candidate at ``revision`` (clamped to the best available)."""
    if task not in _LIBRARY:
        raise KeyError(f"unknown code-generation task: {task!r}; know {KNOWN_TASKS}")
    candidates = _LIBRARY[task]
    return candidates[min(max(revision, 0), len(candidates) - 1)]


def suggestion_for(task: str, revision: int) -> str:
    """The critique an LLM would give for the candidate at ``revision``."""
    return _SUGGESTIONS.get(
        (task, revision),
        "Re-examine the failing cases and handle the uncovered input shapes.",
    )
