"""Language-detection skill."""

from __future__ import annotations

import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, extract_text_field
from repro.text.language import detect_language

__all__ = ["LanguageDetectionSkill"]

_TRIGGER = re.compile(r"which language|language of|detect the language", re.IGNORECASE)


class LanguageDetectionSkill(Skill):
    """Identify the language of a passage (ISO 639-1 code answer)."""

    name = "langdetect"

    def matches(self, prompt: str) -> bool:
        return bool(_TRIGGER.search(prompt))

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        text = (
            extract_text_field(prompt, "Text")
            or extract_text_field(prompt, "Input")
            or prompt
        )
        guess = detect_language(text)
        return f"{guess.language}. The passage appears to be in '{guess.language}' (confidence {guess.confidence:.2f})."
