"""Skill interface and prompt-parsing helpers for the simulated LLM.

A *skill* is one capability of the simulated model (entity matching, code
generation, ...).  The provider routes each prompt to the first skill whose
``matches`` accepts it — a deterministic stand-in for what a real LLM does
implicitly.  Prompts are plain text; these helpers extract the labelled
sections the built-in prompt templates emit (``Record A: {...}``,
``Input: ...``), while tolerating the looser phrasing of hand-written
prompts.
"""

from __future__ import annotations

import json
import re
from abc import ABC, abstractmethod
from typing import Any

from repro.llm.knowledge import KnowledgeBase

__all__ = ["Skill", "extract_json_field", "extract_text_field", "count_examples"]


class Skill(ABC):
    """One capability of the simulated LLM."""

    #: short identifier recorded in the call ledger
    name: str = "skill"

    @abstractmethod
    def matches(self, prompt: str) -> bool:
        """Whether this skill should answer ``prompt``."""

    @abstractmethod
    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        """The model's textual answer to ``prompt``."""


def extract_json_field(prompt: str, label: str) -> dict[str, Any] | None:
    """Parse ``<label>: {json object}`` out of ``prompt``.

    The object may span lines; the balanced ``{...}`` after the *last*
    occurrence of the label is parsed — few-shot prompts repeat the label
    inside worked examples, and the actual payload always comes last.
    Returns ``None`` when the label or valid JSON is absent.
    """
    pattern = re.compile(re.escape(label) + r"\s*:\s*\{", re.IGNORECASE)
    matches = list(pattern.finditer(prompt))
    if not matches:
        return None
    match = matches[-1]
    start = match.end() - 1
    depth = 0
    in_string = False
    escaped = False
    for i in range(start, len(prompt)):
        ch = prompt[i]
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                try:
                    return json.loads(prompt[start : i + 1])
                except json.JSONDecodeError:
                    return None
    return None


def extract_text_field(prompt: str, label: str) -> str | None:
    """Parse ``<label>: value`` (to end of line) out of ``prompt``.

    Takes the *last* occurrence: few-shot prompts repeat field labels inside
    examples, and the payload always follows them.
    """
    pattern = re.compile(
        re.escape(label) + r"\s*:\s*(.+?)\s*$", re.IGNORECASE | re.MULTILINE
    )
    matches = list(pattern.finditer(prompt))
    return matches[-1].group(1).strip() if matches else None


def count_examples(prompt: str) -> int:
    """Number of worked examples embedded in the prompt (few-shot signal)."""
    return len(re.findall(r"^Example(?:\s+\d+)?\s*:", prompt, re.IGNORECASE | re.MULTILINE))
