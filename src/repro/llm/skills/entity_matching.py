"""Entity-matching skill: "are these two records the same entity?".

The simulated model's advantage over classical matchers is *world
knowledge*: it can undo abbreviations, unit changes and accent noise before
comparing (normalisation the generator's corruptions are designed to be
invertible by), so its raw judgement is strong.  Calibrated noise keyed to
the pair's decision margin then makes it fallible in a realistic way:
borderline pairs are the ones it gets wrong.

Prompt quality matters, as in the paper: a bare prompt (the FMs baseline)
suffers an extra-noise penalty; a well-engineered prompt with a task
description and worked examples (what Lingua Manga's templates emit) does
not.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, count_examples, extract_json_field
from repro.text.normalize import extract_numbers, normalize_text
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    numeric_similarity,
    qgram_similarity,
)

__all__ = ["EntityMatchingSkill", "match_score", "judge_pair", "MATCH_THRESHOLD"]

_TRIGGER = re.compile(
    r"same entity|entities .*equivalent|entity resolution|refer to the same|"
    r"duplicate record|match.*records?",
    re.IGNORECASE | re.DOTALL,
)

# Attributes that identify an entity strongly when similar.
_KEY_HINTS = ("name", "title", "song", "beer", "restaurant", "product")


def _attribute_weight(attribute: str) -> float:
    lowered = attribute.lower()
    if any(hint in lowered for hint in _KEY_HINTS):
        return 3.0
    if lowered.startswith("_") or lowered in ("id", "rid", "source"):
        return 0.0
    return 1.0


def _generic_tokens() -> frozenset[str]:
    """Tokens that carry little identity: styles, genres, editions, kinds.

    A person (or LLM) comparing "Wild Bastard IPA" with "Wild Otter IPA"
    knows the style word "IPA" is shared by thousands of beers — identity
    lives in the distinctive words.  This is world knowledge, so the list is
    derived from the same catalogue the knowledge base uses.
    """
    from repro.datasets import catalog

    words: set[str] = set()
    for style in catalog.BEER_STYLES:
        words.update(normalize_text(style).split())
    for genre in catalog.GENRES:
        words.update(normalize_text(genre).split())
    for cuisine in catalog.CUISINES:
        words.update(normalize_text(cuisine).split())
    words.update(
        "brewery brewing company beer craft co incorporated limited".split()
    )
    # Long forms the sources rewrite style names into.
    words.update(
        "india pale ale imperial extra special bitter wheat white".split()
    )
    words.update("album version explicit single deluxe edition remastered".split())
    words.update(
        "bistro grill kitchen tavern cafe table house diner trattoria "
        "brasserie cantina osteria restaurant".split()
    )
    words.update("the a an of and featuring feat ft".split())
    return frozenset(words)


_GENERIC_TOKENS = _generic_tokens()


def _fuzzy_containment(a: str, b: str) -> float:
    """Weighted best-token containment of the *shorter* value in the longer.

    This is the judgement a human (or LLM) makes for identifying attributes:
    "Midnight Dreams (Album Version)" still *contains* "Midnight Dreams", so
    the pair matches; "Wild Otter IPA" shares the style word with "Wild
    Bastard IPA" but fails containment on the distinguishing token.  Typos
    are absorbed by Jaro-Winkler at the token level; generic tokens (styles,
    genres, editions) contribute a small bonus rather than full weight.
    """
    ta = a.split()
    tb = b.split()
    if not ta or not tb:
        return 1.0 if ta == tb else 0.0
    shorter, longer = (ta, tb) if len(ta) <= len(tb) else (tb, ta)
    distinctive = [t for t in shorter if t not in _GENERIC_TOKENS]
    generic = [t for t in shorter if t in _GENERIC_TOKENS]

    def best(token: str) -> float:
        return max(jaro_winkler_similarity(token, other) for other in longer)

    if distinctive:
        scores = [best(t) for t in distinctive]
        # Soft-min: every distinctive token must match — one clearly
        # different word ("Bastard" vs "Otter") sinks the pair even when the
        # rest agrees, while a single typo'd token only dents the score.
        distinctive_score = 0.5 * min(scores) + 0.5 * (sum(scores) / len(scores))
    else:
        distinctive_score = 1.0  # value is all-generic; fall back to generic match
    generic_score = (
        sum(best(t) for t in generic) / len(generic) if generic else 1.0
    )
    return 0.9 * distinctive_score + 0.1 * generic_score


def match_score(left: Mapping[str, Any], right: Mapping[str, Any]) -> float:
    """Similarity score in ``[0, 1]`` after world-knowledge normalisation.

    Identifying attributes (names/titles) use fuzzy containment — the edit
    tolerance plus suffix tolerance an LLM exhibits — while secondary
    attributes use a blended string similarity.
    """
    total_weight = 0.0
    total = 0.0
    for attribute in sorted(set(left) & set(right)):
        weight = _attribute_weight(attribute)
        if weight == 0.0:
            continue
        a_raw, b_raw = left[attribute], right[attribute]
        if a_raw is None or b_raw is None or a_raw == "" or b_raw == "":
            continue
        a = normalize_text(str(a_raw))
        b = normalize_text(str(b_raw))
        numbers_a, numbers_b = extract_numbers(a), extract_numbers(b)
        if numbers_a and numbers_b and not (set(a.split()) - set(str(x) for x in numbers_a)):
            # Numbers are compared sharply: 5.2%% vs 6.1%% ABV means two
            # different beers, even though the relative gap is small.
            denominator = max(abs(numbers_a[0]), abs(numbers_b[0]), 1e-9)
            sim = max(0.0, 1.0 - 5.0 * abs(numbers_a[0] - numbers_b[0]) / denominator)
        elif weight >= 3.0:
            sim = _fuzzy_containment(a, b)
        else:
            sim = max(
                0.45 * jaccard_similarity(a, b)
                + 0.35 * jaro_winkler_similarity(a, b)
                + 0.20 * qgram_similarity(a, b),
                jaccard_similarity(a, b),
            )
        total += weight * sim
        total_weight += weight
    if total_weight == 0.0:
        return 0.0
    return total / total_weight


MATCH_THRESHOLD = 0.71


def judge_pair(
    left: Mapping[str, Any],
    right: Mapping[str, Any],
    kb: KnowledgeBase,
    has_examples: bool,
    described: bool,
) -> tuple[bool, float]:
    """The model's verdict for one pair; ``(verdict, score)``.

    Prompt engineering matters: worked examples and an explicit task
    description suppress the extra noise a bare prompt suffers.  Bare
    prompts also degrade with record complexity — attribute-rich and
    null-bearing records are exactly where serialization into a naive
    prompt goes wrong (the FMs regime).  The noise roll is keyed on the
    pair's content, so batched and single prompts of equal quality yield
    identical verdicts.
    """
    score = match_score(left, right)
    verdict = score >= MATCH_THRESHOLD
    margin = abs(score - MATCH_THRESHOLD)
    extra_noise = 0.0
    if not has_examples:
        extra_noise += 0.26
        n_attributes = max(len(left), len(right))
        extra_noise += 0.09 * max(0, n_attributes - 4)
        if any(v is None for v in left.values()) or any(
            v is None for v in right.values()
        ):
            extra_noise += 0.12
    if not described:
        extra_noise += 0.10
    pair_key = f"{sorted(left.items())!r}|{sorted(right.items())!r}"
    if kb.match_flip(pair_key, margin, extra_noise):
        verdict = not verdict
    return verdict, score


class EntityMatchingSkill(Skill):
    """Judge record-pair equivalence with calibrated, margin-aware noise."""

    name = "entity_matching"
    threshold = MATCH_THRESHOLD

    def matches(self, prompt: str) -> bool:
        return bool(_TRIGGER.search(prompt)) and (
            extract_json_field(prompt, "Record A") is not None
            or "record a" in prompt.lower()
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        left = extract_json_field(prompt, "Record A")
        right = extract_json_field(prompt, "Record B")
        if left is None or right is None:
            return (
                "I need both records to compare. Please provide 'Record A:' "
                "and 'Record B:' as JSON objects."
            )
        has_examples = count_examples(prompt) > 0
        described = "task" in prompt.lower() and len(prompt) > 220
        verdict, score = judge_pair(left, right, kb, has_examples, described)
        answer = "Yes" if verdict else "No"
        return (
            f"{answer}. Comparing the two records on their shared attributes, "
            f"they {'appear to describe the same entity' if verdict else 'appear to be different entities'} "
            f"(similarity {score:.2f})."
        )
