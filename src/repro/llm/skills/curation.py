"""Corpus-curation skills: document quality judgement and contamination
adjudication.

Both skills embody *knowledge the mechanical rungs of their cascades lack*:

- :class:`QualityJudgmentSkill` knows English (well, the corpus's
  vocabulary): planted pseudo-words are obvious gibberish to it, marketing
  boilerplate is recognised as boilerplate, and the ALL-CAPS catalogue
  decoy that fools the surface heuristics is forgiven — catalogues shout,
  that is not a quality defect.
- :class:`ContaminationJudgmentSkill` renormalises disguise away: a
  benchmark item spliced into a document through variant rewrites
  (``St.`` → ``Street``) and typos still *reads* as the same sentence, so
  fuzzy token containment under :func:`repro.text.shingle.knowledge_canonical`
  recovers what the raw n-gram scan lost.

Both use the margin-keyed error model of
:meth:`repro.llm.knowledge.KnowledgeBase.judgement_flip`: borderline
documents are where the model errs, and worked examples in the prompt
suppress part of that noise (same prompt-engineering economy as entity
matching).
"""

from __future__ import annotations

import re

from repro.datasets.curation import BOILERPLATE_PHRASES, curation_vocabulary
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import (
    Skill,
    count_examples,
    extract_json_field,
    extract_text_field,
)
from repro.text.quality import quality_stats
from repro.text.shingle import knowledge_canonical
from repro.text.similarity import jaro_winkler_similarity

__all__ = [
    "QualityJudgmentSkill",
    "ContaminationJudgmentSkill",
    "knowledge_quality_score",
    "containment_score",
    "QUALITY_THRESHOLD",
    "CONTAINMENT_THRESHOLD",
]

_WORD_RE = re.compile(r"[^\W\d_]+", re.UNICODE)

_QUALITY_TRIGGER = re.compile(
    r"document quality|quality filter|high[- ]quality|low[- ]quality|worth keeping",
    re.IGNORECASE,
)
_CONTAMINATION_TRIGGER = re.compile(
    r"contaminat|benchmark leak|leak.*benchmark|eval(?:uation)? (?:set|item)|decontam",
    re.IGNORECASE,
)

#: Documents scoring at or above this are judged worth keeping.  Calibrated
#: on the synthetic curation corpus: keeps concentrate at 0.9–1.0, drops
#: below 0.85, with a genuine ambiguity band around the cut.
QUALITY_THRESHOLD = 0.86

#: Benchmark-containment level judged as contamination.  Disguised splices
#: score ≥ 0.9; incidental phrase overlap with a benchmark item stays
#: ≤ 0.55 — the threshold sits mid-gap.
CONTAINMENT_THRESHOLD = 0.74


def knowledge_quality_score(text: str) -> float:
    """Vocabulary-aware quality score in ``[0, 1]`` (higher is better).

    Shares the honest surface signals with the rule score (run-on text,
    repetition) but adds what only a reader with a vocabulary can see —
    gibberish words, marketing boilerplate — and deliberately omits the
    ALL-CAPS penalty the decoy exploits.
    """
    stats = quality_stats(text)
    if stats.n_tokens == 0:
        return 0.0
    vocabulary = curation_vocabulary()
    words = [w.lower() for w in _WORD_RE.findall(text)]
    long_words = [w for w in words if len(w) >= 6]
    junk = sum(1 for w in long_words if w not in vocabulary)
    junk_fraction = junk / max(1, len(words))
    lowered = text.lower()
    boilerplate = sum(1 for phrase in BOILERPLATE_PHRASES if phrase in lowered)
    score = 1.0
    score -= 10.0 * junk_fraction
    score -= 0.38 * boilerplate
    score -= max(0.0, stats.tokens_per_sentence - 12.0) * 0.03
    score -= 1.4 * (1.0 - stats.distinct_sentence_ratio)
    score -= max(0.0, 0.45 - stats.distinct_word_ratio) * 1.5
    return max(0.0, min(1.0, score))


def containment_score(benchmark: str, document: str) -> float:
    """Fraction of the benchmark item's tokens found in the document.

    Both sides pass through the knowledge canonicaliser first, so variant
    rewrites collapse; typo'd tokens still count through per-token fuzzy
    matching (Jaro-Winkler ≥ 0.88).
    """
    item_tokens = knowledge_canonical(benchmark).split()
    doc_tokens = knowledge_canonical(document).split()
    if not item_tokens:
        return 0.0
    doc_set = set(doc_tokens)
    fuzzy_pool = [t for t in doc_set if len(t) >= 4]
    matched = 0
    for token in item_tokens:
        if token in doc_set:
            matched += 1
        elif len(token) >= 4 and any(
            jaro_winkler_similarity(token, other) >= 0.88 for other in fuzzy_pool
        ):
            matched += 1
    return matched / len(item_tokens)


class QualityJudgmentSkill(Skill):
    """Keep/drop judgement for one document, with calibrated noise."""

    name = "doc_quality"
    threshold = QUALITY_THRESHOLD

    def matches(self, prompt: str) -> bool:
        return bool(_QUALITY_TRIGGER.search(prompt)) and (
            extract_json_field(prompt, "Document") is not None
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        document = extract_json_field(prompt, "Document")
        if document is None:
            return "I need the document as a 'Document:' JSON object."
        text = str(document.get("text", ""))
        score = knowledge_quality_score(text)
        verdict = score >= QUALITY_THRESHOLD
        margin = abs(score - QUALITY_THRESHOLD)
        extra_noise = 0.0 if count_examples(prompt) > 0 else 0.18
        key = str(document.get("id", text[:120]))
        if kb.judgement_flip("quality", key, margin, extra_noise):
            verdict = not verdict
        answer = "Yes" if verdict else "No"
        reason = (
            "reads as coherent, informative prose"
            if verdict
            else "shows gibberish, boilerplate or scrape damage"
        )
        return f"{answer}. The document {reason} (quality {score:.2f})."


class ContaminationJudgmentSkill(Skill):
    """Adjudicate whether a document leaks a specific benchmark item."""

    name = "decontam"
    threshold = CONTAINMENT_THRESHOLD

    def matches(self, prompt: str) -> bool:
        return bool(_CONTAMINATION_TRIGGER.search(prompt)) and (
            extract_json_field(prompt, "Document") is not None
            and extract_text_field(prompt, "Benchmark") is not None
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        document = extract_json_field(prompt, "Document")
        benchmark = extract_text_field(prompt, "Benchmark")
        if document is None or benchmark is None:
            return (
                "I need a 'Document:' JSON object and a 'Benchmark:' line "
                "to compare."
            )
        text = str(document.get("text", ""))
        score = containment_score(benchmark, text)
        verdict = score >= CONTAINMENT_THRESHOLD
        margin = abs(score - CONTAINMENT_THRESHOLD)
        extra_noise = 0.0 if count_examples(prompt) > 0 else 0.18
        key = f"{document.get('id', text[:80])}|{benchmark[:80]}"
        if kb.judgement_flip("contamination", key, margin, extra_noise):
            verdict = not verdict
        answer = "Yes" if verdict else "No"
        reason = (
            "the benchmark item's content appears in the document, "
            "allowing for superficial rewording"
            if verdict
            else "the overlap is incidental phrasing, not the benchmark item"
        )
        return f"{answer}. Judged that {reason} (containment {score:.2f})."
