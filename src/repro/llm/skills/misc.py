"""General-purpose skills: classification, NL-to-SQL, summarisation,
schema matching, and the conversational fallback.
"""

from __future__ import annotations

import json
import re

from repro._util import stable_choice, stable_unit
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, extract_text_field
from repro.text.similarity import jaro_winkler_similarity
from repro.text.tokenize import sentence_split, word_tokenize

__all__ = [
    "ClassificationSkill",
    "NL2SQLSkill",
    "SummarizationSkill",
    "SchemaMatchingSkill",
    "ChatFallbackSkill",
]


class ClassificationSkill(Skill):
    """Pick one of the offered choices for an input.

    The prompt must contain ``Choices: a | b | c`` and an ``Input:`` line.
    The model votes by token overlap between the input and each choice, with
    a small calibrated error rate on near-ties.
    """

    name = "classify"

    def matches(self, prompt: str) -> bool:
        return (
            "classify" in prompt.lower()
            and extract_text_field(prompt, "Choices") is not None
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        choices_text = extract_text_field(prompt, "Choices") or ""
        choices = [c.strip() for c in choices_text.split("|") if c.strip()]
        if not choices:
            return "I need a 'Choices:' line with | separated options."
        payload = extract_text_field(prompt, "Input") or prompt
        tokens = set(word_tokenize(payload.lower()))
        scores = []
        for choice in choices:
            choice_tokens = set(word_tokenize(choice.lower()))
            overlap = len(tokens & choice_tokens)
            fuzzy = max(
                (jaro_winkler_similarity(choice.lower(), t) for t in tokens),
                default=0.0,
            )
            scores.append(overlap + 0.5 * fuzzy)
        best = max(range(len(choices)), key=lambda i: scores[i])
        ranked = sorted(scores, reverse=True)
        margin = ranked[0] - (ranked[1] if len(ranked) > 1 else 0.0)
        if margin < 0.25 and stable_unit("classify", payload) < 0.15:
            best = stable_choice(range(len(choices)), "classify-err", payload)
        return choices[best]


class NL2SQLSkill(Skill):
    """Translate a constrained natural-language question into SQL.

    Supports the question shapes the connector demo needs: counts, averages,
    min/max, and filtered listings.  The table schema must be in the prompt
    (``Schema: TABLE name (col TYPE, ...)``), which is exactly what the
    connector uploads instead of the data itself.
    """

    name = "nl2sql"

    def matches(self, prompt: str) -> bool:
        lowered = prompt.lower()
        return "sql" in lowered and "schema" in lowered

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        schema_match = re.search(r"TABLE\s+(\w+)\s*\(([^)]*)\)", prompt)
        if schema_match is None:
            return "I need the table schema to write SQL."
        table = schema_match.group(1)
        columns = [
            part.strip().split()[0]
            for part in schema_match.group(2).split(",")
            if part.strip()
        ]
        question = (
            extract_text_field(prompt, "Question") or extract_text_field(prompt, "Input") or ""
        ).lower()

        def find_column(default: str | None = None) -> str | None:
            for column in columns:
                if column.lower() in question:
                    return column
            return default

        condition = self._condition(question, columns)
        where = f" WHERE {condition}" if condition else ""
        if re.search(r"how many|number of|count", question):
            return f"SELECT COUNT(*) AS n FROM {table}{where}"
        if "average" in question or "mean" in question:
            column = find_column()
            if column:
                return f"SELECT AVG({column}) AS avg_{column} FROM {table}{where}"
        for agg, words in (("MAX", ("highest", "most expensive", "maximum", "largest")),
                           ("MIN", ("lowest", "cheapest", "minimum", "smallest"))):
            if any(word in question for word in words):
                column = find_column()
                if column:
                    return (
                        f"SELECT * FROM {table} ORDER BY {column} "
                        f"{'DESC' if agg == 'MAX' else 'ASC'} LIMIT 1"
                    )
        column = find_column()
        projection = column if column else "*"
        return f"SELECT {projection} FROM {table}{where} LIMIT 20"

    @staticmethod
    def _condition(question: str, columns: list[str]) -> str | None:
        over = re.search(r"(\w+)\s+(?:over|above|greater than|more than)\s+(\d+(?:\.\d+)?)", question)
        if over and over.group(1) in [c.lower() for c in columns]:
            return f"{over.group(1)} > {over.group(2)}"
        under = re.search(r"(\w+)\s+(?:under|below|less than)\s+(\d+(?:\.\d+)?)", question)
        if under and under.group(1) in [c.lower() for c in columns]:
            return f"{under.group(1)} < {under.group(2)}"
        equals = re.search(r"(\w+)\s+(?:is|equals|=)\s+'?([\w ]+?)'?(?:\?|$|,)", question)
        if equals and equals.group(1) in [c.lower() for c in columns]:
            value = equals.group(2).strip()
            if re.fullmatch(r"\d+(\.\d+)?", value):
                return f"{equals.group(1)} = {value}"
            return f"LOWER({equals.group(1)}) = '{value.lower()}'"
        return None


class SummarizationSkill(Skill):
    """Extractive summary: lead sentences up to a length budget."""

    name = "summarize"

    def matches(self, prompt: str) -> bool:
        return bool(re.search(r"summari[sz]e|short summary", prompt, re.IGNORECASE))

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        text = extract_text_field(prompt, "Text") or extract_text_field(prompt, "Input")
        if not text:
            # Fall back to everything after the instruction line.
            lines = prompt.splitlines()
            text = " ".join(lines[1:]) if len(lines) > 1 else prompt
        sentences = sentence_split(text)
        summary: list[str] = []
        length = 0
        for sentence in sentences:
            summary.append(sentence)
            length += len(sentence)
            if length > 180 or len(summary) == 2:
                break
        return " ".join(summary) if summary else text[:180]


class SchemaMatchingSkill(Skill):
    """Match two column lists by name similarity; answers JSON pairs."""

    name = "schema_matching"

    def matches(self, prompt: str) -> bool:
        lowered = prompt.lower()
        return (
            ("schema" in lowered and "match" in lowered)
            and extract_text_field(prompt, "Left columns") is not None
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        left = [
            c.strip()
            for c in (extract_text_field(prompt, "Left columns") or "").split(",")
            if c.strip()
        ]
        right = [
            c.strip()
            for c in (extract_text_field(prompt, "Right columns") or "").split(",")
            if c.strip()
        ]
        pairs = []
        for a in left:
            best, best_score = None, 0.0
            for b in right:
                score = jaro_winkler_similarity(a.lower(), b.lower())
                if score > best_score:
                    best, best_score = b, score
            if best is not None and best_score >= 0.72:
                pairs.append([a, best])
        return json.dumps(pairs)


class ChatFallbackSkill(Skill):
    """Last-resort skill so the provider always answers *something*.

    A real LLM never refuses to emit text; the fallback mirrors that while
    making it obvious in transcripts that no specialised skill matched.
    """

    name = "chat"

    def matches(self, prompt: str) -> bool:
        return True

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        head = prompt.strip().splitlines()[0] if prompt.strip() else ""
        return (
            "I am a general-purpose assistant. Regarding your request "
            f"({head[:80]!r}): could you phrase it as one of my supported "
            "task formats?"
        )
