"""Data-imputation skill: fill a missing attribute from world knowledge.

The flagship example from paper section 4.3: deduce that "PlayStation 2
Memory Card 8MB" is manufactured by Sony.  The knowledge base answers from
its (partial, occasionally hallucinating) view of the product catalogue.
"""

from __future__ import annotations

import re

from repro._util import stable_unit
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, extract_json_field, extract_text_field

__all__ = ["ImputationSkill"]

_TRIGGER = re.compile(
    r"manufactur|who (makes|produces)|impute|fill in the missing|missing attribute",
    re.IGNORECASE,
)


class ImputationSkill(Skill):
    """Answer "which company makes this product?" style prompts."""

    name = "imputation"

    def matches(self, prompt: str) -> bool:
        return bool(_TRIGGER.search(prompt))

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        record = extract_json_field(prompt, "Product") or extract_json_field(
            prompt, "Record"
        )
        if record is not None:
            # Reason like an LLM: the product *name* names the product; a
            # description may advertise compatibility with another brand, so
            # it is only consulted when the name is inconclusive.
            name = str(record.get("name") or "")
            text = name
            brand, confidence = kb.manufacturer_for(name)
            if brand is None:
                text = " ".join(
                    str(v) for k, v in sorted(record.items()) if v is not None
                )
                brand, confidence = kb.manufacturer_for(text)
        else:
            text = (
                extract_text_field(prompt, "Product")
                or extract_text_field(prompt, "Input")
                or prompt
            )
            brand, confidence = kb.manufacturer_for(text)
        if brand is None:
            return "Unknown. I cannot determine the manufacturer of this product."
        # Prompt quality matters: a terse prompt without instructions (the
        # FMs regime) sometimes gets a sloppy answer — the product line
        # instead of the company, a classic confusion a good task
        # description and output validation prevent.
        instructed = len(prompt) > 110 and (
            "company" in prompt.lower() or "answer with" in prompt.lower()
        )
        if not instructed and stable_unit("impute-sloppy", text) < 0.20:
            line = next(
                (word for word in text.split() if word[:1].isupper()), brand
            )
            return f"{line}. It looks like a {line} product."
        return f"{brand}. The product appears to be made by {brand} (confidence {confidence:.2f})."
