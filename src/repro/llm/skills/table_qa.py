"""Table question-answering skill: answer from rows pasted into the prompt.

This is the *full-upload* alternative the connector exists to avoid (paper
section 3.2): the caller serialises table rows into the prompt and asks a
question.  The simulated model computes over exactly the rows it can see —
so when the table was truncated to fit a prompt budget, its answers are
wrong, which is the accuracy cost of full upload that the connector ablation
measures.
"""

from __future__ import annotations

import json
import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, extract_text_field

__all__ = ["TableQASkill"]

_ROWS_RE = re.compile(r"Rows\s*:\s*(\[.*?\])\s*$", re.IGNORECASE | re.DOTALL | re.MULTILINE)


class TableQASkill(Skill):
    """Compute count/avg/min/max/filter answers over in-prompt rows."""

    name = "table_qa"

    def matches(self, prompt: str) -> bool:
        return "Rows:" in prompt and "Question" in prompt

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        match = _ROWS_RE.search(prompt)
        if match is None:
            return "I need the rows as a JSON list under 'Rows:'."
        try:
            rows = json.loads(match.group(1))
        except json.JSONDecodeError:
            return "The rows are not valid JSON; I cannot answer reliably."
        question = (extract_text_field(prompt, "Question") or "").lower()
        if not isinstance(rows, list):
            return "Rows must be a JSON list of objects."

        columns = sorted({key for row in rows if isinstance(row, dict) for key in row})

        def find_column() -> str | None:
            for column in columns:
                if column.lower() in question:
                    return column
            return None

        filtered = self._apply_filter(rows, question, columns)
        if re.search(r"how many|number of|count", question):
            return f"{len(filtered)}. Counting the matching rows gives {len(filtered)}."
        column = find_column()
        if column is not None:
            values = [
                row[column]
                for row in filtered
                if isinstance(row, dict) and isinstance(row.get(column), (int, float))
            ]
            if ("average" in question or "mean" in question) and values:
                mean = sum(values) / len(values)
                return f"{mean:g}. The average {column} over the rows is {mean:g}."
            if any(w in question for w in ("highest", "maximum", "largest")) and values:
                return f"{max(values):g}. The maximum {column} is {max(values):g}."
            if any(w in question for w in ("lowest", "minimum", "smallest")) and values:
                return f"{min(values):g}. The minimum {column} is {min(values):g}."
            if any(w in question for w in ("total", "sum")) and values:
                return f"{sum(values):g}. The sum of {column} is {sum(values):g}."
        return f"{len(filtered)}. I found {len(filtered)} relevant rows."

    @staticmethod
    def _apply_filter(rows: list, question: str, columns: list[str]) -> list:
        lowered = [c.lower() for c in columns]
        over = re.search(r"(\w+)\s+(?:over|above|greater than|more than)\s+(\d+(?:\.\d+)?)", question)
        if over and over.group(1) in lowered:
            column = columns[lowered.index(over.group(1))]
            threshold = float(over.group(2))
            return [
                r for r in rows
                if isinstance(r, dict)
                and isinstance(r.get(column), (int, float))
                and r[column] > threshold
            ]
        under = re.search(r"(\w+)\s+(?:under|below|less than)\s+(\d+(?:\.\d+)?)", question)
        if under and under.group(1) in lowered:
            column = columns[lowered.index(under.group(1))]
            threshold = float(under.group(2))
            return [
                r for r in rows
                if isinstance(r, dict)
                and isinstance(r.get(column), (int, float))
                and r[column] < threshold
            ]
        return list(rows)
