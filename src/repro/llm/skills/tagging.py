"""Name-tagging skill: "is this phrase a person name?".

The tagging operator of the paper's name-extraction pipeline (section 4.2,
Figure 3).  Accuracy is language-sensitive: without a language hint the
model behaves like a monolingual English tagger and degrades on
multilingual text — the failure the demo fixes by inserting a
language-detection module upstream.
"""

from __future__ import annotations

import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, extract_text_field

__all__ = ["TaggingSkill"]

_TRIGGER = re.compile(r"person name|name of a person|tag.*name|is .* a name", re.IGNORECASE)


class TaggingSkill(Skill):
    """Yes/no person-name judgement with optional language hint."""

    name = "tagging"

    def matches(self, prompt: str) -> bool:
        return bool(_TRIGGER.search(prompt)) and (
            extract_text_field(prompt, "Phrase") is not None
            or extract_text_field(prompt, "Input") is not None
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        phrase = extract_text_field(prompt, "Phrase") or extract_text_field(
            prompt, "Input"
        )
        if not phrase:
            return "I need a 'Phrase:' to judge."
        language = extract_text_field(prompt, "Language")
        if language:
            language = language.strip().lower()[:2]
        verdict, confidence = kb.is_person_name(phrase, language_hint=language)
        answer = "Yes" if verdict else "No"
        return (
            f"{answer}. The phrase {phrase!r} "
            f"{'is' if verdict else 'is not'} a person name "
            f"(confidence {confidence:.2f})."
        )
