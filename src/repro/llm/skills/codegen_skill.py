"""Code-generation and code-critique skills.

Together these two skills reproduce the validator's repair cycle (paper
section 3.2): the first LLM call *suggests* why the code fails, the second
*regenerates* the code.  Revision tracking rides inside the prompt — repair
prompts include ``Revision: N`` and the engine answers with revision ``N+1``
— so the "model" stays stateless like a real API.
"""

from __future__ import annotations

import re

from repro.llm import codegen
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, extract_text_field

__all__ = ["CodeGenerationSkill", "CodeSuggestionSkill"]

_GENERATE_TRIGGER = re.compile(
    r"write (a |the )?(python )?(code|function)|generate (the )?code|implement a function",
    re.IGNORECASE,
)
_SUGGEST_TRIGGER = re.compile(
    r"why does (this|the) code fail|critique this code|"
    r"read the code and the fail",
    re.IGNORECASE,
)


def _task_from_prompt(prompt: str) -> str | None:
    description = extract_text_field(prompt, "Task") or prompt
    return codegen.route_task(description)


def _revision_from_prompt(prompt: str) -> int:
    text = extract_text_field(prompt, "Revision")
    if text is None:
        return -1  # fresh generation request -> respond with revision 0
    try:
        return int(text)
    except ValueError:
        return -1


class CodeGenerationSkill(Skill):
    """Emit Python source for a described task inside a code fence."""

    name = "codegen"

    def matches(self, prompt: str) -> bool:
        return bool(_GENERATE_TRIGGER.search(prompt))

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        task = _task_from_prompt(prompt)
        if task is None:
            return (
                "I do not know how to implement that task. Supported tasks: "
                + ", ".join(codegen.KNOWN_TASKS)
            )
        revision = _revision_from_prompt(prompt) + 1
        candidate = codegen.candidate_for(task, revision)
        return (
            f"Here is an implementation (task={candidate.task}, "
            f"revision={candidate.revision}):\n"
            f"```python\n{candidate.source.strip()}\n```"
        )


class CodeSuggestionSkill(Skill):
    """Explain why a given revision fails its test cases."""

    name = "suggest"

    def matches(self, prompt: str) -> bool:
        return bool(_SUGGEST_TRIGGER.search(prompt))

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        task = _task_from_prompt(prompt)
        if task is None:
            return "Without recognising the task I can only suggest re-reading the failures."
        revision = max(_revision_from_prompt(prompt), 0)
        return codegen.suggestion_for(task, revision)
