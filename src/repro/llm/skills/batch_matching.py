"""Batched entity-matching skill: many pairs per prompt.

Packing several record pairs into one prompt amortises the instruction
preamble and turns N service calls into N/B — a standard cost optimization
that complements the optimizer's simulator and cache.  The skill answers
with one numbered verdict per pair; verdicts are computed by the same
:func:`~repro.llm.skills.entity_matching.judge_pair` logic as the
single-pair skill and keyed on pair content, so batching never changes an
answer.
"""

from __future__ import annotations

import re

from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills.base import Skill, count_examples, extract_json_field
from repro.llm.skills.entity_matching import judge_pair

__all__ = ["BatchEntityMatchingSkill"]

_PAIR_HEADER_RE = re.compile(r"^Pair\s+(\d+)\s*:", re.IGNORECASE | re.MULTILINE)


class BatchEntityMatchingSkill(Skill):
    """Answer ``Pair N:`` sections with ``N: Yes/No`` lines."""

    name = "batch_entity_matching"

    def matches(self, prompt: str) -> bool:
        headers = _PAIR_HEADER_RE.findall(prompt)
        return len(headers) >= 1 and "record a" in prompt.lower() and (
            "same entity" in prompt.lower() or "equivalent" in prompt.lower()
        )

    def respond(self, prompt: str, kb: KnowledgeBase) -> str:
        sections = _PAIR_HEADER_RE.split(prompt)
        # split() yields [preamble, index1, body1, index2, body2, ...]
        preamble = sections[0]
        has_examples = count_examples(preamble) > 0
        described = "task" in preamble.lower() and len(preamble) > 220
        lines: list[str] = []
        for i in range(1, len(sections) - 1, 2):
            index = sections[i]
            body = sections[i + 1]
            left = extract_json_field(body, "Record A")
            right = extract_json_field(body, "Record B")
            if left is None or right is None:
                lines.append(f"{index}: Unknown (missing records)")
                continue
            verdict, _ = judge_pair(left, right, kb, has_examples, described)
            lines.append(f"{index}: {'Yes' if verdict else 'No'}")
        if not lines:
            return "I found no 'Pair N:' sections with two records each."
        return "\n".join(lines)
