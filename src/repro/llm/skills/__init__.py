"""Prompt-routed capabilities of the simulated LLM."""

from repro.llm.skills.base import Skill, count_examples, extract_json_field, extract_text_field
from repro.llm.skills.batch_matching import BatchEntityMatchingSkill
from repro.llm.skills.codegen_skill import CodeGenerationSkill, CodeSuggestionSkill
from repro.llm.skills.curation import (
    ContaminationJudgmentSkill,
    QualityJudgmentSkill,
    containment_score,
    knowledge_quality_score,
)
from repro.llm.skills.entity_matching import EntityMatchingSkill, match_score
from repro.llm.skills.imputation import ImputationSkill
from repro.llm.skills.langdetect import LanguageDetectionSkill
from repro.llm.skills.misc import (
    ChatFallbackSkill,
    ClassificationSkill,
    NL2SQLSkill,
    SchemaMatchingSkill,
    SummarizationSkill,
)
from repro.llm.skills.table_qa import TableQASkill
from repro.llm.skills.tagging import TaggingSkill


def default_skills() -> list[Skill]:
    """The standard skill stack, ordered most-specific first.

    Order matters: the provider routes each prompt to the first matching
    skill, and the chat fallback matches everything.
    """
    return [
        CodeSuggestionSkill(),
        CodeGenerationSkill(),
        BatchEntityMatchingSkill(),
        EntityMatchingSkill(),
        QualityJudgmentSkill(),
        ContaminationJudgmentSkill(),
        ImputationSkill(),
        TaggingSkill(),
        LanguageDetectionSkill(),
        NL2SQLSkill(),
        TableQASkill(),
        SchemaMatchingSkill(),
        ClassificationSkill(),
        SummarizationSkill(),
        ChatFallbackSkill(),
    ]


__all__ = [
    "Skill",
    "count_examples",
    "extract_json_field",
    "extract_text_field",
    "CodeGenerationSkill",
    "CodeSuggestionSkill",
    "BatchEntityMatchingSkill",
    "EntityMatchingSkill",
    "match_score",
    "QualityJudgmentSkill",
    "ContaminationJudgmentSkill",
    "knowledge_quality_score",
    "containment_score",
    "ImputationSkill",
    "LanguageDetectionSkill",
    "ChatFallbackSkill",
    "ClassificationSkill",
    "NL2SQLSkill",
    "SchemaMatchingSkill",
    "SummarizationSkill",
    "TableQASkill",
    "TaggingSkill",
    "default_skills",
]
