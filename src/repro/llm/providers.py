"""LLM providers: the pluggable back end of the service layer.

:class:`SimulatedProvider` is the deterministic stand-in for a hosted LLM
API used throughout this reproduction (see DESIGN.md's substitution table).
The seam is :class:`LLMProvider` — a real HTTP-backed provider could be
dropped in without touching anything above this layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro._util import stable_unit
from repro.llm.errors import ProviderError, RateLimitError
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills import Skill, default_skills
from repro.llm.tokenizer import count_tokens

__all__ = ["LLMRequest", "LLMResponse", "LLMProvider", "SimulatedProvider", "FlakyProvider"]


@dataclass(frozen=True)
class LLMRequest:
    """A completion request."""

    prompt: str
    max_tokens: int = 256
    temperature: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class LLMResponse:
    """A completion response with usage accounting."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str
    skill: str = ""
    latency_seconds: float = 0.0


class LLMProvider(ABC):
    """Interface every back end implements."""

    model_name: str = "unknown"

    @abstractmethod
    def complete(self, request: LLMRequest) -> LLMResponse:
        """Serve one completion (may raise :class:`ProviderError`)."""


class SimulatedProvider(LLMProvider):
    """Deterministic skill-routed simulation of a 2023-era instruction LLM.

    Each prompt is answered by the first matching skill against the
    provider's :class:`KnowledgeBase`.  Latency is modelled (not slept) as a
    function of token counts so benchmarks can report realistic timings.
    """

    model_name = "sim-gpt-2023"

    def __init__(
        self,
        knowledge: KnowledgeBase | None = None,
        skills: list[Skill] | None = None,
    ):
        self.knowledge = knowledge or KnowledgeBase()
        self.skills = skills if skills is not None else default_skills()
        self.calls_served = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Route ``request.prompt`` to a skill and answer deterministically."""
        for skill in self.skills:
            if skill.matches(request.prompt):
                text = skill.respond(request.prompt, self.knowledge)
                break
        else:  # pragma: no cover - default_skills ends with a catch-all
            raise ProviderError("no skill matched the prompt")
        prompt_tokens = count_tokens(request.prompt)
        completion_tokens = min(count_tokens(text), request.max_tokens)
        self.calls_served += 1
        latency = 0.25 + 0.004 * prompt_tokens + 0.018 * completion_tokens
        return LLMResponse(
            text=text,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            model=self.model_name,
            skill=skill.name,
            latency_seconds=latency,
        )


class FlakyProvider(LLMProvider):
    """Failure-injection wrapper: a fraction of calls raise transient errors.

    Used by the test suite to exercise the service's retry path.  Failures
    are deterministic in the call index so tests are stable.
    """

    def __init__(
        self,
        inner: LLMProvider,
        failure_rate: float = 0.2,
        rate_limit_rate: float = 0.0,
        seed_tag: str = "flaky",
    ):
        self.inner = inner
        self.model_name = inner.model_name
        self.failure_rate = failure_rate
        self.rate_limit_rate = rate_limit_rate
        self.seed_tag = seed_tag
        self._counter = 0

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Fail deterministically by call index, else delegate."""
        self._counter += 1
        roll = stable_unit(self.seed_tag, self._counter)
        if roll < self.rate_limit_rate:
            raise RateLimitError(retry_after=0.5)
        if roll < self.rate_limit_rate + self.failure_rate:
            raise ProviderError(f"simulated transient outage on call {self._counter}")
        return self.inner.complete(request)
