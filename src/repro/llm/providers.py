"""LLM providers: the pluggable back end of the service layer.

:class:`SimulatedProvider` is the deterministic stand-in for a hosted LLM
API used throughout this reproduction (see DESIGN.md's substitution table).
The seam is :class:`LLMProvider` — a real HTTP-backed provider could be
dropped in without touching anything above this layer.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro._util import stable_unit
from repro.llm.errors import ProviderError, RateLimitError
from repro.llm.knowledge import KnowledgeBase
from repro.llm.skills import Skill, default_skills
from repro.llm.tokenizer import count_tokens

__all__ = [
    "LLMRequest",
    "LLMResponse",
    "LLMProvider",
    "SimulatedProvider",
    "FlakyProvider",
    "LatencyProvider",
]


@dataclass(frozen=True)
class LLMRequest:
    """A completion request."""

    prompt: str
    max_tokens: int = 256
    temperature: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class LLMResponse:
    """A completion response with usage accounting."""

    text: str
    prompt_tokens: int
    completion_tokens: int
    model: str
    skill: str = ""
    latency_seconds: float = 0.0


class LLMProvider(ABC):
    """Interface every back end implements."""

    model_name: str = "unknown"

    def cache_identity(self) -> str:
        """Identity string mixed into prompt-cache keys.

        Two providers whose answers are interchangeable must share an
        identity; any behavioural change must change it, or stale answers
        leak across providers.  The model name is the right default —
        wrappers (flaky/latency/chaos) inherit their inner model's identity
        because they change *delivery*, not answers.
        """
        return self.model_name

    @abstractmethod
    def complete(self, request: LLMRequest) -> LLMResponse:
        """Serve one completion (may raise :class:`ProviderError`)."""

    def complete_batch(self, requests: list[LLMRequest]) -> list[LLMResponse]:
        """Serve many completions in one provider round trip.

        The default walks :meth:`complete` per request; back ends with a
        native batch endpoint (or per-request connection overhead worth
        amortising, like :class:`LatencyProvider`) override this.  The
        whole batch fails if any request fails — the service's per-prompt
        path handles partial recovery.
        """
        return [self.complete(request) for request in requests]


class SimulatedProvider(LLMProvider):
    """Deterministic skill-routed simulation of a 2023-era instruction LLM.

    Each prompt is answered by the first matching skill against the
    provider's :class:`KnowledgeBase`.  Latency is modelled (not slept) as a
    function of token counts so benchmarks can report realistic timings.
    """

    model_name = "sim-gpt-2023"

    def __init__(
        self,
        knowledge: KnowledgeBase | None = None,
        skills: list[Skill] | None = None,
    ):
        self.knowledge = knowledge or KnowledgeBase()
        self.skills = skills if skills is not None else default_skills()
        self.calls_served = 0
        self._lock = threading.Lock()

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Route ``request.prompt`` to a skill and answer deterministically."""
        for skill in self.skills:
            if skill.matches(request.prompt):
                text = skill.respond(request.prompt, self.knowledge)
                break
        else:  # pragma: no cover - default_skills ends with a catch-all
            raise ProviderError("no skill matched the prompt")
        prompt_tokens = count_tokens(request.prompt)
        completion_tokens = min(count_tokens(text), request.max_tokens)
        with self._lock:
            self.calls_served += 1
        latency = 0.25 + 0.004 * prompt_tokens + 0.018 * completion_tokens
        return LLMResponse(
            text=text,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            model=self.model_name,
            skill=skill.name,
            latency_seconds=latency,
        )


class FlakyProvider(LLMProvider):
    """Failure-injection wrapper: a fraction of calls raise transient errors.

    Used by the test suite to exercise the service's retry path.  Failures
    are deterministic in the call index so tests are stable.
    """

    def __init__(
        self,
        inner: LLMProvider,
        failure_rate: float = 0.2,
        rate_limit_rate: float = 0.0,
        seed_tag: str = "flaky",
    ):
        self.inner = inner
        self.model_name = inner.model_name
        self.failure_rate = failure_rate
        self.rate_limit_rate = rate_limit_rate
        self.seed_tag = seed_tag
        self._counter = 0
        self._lock = threading.Lock()

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Fail deterministically by call index, else delegate."""
        with self._lock:
            self._counter += 1
            counter = self._counter
        roll = stable_unit(self.seed_tag, counter)
        if roll < self.rate_limit_rate:
            raise RateLimitError(retry_after=0.5)
        if roll < self.rate_limit_rate + self.failure_rate:
            raise ProviderError(f"simulated transient outage on call {counter}")
        return self.inner.complete(request)


class LatencyProvider(LLMProvider):
    """Wall-clock latency injection: every round trip really sleeps.

    The simulated provider *models* latency on the virtual clock so
    experiments finish instantly; benchmarks that measure parallel speedup
    need calls that genuinely take time.  Each :meth:`complete` sleeps
    ``seconds``; :meth:`complete_batch` sleeps ``seconds`` once for the
    whole batch — the amortisation a real batch endpoint provides.
    """

    def __init__(self, inner: LLMProvider, seconds: float = 0.05):
        self.inner = inner
        self.model_name = inner.model_name
        self.seconds = seconds
        self.round_trips = 0
        self._lock = threading.Lock()

    def _sleep_once(self) -> None:
        time.sleep(self.seconds)
        with self._lock:
            self.round_trips += 1

    def complete(self, request: LLMRequest) -> LLMResponse:
        """Sleep one round trip, then delegate."""
        self._sleep_once()
        return self.inner.complete(request)

    def complete_batch(self, requests: list[LLMRequest]) -> list[LLMResponse]:
        """Sleep one round trip for the whole batch, then delegate each."""
        self._sleep_once()
        return [self.inner.complete(request) for request in requests]
