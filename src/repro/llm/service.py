"""The LLM service: caching, budgets, retries and the call ledger.

Lingua Manga's "Highly Performant" property (paper section 1) is about
*minimising LLM service calls* — every cost and call-count number in the
evaluation is measured here.  The service wraps a provider with:

- a **response cache** (identical prompts are answered locally for free),
- a **budget** (max calls and/or max dollars; exceeding raises
  :class:`BudgetExceededError`),
- a **retry policy** for transient provider failures, and
- a **ledger** recording every call with token counts, cost and purpose.

Time is virtual: latency is accumulated on a clock attribute rather than
slept, so experiments report realistic latency totals instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.llm.errors import BudgetExceededError, ProviderError, RateLimitError
from repro.llm.providers import LLMProvider, LLMRequest, LLMResponse, SimulatedProvider
from repro.llm.tokenizer import estimate_cost

__all__ = ["CallRecord", "UsageSummary", "LLMService"]


@dataclass(frozen=True)
class CallRecord:
    """One completed request (cached or served)."""

    prompt: str
    response_text: str
    prompt_tokens: int
    completion_tokens: int
    cost: float
    cached: bool
    skill: str
    purpose: str
    latency_seconds: float
    retries: int = 0


@dataclass(frozen=True)
class UsageSummary:
    """Aggregated usage over a set of call records."""

    total_calls: int
    served_calls: int
    cached_calls: int
    prompt_tokens: int
    completion_tokens: int
    cost: float
    latency_seconds: float

    def to_text(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"calls={self.total_calls} (served={self.served_calls}, "
            f"cached={self.cached_calls}) tokens={self.prompt_tokens}+"
            f"{self.completion_tokens} cost=${self.cost:.4f} "
            f"latency={self.latency_seconds:.1f}s"
        )


class LLMService:
    """Cached, budgeted, retrying front end over an :class:`LLMProvider`."""

    def __init__(
        self,
        provider: LLMProvider | None = None,
        cache_enabled: bool = True,
        max_calls: int | None = None,
        max_cost: float | None = None,
        max_retries: int = 3,
        backoff_seconds: float = 0.5,
    ):
        self.provider = provider or SimulatedProvider()
        self.cache_enabled = cache_enabled
        self.max_calls = max_calls
        self.max_cost = max_cost
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.records: list[CallRecord] = []
        self.clock_seconds = 0.0
        self._cache: dict[str, LLMResponse] = {}

    # -- core API --------------------------------------------------------------

    def complete(self, prompt: str, purpose: str = "", max_tokens: int = 256) -> str:
        """Answer ``prompt``; returns the response text.

        Raises :class:`BudgetExceededError` when the call would exceed the
        configured budget, and :class:`ProviderError` when the provider keeps
        failing beyond the retry limit.
        """
        if self.cache_enabled and prompt in self._cache:
            response = self._cache[prompt]
            self.records.append(
                CallRecord(
                    prompt=prompt,
                    response_text=response.text,
                    prompt_tokens=response.prompt_tokens,
                    completion_tokens=response.completion_tokens,
                    cost=0.0,
                    cached=True,
                    skill=response.skill,
                    purpose=purpose,
                    latency_seconds=0.0,
                )
            )
            return response.text

        self._check_budget()
        request = LLMRequest(prompt=prompt, max_tokens=max_tokens)
        response, retries = self._complete_with_retries(request)
        cost = estimate_cost(response.prompt_tokens, response.completion_tokens)
        self.clock_seconds += response.latency_seconds
        self.records.append(
            CallRecord(
                prompt=prompt,
                response_text=response.text,
                prompt_tokens=response.prompt_tokens,
                completion_tokens=response.completion_tokens,
                cost=cost,
                cached=False,
                skill=response.skill,
                purpose=purpose,
                latency_seconds=response.latency_seconds,
                retries=retries,
            )
        )
        if self.cache_enabled:
            self._cache[prompt] = response
        return response.text

    def _complete_with_retries(self, request: LLMRequest) -> tuple[LLMResponse, int]:
        last_error: ProviderError | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return self.provider.complete(request), attempt
            except RateLimitError as error:
                last_error = error
                self.clock_seconds += error.retry_after
            except ProviderError as error:
                last_error = error
                self.clock_seconds += self.backoff_seconds * (2**attempt)
        raise ProviderError(
            f"provider failed after {self.max_retries + 1} attempts: {last_error}"
        )

    def _check_budget(self) -> None:
        if self.max_calls is not None and self.served_calls >= self.max_calls:
            raise BudgetExceededError(
                f"call budget exhausted ({self.served_calls}/{self.max_calls})"
            )
        if self.max_cost is not None and self.total_cost >= self.max_cost:
            raise BudgetExceededError(
                f"cost budget exhausted (${self.total_cost:.4f}/${self.max_cost:.4f})"
            )

    # -- accounting --------------------------------------------------------------

    @property
    def served_calls(self) -> int:
        """Calls that actually hit the provider (excludes cache hits)."""
        return sum(1 for r in self.records if not r.cached)

    @property
    def cached_calls(self) -> int:
        """Calls answered from the local cache."""
        return sum(1 for r in self.records if r.cached)

    @property
    def total_cost(self) -> float:
        """Accumulated dollar cost."""
        return sum(r.cost for r in self.records)

    def usage(self, purpose: str | None = None) -> UsageSummary:
        """Aggregate usage, optionally filtered to one ``purpose`` label."""
        records: Iterable[CallRecord] = self.records
        if purpose is not None:
            records = [r for r in self.records if r.purpose == purpose]
        records = list(records)
        return UsageSummary(
            total_calls=len(records),
            served_calls=sum(1 for r in records if not r.cached),
            cached_calls=sum(1 for r in records if r.cached),
            prompt_tokens=sum(r.prompt_tokens for r in records),
            completion_tokens=sum(r.completion_tokens for r in records),
            cost=sum(r.cost for r in records),
            latency_seconds=sum(r.latency_seconds for r in records),
        )

    def ledger_table(self):
        """The call ledger as a :class:`repro.storage.table.Table`.

        Lets the usage data flow through the same tooling as any other
        table — SQL over your LLM spend, profiling, the UI's table views.
        """
        from repro.storage.table import Table

        return Table.from_records(
            "llm_ledger",
            [
                {
                    "purpose": r.purpose,
                    "skill": r.skill,
                    "cached": r.cached,
                    "prompt_tokens": r.prompt_tokens,
                    "completion_tokens": r.completion_tokens,
                    "cost": r.cost,
                    "latency_seconds": r.latency_seconds,
                    "retries": r.retries,
                }
                for r in self.records
            ],
        )

    def reset_usage(self) -> None:
        """Clear the ledger and virtual clock (cache is kept)."""
        self.records.clear()
        self.clock_seconds = 0.0

    def clear_cache(self) -> None:
        """Drop all cached responses."""
        self._cache.clear()
